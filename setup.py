"""Setup shim.

The pyproject.toml carries the metadata; this file exists so that
``pip install -e .`` works on offline machines without the ``wheel``
package (pip falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "MiddleWhere: middleware for location awareness "
        "(MIDDLEWARE 2004) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
