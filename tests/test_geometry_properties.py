"""Property-based tests (hypothesis) for the geometry substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Polygon, Rect, union_area

coords = st.floats(min_value=-1000.0, max_value=1000.0,
                   allow_nan=False, allow_infinity=False)
sizes = st.floats(min_value=0.01, max_value=500.0,
                  allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x = draw(coords)
    y = draw(coords)
    w = draw(sizes)
    h = draw(sizes)
    return Rect(x, y, x + w, y + h)


@st.composite
def points(draw):
    return Point(draw(coords), draw(coords))


class TestRectProperties:
    @given(rects(), rects())
    def test_intersection_area_commutative(self, a, b):
        assert math.isclose(a.intersection_area(b), b.intersection_area(a),
                            rel_tol=1e-12, abs_tol=1e-12)

    @given(rects(), rects())
    def test_intersection_area_bounded_by_smaller(self, a, b):
        overlap = a.intersection_area(b)
        assert overlap <= min(a.area, b.area) + 1e-9
        assert overlap >= 0.0

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_rect(overlap)
            assert b.contains_rect(overlap)

    @given(rects(), rects())
    def test_union_mbr_contains_both(self, a, b):
        union = a.union_mbr(b)
        assert union.contains_rect(a)
        assert union.contains_rect(b)

    @given(rects(), rects())
    def test_disjoint_iff_zero_gap_is_false(self, a, b):
        if a.is_disjoint(b):
            assert a.intersection_area(b) == 0.0
            assert a.distance_to_rect(b) >= 0.0
        else:
            assert a.distance_to_rect(b) == 0.0

    @given(rects(), rects(), rects())
    def test_containment_transitive(self, a, b, c):
        if a.contains_rect(b) and b.contains_rect(c):
            assert a.contains_rect(c)

    @given(rects(), points())
    def test_point_distance_zero_iff_contained(self, r, p):
        if r.contains_point(p):
            assert r.distance_to_point(p) == 0.0
        else:
            assert r.distance_to_point(p) > 0.0

    @given(rects())
    def test_corners_inside(self, r):
        for corner in r.corners:
            assert r.contains_point(corner)

    @given(st.lists(rects(), min_size=1, max_size=6))
    def test_union_area_bounds(self, rect_list):
        total = union_area(rect_list)
        assert total <= sum(r.area for r in rect_list) + 1e-6
        assert total >= max(r.area for r in rect_list) - 1e-6


class TestPolygonProperties:
    @given(rects())
    def test_polygon_of_rect_matches_rect(self, r):
        poly = Polygon.from_rect(r)
        assert math.isclose(poly.area, r.area, rel_tol=1e-9, abs_tol=1e-9)
        assert poly.mbr.almost_equals(r, 1e-9)

    @given(rects(), rects())
    def test_clip_area_equals_rect_intersection(self, a, b):
        poly = Polygon.from_rect(a)
        clipped_area = poly.intersection_area_with_rect(b)
        assert math.isclose(clipped_area, a.intersection_area(b),
                            rel_tol=1e-6, abs_tol=1e-6)

    @given(rects(), points())
    def test_polygon_point_containment_matches_rect(self, r, p):
        poly = Polygon.from_rect(r)
        assert poly.contains_point(p) == r.contains_point(p)
