"""Snapshot + WAL-replay recovery: the durable spatial database.

The contract under test: :func:`repro.storage.recover` rebuilds a
*fingerprint-identical* database (same rows, same ids, same flags)
from the WAL directory alone — before and after snapshots, retention
compaction and torn tails — and the recovered database answers pruned
region queries exactly like the reference scan (the support MBRs are
recomputed, not trusted).
"""

import os

import pytest

from repro.core import SensorSpec
from repro.errors import StorageError
from repro.geometry import Rect
from repro.service import LocationService
from repro.sim import paper_floor
from repro.spatialdb import SpatialDatabase
from repro.storage import (
    ARCHIVE_NAME,
    WAL_NAME,
    DurabilityManager,
    DurabilityMode,
    apply_op,
    capture_state,
    list_snapshots,
    load_latest_snapshot,
    read_snapshot,
    readings_fingerprint,
    recover,
    restore_state,
    scan_wal,
    write_snapshot,
)


def _durable(tmp_path, mode=DurabilityMode.BUFFERED, **kwargs):
    db = SpatialDatabase(paper_floor())
    manager = DurabilityManager(db, str(tmp_path / "wal"), mode=mode,
                                **kwargs).attach()
    return db, manager


_UBI_SPEC = SensorSpec(sensor_type="Ubisense", carry_probability=0.9,
                       detection_probability=0.95,
                       misident_probability=0.05, z_area_scaled=True,
                       resolution=0.5, time_to_live=3.0)
_RF_SPEC = SensorSpec(sensor_type="RF", carry_probability=0.85,
                      detection_probability=0.75,
                      misident_probability=0.25, z_area_scaled=True,
                      resolution=15.0, time_to_live=60.0)


def _register(db):
    db.register_sensor("Ubi-18", "Ubisense", 95.0, 3.0, spec=_UBI_SPEC)
    db.register_sensor("RF-12", "RF", 75.0, 60.0, spec=_RF_SPEC)


def _insert(db, object_id, x, y, t, sensor="Ubi-18",
            sensor_type="Ubisense"):
    return db.insert_reading(
        sensor_id=sensor, glob_prefix="CS/Floor3",
        sensor_type=sensor_type, mobile_object_id=object_id,
        rect=Rect(x, y, x + 4.0, y + 4.0), detection_time=float(t))


class TestSnapshotDocuments:
    def test_write_read_round_trip(self, tmp_path):
        db = SpatialDatabase(paper_floor())
        db.register_sensor("Ubi-18", "Ubisense", 95.0, 3.0)
        _insert(db, "alice", 100, 10, 1.0)
        state = capture_state(db, [{"op": "subscribe",
                                    "subscription_id": "sub-1"}])
        path = write_snapshot(str(tmp_path), state, last_seq=17)
        seq, loaded = read_snapshot(path)
        assert seq == 17
        assert loaded["next_reading_id"] == state["next_reading_id"]
        assert loaded["registry"] == state["registry"]
        assert len(loaded["sensor_readings"]) == 1

    def test_world_version_rides_inside_the_snapshot(self, tmp_path):
        db = SpatialDatabase(paper_floor())
        state = capture_state(db)
        write_snapshot(str(tmp_path), state, last_seq=1)
        _, loaded = read_snapshot(list_snapshots(str(tmp_path))[0])
        assert loaded["world"]["world_version"] == db.world.version

    def test_corrupt_snapshot_falls_back_to_previous(self, tmp_path):
        db = SpatialDatabase(paper_floor())
        good = write_snapshot(str(tmp_path), capture_state(db), last_seq=5)
        bad = write_snapshot(str(tmp_path), capture_state(db), last_seq=9)
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write('{"format": "middlewhere-snapsho')  # torn
        seq, _ = load_latest_snapshot(str(tmp_path))
        assert seq == 5
        with pytest.raises(StorageError):
            read_snapshot(bad)
        assert os.path.exists(good)

    def test_checksum_mismatch_is_rejected(self, tmp_path):
        import json
        db = SpatialDatabase(paper_floor())
        path = write_snapshot(str(tmp_path), capture_state(db), last_seq=3)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["checksum"] ^= 0xFF
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.raises(StorageError):
            read_snapshot(path)

    def test_restore_state_round_trips_tables(self, tmp_path):
        db = SpatialDatabase(paper_floor())
        _register(db)
        for i in range(5):
            _insert(db, "alice", 100 + i, 10, float(i))
        state = capture_state(db)
        twin = SpatialDatabase(paper_floor())
        restore_state(twin, state)
        assert readings_fingerprint(twin) == readings_fingerprint(db)
        # The id allocator continues, never restarts.
        assert _insert(twin, "alice", 200, 10, 9.0) == \
            db._next_reading_id


class TestRecoverReplay:
    def test_fingerprint_identical_after_replay(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        for i in range(20):
            _insert(db, "alice" if i % 2 else "bob", 100 + i, 10 + i,
                    float(i))
        db.expire_object_readings("bob", sensor_id="Ubi-18")
        manager.sync()
        state = recover(manager.wal_dir)
        assert readings_fingerprint(state.db) == readings_fingerprint(db)
        assert state.replayed > 0
        assert state.torn_bytes == 0
        assert len(state.db.sensor_specs) == len(db.sensor_specs)
        assert state.db.tracked_objects() == db.tracked_objects()

    def test_recovered_allocator_continues(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        last = [_insert(db, "alice", 100 + i, 10, float(i))
                for i in range(3)][-1]
        manager.sync()
        state = recover(manager.wal_dir)
        assert _insert(state.db, "alice", 130, 10, 9.0) == last + 1

    def test_torn_tail_is_stepped_over(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        for i in range(6):
            _insert(db, "alice", 100 + i, 10, float(i))
        manager.sync()
        survivor = readings_fingerprint(db)
        with open(os.path.join(manager.wal_dir, WAL_NAME), "ab") as handle:
            handle.write(b"\x07half-a-record")
        state = recover(manager.wal_dir)
        assert state.torn_bytes > 0
        assert readings_fingerprint(state.db) == survivor

    def test_recover_needs_a_snapshot(self, tmp_path):
        with pytest.raises(StorageError):
            recover(str(tmp_path))

    def test_replay_refuses_journaled_database(self, tmp_path):
        db, _ = _durable(tmp_path)
        with pytest.raises(StorageError):
            apply_op(db, {"op": "purge", "now": 0.0, "reading_ids": []})

    def test_off_mode_is_not_a_manager(self, tmp_path):
        db = SpatialDatabase(paper_floor())
        with pytest.raises(StorageError):
            DurabilityManager(db, str(tmp_path / "wal"),
                              mode=DurabilityMode.OFF)

    def test_double_attach_rejected(self, tmp_path):
        db, manager = _durable(tmp_path)
        with pytest.raises(StorageError):
            DurabilityManager(db, str(tmp_path / "wal2")).attach()
        manager.detach()
        assert db.journal is None


class TestCompaction:
    def test_compaction_truncates_and_archives(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        for i in range(10):
            _insert(db, "alice", 100 + i, 10, float(i))
        purged = db.purge_expired(now=100.0)  # Ubisense TTL is 3 s
        assert purged == 10
        manager.compact()
        scan = scan_wal(os.path.join(manager.wal_dir, WAL_NAME))
        assert scan.records == []
        archive = os.path.join(manager.wal_dir, ARCHIVE_NAME)
        with open(archive, "r", encoding="utf-8") as handle:
            assert len(handle.readlines()) == purged
        assert manager.stats()["archived_rows"] == purged

    def test_recovery_after_compaction_replays_nothing(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        for i in range(8):
            _insert(db, "alice", 100 + i, 10, float(i))
        manager.compact()
        state = recover(manager.wal_dir)
        assert state.replayed == 0
        assert readings_fingerprint(state.db) == readings_fingerprint(db)

    def test_seq_numbering_survives_compaction(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        _insert(db, "alice", 100, 10, 1.0)
        before = manager.stats()["last_seq"]
        manager.compact()
        _insert(db, "alice", 104, 10, 2.0)
        manager.sync()
        scan = scan_wal(os.path.join(manager.wal_dir, WAL_NAME))
        assert [s for s, _ in scan.records] == [before + 1]
        state = recover(manager.wal_dir)
        assert state.replayed == 1
        assert readings_fingerprint(state.db) == readings_fingerprint(db)

    def test_auto_snapshot_interval(self, tmp_path):
        db, manager = _durable(tmp_path, snapshot_interval=5)
        _register(db)
        for i in range(6):
            _insert(db, "alice", 100 + i, 10, float(i))
        assert manager.maybe_snapshot() is not None
        assert manager.maybe_snapshot() is None  # interval reset
        assert len(list_snapshots(manager.wal_dir)) == 2  # baseline + 1


class TestPruningParityAfterRecovery:
    """ISSUE satellite: support MBRs are *recomputed* on restore, so
    pruned region queries stay equivalent to the reference scan."""

    REGIONS = [Rect(95, 5, 130, 40), Rect(0, 0, 20, 20),
               Rect(300, 0, 360, 40), Rect(100, 8, 112, 24)]

    def _parity(self, db, now):
        service = LocationService(db)
        for region in self.REGIONS:
            pruned = service.objects_in_region(region, now=now,
                                               min_confidence=0.05)
            reference = service.objects_in_region_reference(
                region, now=now, min_confidence=0.05)
            assert pruned == reference, region

    def test_parity_after_replay(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        for i in range(12):
            _insert(db, "alice" if i % 3 else "bob", 100 + 2 * i,
                    10 + i, float(i), sensor="RF-12", sensor_type="RF")
        manager.sync()
        state = recover(manager.wal_dir)
        assert state.replayed > 0
        assert state.db.tracked_objects() == ["alice", "bob"]
        self._parity(state.db, now=12.0)

    def test_parity_and_tight_support_after_compaction(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        # A far-away early reading inflates the grow-only union...
        _insert(db, "alice", 480, 90, 0.0, sensor="RF-12",
                sensor_type="RF")
        for i in range(6):
            _insert(db, "alice", 100 + i, 10, 200.0 + i,
                    sensor="RF-12", sensor_type="RF")
        loose = db.reading_support("alice")
        db.purge_expired(now=200.0)  # drops only the t=0 outlier
        manager.compact()
        tight = db.reading_support("alice")
        assert loose.contains_rect(tight) and tight != loose
        # The recovered twin recomputes the same tight bound.
        state = recover(manager.wal_dir)
        assert state.db.reading_support("alice") == tight
        self._parity(state.db, now=206.0)

    def test_versions_stay_monotonic_across_rebuild(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        for i in range(4):
            _insert(db, "alice", 100 + i, 10, float(i))
        before = db.reading_version("alice")
        db.rebuild_reading_support()
        after = db.reading_version("alice")
        assert after > before  # cached state invalidates, never revalidates


class TestRegistryRestore:
    def test_subscriptions_and_triggers_recovered(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        service = LocationService(db)
        events = []
        sub_region = service.subscribe(Rect(95, 5, 130, 40),
                                       consumer=events.append,
                                       threshold=0.1)
        sub_prox = service.subscribe_proximity("alice", "bob", 30.0,
                                               consumer=events.append)
        doomed = service.subscribe(Rect(0, 0, 10, 10),
                                   consumer=events.append)
        db.create_location_trigger("door-watch", Rect(200, 0, 220, 30),
                                   action=lambda row: None)
        db.create_location_trigger("gone", Rect(0, 0, 5, 5),
                                   action=lambda row: None)
        service.unsubscribe(doomed)
        db.drop_location_trigger("gone")
        manager.sync()

        state = recover(manager.wal_dir)
        subs = state.subscriptions()
        assert {r["subscription_id"] for r in subs} == \
            {sub_region, sub_prox}
        triggers = state.triggers()
        assert [r["trigger_id"] for r in triggers] == ["door-watch"]

        twin = LocationService(state.db)
        restored = twin.restore_subscriptions(subs)
        assert restored == 2
        # Original ids survive, and fresh ids never collide with them.
        assert twin.unsubscribe(sub_prox)
        fresh = twin.subscribe(Rect(0, 0, 10, 10), consumer=events.append)
        assert fresh not in {sub_region, sub_prox}

    def test_restored_subscription_fires_after_rebind(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        service = LocationService(db)
        sub = service.subscribe(Rect(95, 5, 130, 40), consumer=lambda e: 0,
                                threshold=0.0)
        manager.sync()
        state = recover(manager.wal_dir)
        twin = LocationService(state.db)
        twin.restore_subscriptions(state.subscriptions())
        events = []
        twin.rebind_consumer(sub, events.append)
        _insert(state.db, "alice", 100, 10, 1.0)
        assert events, "rebound consumer never saw the enter event"
        assert events[0]["subscription_id"] == sub

    def test_registry_snapshot_round_trip(self, tmp_path):
        db, manager = _durable(tmp_path)
        _register(db)
        service = LocationService(db)
        sub = service.subscribe(Rect(95, 5, 130, 40),
                                consumer=lambda e: 0)
        manager.compact()  # registry must ride inside the snapshot
        state = recover(manager.wal_dir)
        assert state.replayed == 0
        assert [r["subscription_id"]
                for r in state.subscriptions()] == [sub]
