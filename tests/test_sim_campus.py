"""Tests for the campus world and outdoor/indoor handoff."""

import pytest

from repro.errors import UnknownObjectError
from repro.geometry import Point
from repro.reasoning import NavigationGraph, PassageRelation, passage_between
from repro.sensors import GeodeticCalibration, GpsAdapter, UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, campus_world
from repro.spatialdb import SpatialDatabase

CAL = GeodeticCalibration(40.1138, -88.2249)


@pytest.fixture
def rig():
    world = campus_world()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    gps = GpsAdapter("GPS-1", "Campus", CAL,
                     carry_probability=0.95, frame="").attach(db)
    indoor = UbisenseAdapter("Ubi-1", "SC/1", frame="").attach(db)
    return world, clock, service, gps, indoor


class TestCampusWorld:
    def test_building_positioned_inside_quad(self):
        world = campus_world()
        campus = world.canonical_mbr("Campus")
        building = world.canonical_mbr("SC/1")
        assert campus.contains_rect(building)

    def test_entrance_joins_outdoors_to_lobby(self):
        world = campus_world()
        doors = world.doors_between("Campus/Quad", "SC/1/Lobby")
        assert len(doors) == 1

    def test_outdoor_region_flagged(self):
        world = campus_world()
        assert world.get("Campus/Quad").properties["outdoors"] is True

    def test_navigable_from_quad_to_east_wing(self):
        nav = NavigationGraph(campus_world())
        route = nav.route("Campus/Quad", "SC/1/EastWing")
        assert route is not None
        assert route.regions == ["Campus/Quad", "SC/1/Lobby",
                                 "SC/1/EastWing"]

    def test_quad_and_lobby_share_passage(self):
        world = campus_world()
        # Their MBRs overlap (the building sits on the quad) so the EC
        # check does not apply; doors_between is the passage truth.
        assert world.doors_between("Campus/Quad", "SC/1/Lobby")


class TestHandoff:
    def test_gps_locates_outdoors(self, rig):
        world, clock, service, gps, _ = rig
        lat, lon = CAL.to_geodetic(Point(100, 80))
        gps.fix("walker", lat, lon, clock.advance(1.0),
                accuracy_ft=20.0)
        estimate = service.locate("walker")
        assert estimate.symbolic == "Campus/Quad"
        assert estimate.sources == ("GPS-1",)

    def test_indoor_takes_over_after_gps_expiry(self, rig):
        world, clock, service, gps, indoor = rig
        lat, lon = CAL.to_geodetic(Point(320, 148))
        gps.fix("walker", lat, lon, clock.advance(1.0),
                accuracy_ft=15.0)
        # Walk inside; GPS TTL is 30 s, so advance beyond it.
        clock.advance(40.0)
        indoor.tag_sighting("walker", Point(320, 200), clock.now())
        estimate = service.locate("walker")
        assert estimate.sources == ("Ubi-1",)
        assert estimate.symbolic == "SC/1/Lobby"

    def test_moving_indoor_readings_beat_stale_gps(self, rig):
        world, clock, service, gps, indoor = rig
        lat, lon = CAL.to_geodetic(Point(320, 148))
        gps.fix("walker", lat, lon, clock.advance(1.0),
                accuracy_ft=15.0)
        # Two indoor sightings within the GPS TTL: indoor rect moves,
        # GPS rect is stationary -> conflict rule 1 prefers indoors.
        indoor.tag_sighting("walker", Point(320, 200),
                            clock.advance(5.0))
        indoor.tag_sighting("walker", Point(324, 200),
                            clock.advance(1.0))
        estimate = service.locate("walker")
        assert "Ubi-1" in estimate.sources
        assert estimate.symbolic == "SC/1/Lobby"

    def test_nobody_outdoors_without_gps(self, rig):
        world, clock, service, _, _ = rig
        clock.advance(1.0)
        with pytest.raises(UnknownObjectError):
            service.locate("walker")
