"""Tests for proximity subscriptions (Section 5.3's distance trigger)."""

import pytest

from repro.errors import ServiceError
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.service.subscriptions import ProximitySubscription
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    return clock, service, ubi


class TestValidation:
    def test_same_object_rejected(self):
        with pytest.raises(ServiceError):
            ProximitySubscription("p1", "alice", "alice", 10.0,
                                  consumer=lambda e: None)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ServiceError):
            ProximitySubscription("p1", "a", "b", 0.0,
                                  consumer=lambda e: None)

    def test_needs_consumer(self):
        with pytest.raises(ServiceError):
            ProximitySubscription("p1", "a", "b", 10.0)


class TestEvents:
    def test_enter_fires_when_pair_closes(self, rig):
        clock, service, ubi = rig
        events = []
        service.subscribe_proximity("alice", "bob", 10.0,
                                    consumer=events.append)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        ubi.tag_sighting("bob", Point(350, 90), 0.0)   # far apart
        assert events == []
        ubi.tag_sighting("bob", Point(154, 20), 1.0)   # walks over
        assert len(events) == 1
        event = events[0]
        assert event["transition"] == "enter"
        assert {event["first"], event["second"]} == {"alice", "bob"}
        assert event["distance_ft"] < 10.0

    def test_enter_fires_once_until_separation(self, rig):
        clock, service, ubi = rig
        events = []
        service.subscribe_proximity("alice", "bob", 10.0,
                                    consumer=events.append)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        ubi.tag_sighting("bob", Point(153, 20), 0.0)
        ubi.tag_sighting("bob", Point(154, 21), 1.0)  # still close
        assert len(events) == 1

    def test_leave_event(self, rig):
        clock, service, ubi = rig
        events = []
        service.subscribe_proximity("alice", "bob", 10.0, kind="both",
                                    consumer=events.append)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        ubi.tag_sighting("bob", Point(153, 20), 0.5)
        ubi.tag_sighting("bob", Point(350, 90), 2.0)
        assert [e["transition"] for e in events] == ["enter", "leave"]

    def test_unlocatable_partner_means_no_event(self, rig):
        clock, service, ubi = rig
        events = []
        service.subscribe_proximity("alice", "bob", 10.0,
                                    consumer=events.append)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)  # bob unseen
        assert events == []

    def test_triggers_on_either_objects_readings(self, rig):
        clock, service, ubi = rig
        events = []
        service.subscribe_proximity("alice", "bob", 10.0,
                                    consumer=events.append)
        ubi.tag_sighting("bob", Point(150, 20), 0.0)
        # alice's reading (the *other* object) completes the pair.
        ubi.tag_sighting("alice", Point(152, 20), 0.5)
        assert len(events) == 1

    def test_unsubscribe(self, rig):
        clock, service, ubi = rig
        events = []
        sub_id = service.subscribe_proximity("alice", "bob", 10.0,
                                             consumer=events.append)
        assert service.unsubscribe(sub_id)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        ubi.tag_sighting("bob", Point(152, 20), 0.0)
        assert events == []

    def test_third_party_readings_ignored(self, rig):
        clock, service, ubi = rig
        events = []
        service.subscribe_proximity("alice", "bob", 10.0,
                                    consumer=events.append)
        ubi.tag_sighting("carol", Point(150, 20), 0.0)
        assert events == []
