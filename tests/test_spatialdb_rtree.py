"""Unit and property tests for the Guttman R-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.spatialdb import RTree


def random_rects(count: int, seed: int, span: float = 1000.0):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        x = rng.uniform(0, span)
        y = rng.uniform(0, span)
        w = rng.uniform(0.1, span / 10)
        h = rng.uniform(0.1, span / 10)
        out.append(Rect(x, y, x + w, y + h))
    return out


class TestBasics:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.search(Rect(0, 0, 10, 10)) == []

    def test_insert_and_search(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 10, 10), "a")
        tree.insert(Rect(20, 20, 30, 30), "b")
        assert tree.search(Rect(5, 5, 6, 6)) == ["a"]
        assert sorted(tree.search(Rect(0, 0, 30, 30))) == ["a", "b"]

    def test_search_point(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 10, 10), 1)
        assert tree.search_point(Point(5, 5)) == [1]
        assert tree.search_point(Point(50, 50)) == []

    def test_duplicate_rects_allowed(self):
        tree = RTree()
        r = Rect(0, 0, 1, 1)
        tree.insert(r, "a")
        tree.insert(r, "b")
        assert sorted(tree.search(r)) == ["a", "b"]

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_contained_in(self):
        tree = RTree()
        tree.insert(Rect(1, 1, 2, 2), "in")
        tree.insert(Rect(0, 0, 20, 20), "big")
        entries = tree.search_contained_in(Rect(0, 0, 5, 5))
        assert [v for _, v in entries] == ["in"]


class TestScale:
    def test_growth_keeps_invariants(self):
        tree = RTree(max_entries=6)
        for i, rect in enumerate(random_rects(300, seed=1)):
            tree.insert(rect, i)
        assert len(tree) == 300
        tree.check_invariants()
        assert tree.height() >= 2

    def test_search_matches_brute_force(self):
        rects = random_rects(400, seed=2)
        tree = RTree(max_entries=8)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for probe in random_rects(25, seed=3, span=1000.0):
            expected = sorted(i for i, r in enumerate(rects)
                              if r.intersects(probe))
            assert sorted(tree.search(probe)) == expected

    def test_items_enumerates_everything(self):
        rects = random_rects(100, seed=4)
        tree = RTree()
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        assert sorted(v for _, v in tree.items()) == list(range(100))


class TestNearest:
    def test_nearest_single(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 1, 1), "near")
        tree.insert(Rect(100, 100, 101, 101), "far")
        results = tree.nearest(Point(2, 2), 1)
        assert results[0][1] == "near"

    def test_nearest_k_ordering(self):
        rects = random_rects(200, seed=5)
        tree = RTree()
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        probe = Point(500, 500)
        got = tree.nearest(probe, 10)
        distances = [r.distance_to_point(probe) for r, _ in got]
        assert distances == sorted(distances)
        brute = sorted(r.distance_to_point(probe) for r in rects)[:10]
        assert all(abs(a - b) < 1e-9 for a, b in zip(distances, brute))

    def test_nearest_more_than_size(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 1, 1), "only")
        assert len(tree.nearest(Point(0, 0), 10)) == 1

    def test_nearest_zero(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 1, 1), "only")
        assert tree.nearest(Point(0, 0), 0) == []


class TestDeletion:
    def test_delete_existing(self):
        tree = RTree()
        r = Rect(0, 0, 1, 1)
        tree.insert(r, "a")
        assert tree.delete(r, lambda v: v == "a")
        assert len(tree) == 0
        assert tree.search(r) == []

    def test_delete_missing_returns_false(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 1, 1), "a")
        assert not tree.delete(Rect(5, 5, 6, 6), lambda v: True)
        assert not tree.delete(Rect(0, 0, 1, 1), lambda v: v == "b")

    def test_delete_specific_among_duplicates(self):
        tree = RTree()
        r = Rect(0, 0, 1, 1)
        tree.insert(r, "a")
        tree.insert(r, "b")
        assert tree.delete(r, lambda v: v == "a")
        assert tree.search(r) == ["b"]

    def test_mass_delete_keeps_invariants(self):
        rects = random_rects(200, seed=6)
        tree = RTree(max_entries=6)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        rng = random.Random(7)
        doomed = rng.sample(range(200), 150)
        for i in doomed:
            assert tree.delete(rects[i], lambda v, i=i: v == i)
        assert len(tree) == 50
        tree.check_invariants()
        survivors = sorted(v for _, v in tree.items())
        assert survivors == sorted(set(range(200)) - set(doomed))

    def test_delete_everything_then_reuse(self):
        rects = random_rects(50, seed=8)
        tree = RTree()
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for i, rect in enumerate(rects):
            assert tree.delete(rect, lambda v, i=i: v == i)
        assert len(tree) == 0
        tree.insert(Rect(0, 0, 1, 1), "fresh")
        assert tree.search(Rect(0, 0, 2, 2)) == ["fresh"]


rect_strategy = st.builds(
    lambda x, y, w, h: Rect(x, y, x + w, y + h),
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.floats(0.1, 20, allow_nan=False),
    st.floats(0.1, 20, allow_nan=False),
)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(rect_strategy, min_size=0, max_size=60), rect_strategy)
    def test_search_equals_brute_force(self, rects, probe):
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        expected = sorted(i for i, r in enumerate(rects)
                          if r.intersects(probe))
        assert sorted(tree.search(probe)) == expected
        tree.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(rect_strategy, min_size=1, max_size=40),
           st.randoms(use_true_random=False))
    def test_insert_delete_roundtrip(self, rects, rng):
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        order = list(range(len(rects)))
        rng.shuffle(order)
        for i in order:
            assert tree.delete(rects[i], lambda v, i=i: v == i)
            tree.check_invariants()
        assert len(tree) == 0
