"""Tests for the Follow Me application (Section 8.1)."""

import pytest

from repro.apps import FollowMeApp, FollowMePreferences
from repro.apps.session import SessionManager
from repro.core import ProbabilityBucket
from repro.errors import ServiceError
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    app = FollowMeApp(service)
    return world, clock, service, ubi, app


class TestSessions:
    def test_create_and_get(self):
        manager = SessionManager()
        session = manager.create("alice", applications=["editor"])
        assert manager.get("alice") is session
        assert session.suspended

    def test_duplicate_session_rejected(self):
        manager = SessionManager()
        manager.create("alice")
        with pytest.raises(ServiceError):
            manager.create("alice")

    def test_unknown_session_rejected(self):
        with pytest.raises(ServiceError):
            SessionManager().get("nobody")

    def test_resume_and_migrate_counting(self):
        manager = SessionManager()
        session = manager.create("alice")
        session.resume_at("SC/3/3216/display1")
        assert not session.suspended
        assert session.migrations == 0
        session.resume_at("SC/3/HCILab/display1")
        assert session.migrations == 1
        session.resume_at("SC/3/HCILab/display1")  # no-op
        assert session.migrations == 1

    def test_suspend(self):
        manager = SessionManager()
        session = manager.create("alice")
        session.resume_at("d1")
        session.suspend()
        assert session.suspended
        assert session.host is None


class TestFollowMe:
    def test_session_resumes_at_nearby_workstation(self, rig):
        world, clock, service, ubi, app = rig
        proxy = app.register_user("alice")
        # alice is right at workstation1 in 3105 (usage region
        # (141,0)-(151,9)).
        ubi.tag_sighting("alice", Point(146, 4), 0.0)
        clock.advance(1.0)
        event = proxy.tick()
        assert event is not None
        assert event.action == "resume"
        assert event.host == "SC/3/3105/workstation1"
        assert not proxy.session.suspended

    def test_session_suspends_when_user_walks_away(self, rig):
        world, clock, service, ubi, app = rig
        proxy = app.register_user("alice")
        ubi.tag_sighting("alice", Point(146, 4), 0.0)
        clock.advance(1.0)
        proxy.tick()
        # alice walks to the corridor, far from any usage region.
        ubi.tag_sighting("alice", Point(250, 50), 1.0)
        clock.advance(1.0)
        event = proxy.tick()
        assert event is not None
        assert event.action == "suspend"
        assert proxy.session.suspended

    def test_session_migrates_between_hosts(self, rig):
        world, clock, service, ubi, app = rig
        proxy = app.register_user("alice")
        ubi.tag_sighting("alice", Point(146, 4), 0.0)
        clock.advance(1.0)
        proxy.tick()
        first_host = proxy.session.host
        # alice reappears at the display in 3216's usage region.
        ubi.tag_sighting("alice", Point(27, 95), 1.0)
        clock.advance(1.0)
        event = proxy.tick()
        assert event is not None
        assert event.action == "resume"
        assert event.host != first_host
        assert proxy.session.migrations == 1

    def test_no_migration_when_disabled(self, rig):
        world, clock, service, ubi, app = rig
        prefs = FollowMePreferences(enabled=False)
        proxy = app.register_user("alice", prefs)
        ubi.tag_sighting("alice", Point(146, 4), 0.0)
        clock.advance(1.0)
        assert proxy.tick() is None
        assert proxy.session.suspended

    def test_low_confidence_blocks_migration(self, rig):
        world, clock, service, ubi, app = rig
        prefs = FollowMePreferences(
            min_bucket=ProbabilityBucket.VERY_HIGH)
        proxy = app.register_user("alice", prefs)
        ubi.tag_sighting("alice", Point(146, 4), 0.0)
        clock.advance(1.0)
        # A single Ubisense reading grades below VERY_HIGH here.
        estimate = service.locate("alice")
        if estimate.bucket < ProbabilityBucket.VERY_HIGH:
            assert proxy.tick() is None

    def test_unlocatable_user_stays_suspended(self, rig):
        _, _, _, _, app = rig
        proxy = app.register_user("ghost")
        assert proxy.tick() is None
        assert proxy.session.suspended

    def test_tick_all(self, rig):
        world, clock, service, ubi, app = rig
        app.register_user("alice")
        app.register_user("bob")
        ubi.tag_sighting("alice", Point(146, 4), 0.0)
        ubi.tag_sighting("bob", Point(27, 95), 0.0)
        clock.advance(1.0)
        events = app.tick_all()
        assert len(events) == 2
        assert {e.user_id for e in events} == {"alice", "bob"}
