"""Unit tests for repro.spatialdb.database — the spatial database."""

import pytest

from repro.errors import QueryError, SensorError, WorldModelError
from repro.geometry import Point, Rect
from repro.sim import paper_floor, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def db() -> SpatialDatabase:
    return SpatialDatabase(siebel_floor())


class TestWorldLoading:
    def test_entities_become_rows(self, db):
        rows = db.spatial_objects.select()
        assert len(rows) == len(db.world.entities())
        room = db.spatial_objects.get("SC/3", "3105")
        assert room["object_type"] == "Room"
        assert room["geometry_type"] == "polygon"

    def test_double_load_rejected(self, db):
        with pytest.raises(WorldModelError):
            db.load_world(siebel_floor())

    def test_no_world_access_rejected(self):
        empty = SpatialDatabase()
        with pytest.raises(WorldModelError):
            empty.world

    def test_universe(self, db):
        assert db.universe() == Rect(0, 0, 400, 100)


class TestObjectQueries:
    def test_object_mbr(self, db):
        assert db.object_mbr("SC/3/3105") == Rect(140, 0, 200, 40)

    def test_unknown_object_rejected(self, db):
        with pytest.raises(QueryError):
            db.object_row("SC/3/9999")

    def test_objects_intersecting(self, db):
        hits = db.objects_intersecting(Rect(150, 10, 160, 20))
        assert "SC/3/3105" in hits
        assert "SC/3/3216" not in hits

    def test_objects_intersecting_with_type_filter(self, db):
        hits = db.objects_intersecting(Rect(0, 0, 400, 100),
                                       object_type="Display")
        assert hits
        assert all("display" in h for h in hits)

    def test_objects_containing_point_exact(self, db):
        hits = db.objects_containing_point(Point(150, 10),
                                           object_type="Room")
        assert hits == ["SC/3/3105"]

    def test_nearest_objects_with_property_filter(self, db):
        # "Where is the nearest region that has power outlets?"
        found = db.nearest_objects(
            Point(150, 10), count=1,
            where=lambda row: row["properties"].get("power_outlets"))
        assert found
        glob, distance = found[0]
        assert glob == "SC/3/3105"
        assert distance == 0.0


class TestGeometricOperators:
    def test_distance(self, db):
        assert db.distance("SC/3/3105", "SC/3/3105") == 0.0
        assert db.distance("SC/3/3102", "SC/3/3110") > 0.0

    def test_contains(self, db):
        assert db.contains("SC/3", "SC/3/3105")
        assert not db.contains("SC/3/3105", "SC/3")

    def test_intersection_area(self, db):
        assert db.intersection_area("SC/3", "SC/3/3105") == 60 * 40

    def test_disjoint(self, db):
        assert db.disjoint("SC/3/3102", "SC/3/3110")
        assert not db.disjoint("SC/3", "SC/3/3102")


class TestSensorMetadata:
    def test_register_and_fetch(self, db):
        db.register_sensor("RF-12", "RF", 72.0, 60.0)
        row = db.sensor_row("RF-12")
        assert row["confidence"] == 72.0
        assert row["time_to_live"] == 60.0

    def test_invalid_confidence_rejected(self, db):
        with pytest.raises(SensorError):
            db.register_sensor("X", "RF", 150.0, 60.0)

    def test_invalid_ttl_rejected(self, db):
        with pytest.raises(SensorError):
            db.register_sensor("X", "RF", 50.0, 0.0)

    def test_unknown_sensor_rejected(self, db):
        with pytest.raises(SensorError):
            db.sensor_row("nope")


class TestReadings:
    def _reading(self, db, sensor="S1", obj="tom", t=0.0,
                 rect=Rect(10, 10, 20, 20)):
        return db.insert_reading(sensor, "SC/3", "RF", obj, rect, t,
                                 location=rect.center, detection_radius=5.0)

    def test_insert_and_fetch_fresh(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        self._reading(db, t=0.0)
        rows = db.readings_for("tom", now=30.0)
        assert len(rows) == 1

    def test_expiry_by_ttl(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        self._reading(db, t=0.0)
        assert db.readings_for("tom", now=61.0) == []

    def test_future_readings_excluded(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        self._reading(db, t=100.0)
        assert db.readings_for("tom", now=50.0) == []

    def test_latest_per_sensor(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        self._reading(db, t=0.0, rect=Rect(0, 0, 5, 5))
        self._reading(db, t=10.0, rect=Rect(10, 10, 15, 15))
        rows = db.readings_for("tom", now=20.0)
        assert len(rows) == 1
        assert rows[0]["detection_time"] == 10.0
        all_rows = db.readings_for("tom", now=20.0, latest_per_sensor=False)
        assert len(all_rows) == 2

    def test_moving_flag(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        self._reading(db, t=0.0, rect=Rect(0, 0, 5, 5))
        self._reading(db, t=1.0, rect=Rect(0, 0, 5, 5))
        self._reading(db, t=2.0, rect=Rect(1, 0, 6, 5))
        rows = db.sensor_readings.select()
        assert [r["moving"] for r in rows] == [False, False, True]

    def test_moving_is_per_sensor_object_pair(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        db.register_sensor("S2", "RF", 72.0, 60.0)
        self._reading(db, sensor="S1", t=0.0, rect=Rect(0, 0, 5, 5))
        self._reading(db, sensor="S2", t=1.0, rect=Rect(9, 9, 12, 12))
        rows = db.sensor_readings.select()
        assert [r["moving"] for r in rows] == [False, False]

    def test_force_expiry(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        self._reading(db, t=0.0)
        assert db.expire_object_readings("tom", "S1") == 1
        assert db.readings_for("tom", now=1.0) == []

    def test_purge_expired(self, db):
        db.register_sensor("S1", "RF", 72.0, 10.0)
        self._reading(db, t=0.0)
        self._reading(db, t=50.0)
        assert db.purge_expired(now=55.0) == 1
        assert len(db.sensor_readings) == 1

    def test_tracked_objects(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        self._reading(db, obj="tom")
        self._reading(db, obj="ann")
        assert db.tracked_objects() == ["ann", "tom"]


class TestLocationTriggers:
    def test_trigger_fires_on_intersecting_reading(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        fired = []
        db.create_location_trigger("t1", Rect(0, 0, 50, 50), fired.append)
        db.insert_reading("S1", "SC/3", "RF", "tom",
                          Rect(10, 10, 20, 20), 0.0)
        db.insert_reading("S1", "SC/3", "RF", "tom",
                          Rect(300, 80, 310, 90), 1.0)
        assert len(fired) == 1
        assert fired[0]["mobile_object_id"] == "tom"

    def test_trigger_object_filter(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        fired = []
        db.create_location_trigger("t1", Rect(0, 0, 50, 50), fired.append,
                                   mobile_object_id="ann")
        db.insert_reading("S1", "SC/3", "RF", "tom",
                          Rect(10, 10, 20, 20), 0.0)
        assert fired == []

    def test_drop_trigger(self, db):
        db.register_sensor("S1", "RF", 72.0, 60.0)
        fired = []
        db.create_location_trigger("t1", Rect(0, 0, 50, 50), fired.append)
        assert db.drop_location_trigger("t1")
        db.insert_reading("S1", "SC/3", "RF", "tom",
                          Rect(10, 10, 20, 20), 0.0)
        assert fired == []


class TestPaperFloorLoading:
    def test_table1_rows_present(self):
        db = SpatialDatabase(paper_floor())
        for name in ("3105", "NetLab", "HCILab", "LabCorridor"):
            row = db.spatial_objects.get("CS/Floor3", name)
            assert row is not None, name
        assert db.spatial_objects.get("CS/Floor3", "3105")["mbr"] == \
            Rect(330, 0, 350, 30)
