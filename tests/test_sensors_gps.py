"""Tests for the GPS adapter and geodetic calibration."""

import math

import pytest

from repro.errors import CalibrationError
from repro.geometry import Point
from repro.model import EntityType, FrameTransform, Glob, WorldModel
from repro.geometry import Polygon, Rect
from repro.sensors import GeodeticCalibration, GpsAdapter
from repro.spatialdb import SpatialDatabase

# Siebel Center, roughly.
REF_LAT = 40.1138
REF_LON = -88.2249


@pytest.fixture
def campus_db() -> SpatialDatabase:
    world = WorldModel()
    world.add_frame("Campus", "", FrameTransform())
    world.add_region(Glob.parse("Campus/quad"), EntityType.REGION,
                     Polygon.from_rect(Rect(-2000, -2000, 2000, 2000)),
                     "Campus")
    return SpatialDatabase(world)


class TestCalibration:
    def test_reference_maps_to_origin(self):
        cal = GeodeticCalibration(REF_LAT, REF_LON)
        local = cal.to_local(REF_LAT, REF_LON)
        assert local.almost_equals(Point(0, 0), 1e-6)

    def test_north_is_positive_y(self):
        cal = GeodeticCalibration(REF_LAT, REF_LON)
        north = cal.to_local(REF_LAT + 0.001, REF_LON)
        assert north.y > 0
        assert abs(north.x) < 1e-6
        # 0.001 degree of latitude is about 364 feet.
        assert north.y == pytest.approx(365, rel=0.01)

    def test_east_is_positive_x_scaled_by_latitude(self):
        cal = GeodeticCalibration(REF_LAT, REF_LON)
        east = cal.to_local(REF_LAT, REF_LON + 0.001)
        assert east.x > 0
        # Longitude degrees shrink by cos(latitude).
        assert east.x == pytest.approx(365 * math.cos(
            math.radians(REF_LAT)), rel=0.01)

    def test_roundtrip(self):
        cal = GeodeticCalibration(REF_LAT, REF_LON, origin_x=100.0,
                                  origin_y=-50.0)
        lat, lon = cal.to_geodetic(Point(740.0, 220.0))
        back = cal.to_local(lat, lon)
        assert back.almost_equals(Point(740.0, 220.0), 1e-3)

    def test_invalid_reference_rejected(self):
        with pytest.raises(CalibrationError):
            GeodeticCalibration(95.0, 0.0)
        with pytest.raises(CalibrationError):
            GeodeticCalibration(0.0, 200.0)


class TestGpsAdapter:
    def test_fix_uses_device_accuracy(self, campus_db):
        cal = GeodeticCalibration(REF_LAT, REF_LON)
        adapter = GpsAdapter("GPS-1", "Campus", cal, frame="")
        adapter.attach(campus_db)
        adapter.fix("walker", REF_LAT, REF_LON, 0.0, accuracy_ft=15.0)
        row = campus_db.readings_for("walker", now=1.0)[0]
        # "If the GPS receiver estimates an accuracy of 15 feet, we set
        # area A to a sphere with a radius of 15 feet."
        assert row["rect"].width == pytest.approx(30.0)

    def test_fix_falls_back_to_spec_resolution(self, campus_db):
        cal = GeodeticCalibration(REF_LAT, REF_LON)
        adapter = GpsAdapter("GPS-1", "Campus", cal, frame="")
        adapter.attach(campus_db)
        adapter.fix("walker", REF_LAT, REF_LON, 0.0)
        row = campus_db.readings_for("walker", now=1.0)[0]
        assert row["rect"].width == pytest.approx(100.0)  # 50 ft default

    def test_fix_position_projected(self, campus_db):
        cal = GeodeticCalibration(REF_LAT, REF_LON)
        adapter = GpsAdapter("GPS-1", "Campus", cal, frame="")
        adapter.attach(campus_db)
        adapter.fix("walker", REF_LAT + 0.001, REF_LON, 0.0,
                    accuracy_ft=10.0)
        row = campus_db.readings_for("walker", now=1.0)[0]
        assert row["location"].y == pytest.approx(365, rel=0.01)

    def test_carry_probability_affects_pq(self):
        cal = GeodeticCalibration(REF_LAT, REF_LON)
        devoted = GpsAdapter("G1", "Campus", cal, carry_probability=0.99,
                             frame="")
        forgetful = GpsAdapter("G2", "Campus", cal, carry_probability=0.5,
                               frame="")
        p_devoted, q_devoted = devoted.spec.pq(100.0, 1e6)
        p_forgetful, q_forgetful = forgetful.spec.pq(100.0, 1e6)
        assert p_devoted > p_forgetful
        assert q_devoted < q_forgetful
