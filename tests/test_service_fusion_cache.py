"""Tests for the shared-fusion memo behind trigger evaluation."""

import pytest

from repro.errors import ServiceError
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    return world, db, clock, service, ubi


class TestFusionCache:
    def test_many_triggers_one_fusion(self, rig):
        world, db, clock, service, ubi = rig
        room = world.canonical_mbr("SC/3/3105")
        for _ in range(50):
            service.subscribe(room, consumer=lambda e: None,
                              kind="both", threshold=0.2)
        ubi.tag_sighting("alice", Point(150, 20), clock.advance(1.0))
        # 50 trigger evaluations, one fusion: 49 hits.
        assert service.fusion_cache_hits == 49

    def test_new_reading_invalidates(self, rig):
        world, db, clock, service, ubi = rig
        ubi.tag_sighting("alice", Point(150, 20), clock.advance(1.0))
        first = service.fusion_result("alice")
        # Same instant, no new reading: cached object returned.
        assert service.fusion_result("alice") is first
        # A fresh reading must produce a fresh fusion.
        ubi.tag_sighting("alice", Point(151, 20), clock.advance(1.0))
        second = service.fusion_result("alice")
        assert second is not first
        assert len(second.readings) == 2 or len(second.readings) == 1

    def test_different_timestamps_not_conflated(self, rig):
        world, db, clock, service, ubi = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        early = service.fusion_result("alice", now=1.0)
        late = service.fusion_result("alice", now=2.5)
        assert early is not late
        assert late.now == 2.5

    def test_cache_bounded(self, rig):
        world, db, clock, service, ubi = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        for i in range(100):
            service.fusion_result("alice", now=1.0 + i * 0.01)
        assert len(service._fusion_cache) <= \
            service._fusion_cache_capacity

    def test_estimates_unaffected_by_caching(self, rig):
        world, db, clock, service, ubi = rig
        ubi.tag_sighting("alice", Point(150, 20), clock.advance(1.0))
        direct = service.locate("alice")
        cached = service.locate("alice")
        assert cached.rect == direct.rect
        assert cached.probability == direct.probability

    def test_content_addressing_hits_across_close_timestamps(self, rig):
        """Queries inside one freshness bucket share a fusion even
        though their float timestamps differ — the old time-keyed
        cache missed on every one of these."""
        world, db, clock, service, ubi = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        first = service.fusion_result("alice", now=1.0)
        # Ubisense ttl=3.0 → bucket width 0.375 s: ages 1.0 and 1.1
        # share the freshness bucket, so the fused result is reused.
        assert service.fusion_result("alice", now=1.1) is first
        assert service.cache_stats()["hits"] == 1

    def test_recalibration_invalidates(self, rig):
        """The fingerprint embeds the sensor-table version: a respec'd
        sensor must not serve stale fused math."""
        world, db, clock, service, ubi = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        first = service.fusion_result("alice", now=1.0)
        db.sensor_specs.update(
            lambda row: row["sensor_id"] == "Ubi-1",
            {"confidence": 40.0})
        assert service.fusion_result("alice", now=1.0) is not first


class TestCacheStats:
    def test_capacity_is_configurable(self):
        db = SpatialDatabase(siebel_floor())
        service = LocationService(db, fusion_cache_capacity=4)
        adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        adapter.tag_sighting("alice", Point(150, 20), 0.0)
        for i in range(10):
            service.fusion_result("alice", now=1.0 + i * 0.01)
        assert len(service._fusion_cache) <= 4

    def test_invalid_capacity_rejected(self):
        db = SpatialDatabase(siebel_floor())
        with pytest.raises(ServiceError):
            LocationService(db, fusion_cache_capacity=0)
        with pytest.raises(ServiceError):
            LocationService(db, fusion_cache_capacity=-3)

    def test_cache_stats_reports_hits_misses_evictions(self):
        db = SpatialDatabase(siebel_floor())
        service = LocationService(db, fusion_cache_capacity=2)
        adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        adapter.tag_sighting("alice", Point(150, 20), 0.0)

        stats = service.cache_stats()
        assert stats == {"hits": 0, "misses": 0, "evictions": 0,
                         "size": 0, "capacity": 2,
                         "incremental_reuses": 0, "full_builds": 0}

        service.fusion_result("alice", now=1.0)   # miss
        service.fusion_result("alice", now=1.0)   # hit
        service.fusion_result("alice", now=2.0)   # miss
        service.fusion_result("alice", now=3.0)   # miss -> eviction

        stats = service.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 3
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        assert stats["capacity"] == 2


class TestClassifierCache:
    """The classifier memo must key on table *version*, not row count."""

    def test_same_count_replacement_rebuilds(self, rig):
        world, db, clock, service, ubi = rig
        first = service.classifier()
        assert service.classifier() is first  # stable while table is

        # Replace the sensor's row without changing the row count: a
        # row-count key would keep serving the stale classifier.
        db.sensor_specs.update(
            lambda row: row["sensor_id"] == "Ubi-1",
            {"confidence": 40.0})
        rebuilt = service.classifier()
        assert rebuilt is not first

    def test_registration_rebuilds(self, rig):
        world, db, clock, service, ubi = rig
        first = service.classifier()
        UbisenseAdapter("Ubi-2", "SC/3", frame="").attach(db)
        assert service.classifier() is not first
