"""Indexed-vs-reference equivalence for the query-side indexes.

PR 5 made trigger dispatch, subscription matching, region queries,
symbolic point-location and path distances index-driven; every old
linear scan survives as a ``*_reference`` method.  These properties
assert the indexed paths return exactly — ordering included — what the
references return on random worlds, mirroring
``test_core_lattice_equivalence.py`` for the fusion hot path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProbabilityClassifier
from repro.geometry import Point, Polygon, Rect
from repro.reasoning.navgraph import Graph
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.service.subscriptions import Subscription, SubscriptionManager
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import Column, Schema, SpatialDatabase, Table, Trigger

# The Siebel floor's canonical extent, coarsened to a grid so random
# rectangles share edges, nest, tie and miss — the cases where index
# pruning and tie-breaking can actually diverge from the scans.
xs = st.integers(min_value=0, max_value=39)
ys = st.integers(min_value=0, max_value=19)


@st.composite
def grid_rects(draw):
    x = draw(xs) * 10.0
    y = draw(ys) * 5.0
    w = draw(st.integers(min_value=1, max_value=10)) * 10.0
    h = draw(st.integers(min_value=1, max_value=8)) * 5.0
    return Rect(x, y, x + w, y + h)


@st.composite
def grid_points(draw):
    return Point(draw(xs) * 10.0 + 0.5, draw(ys) * 5.0 + 0.5)


# ----------------------------------------------------------------------
# Spatial trigger dispatch (Table._fire_indexed vs _fire_reference)
# ----------------------------------------------------------------------

def _build_table(specs, log, tag):
    """A rect table with one trigger per spec.

    A spec is (region_or_None, enabled).  Region triggers use the
    honest enter-style condition (region intersects the row rect), so
    the hint contract holds; region-less triggers match every row.
    """
    schema = Schema([Column("name", str), Column("rect", Rect)])
    table = Table("readings", schema)
    table.enable_spatial_triggers("rect")
    for i, (region, enabled) in enumerate(specs):
        trigger_id = f"t{i}"
        if region is None:
            def condition(row, _i=i):
                return True
        else:
            def condition(row, _region=region):
                return _region.intersects(row["rect"])
        def action(row, _tid=trigger_id):
            log.append((tag, _tid, row["name"]))
        table.create_trigger(Trigger(trigger_id, "insert", condition,
                                     action, enabled=enabled,
                                     region=region))
    return table


trigger_specs = st.lists(
    st.tuples(st.one_of(st.none(), grid_rects()), st.booleans()),
    min_size=0, max_size=8)


class TestTriggerDispatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(trigger_specs,
           st.lists(grid_rects(), min_size=0, max_size=8),
           st.lists(st.integers(min_value=0, max_value=7),
                    min_size=0, max_size=3))
    def test_indexed_firings_match_reference(self, specs, rows, drops):
        log = []
        indexed = _build_table(specs, log, "indexed")
        reference = _build_table(specs, log, "reference")
        reference.use_spatial_dispatch = False
        for drop in drops:
            indexed.drop_trigger(f"t{drop}")
            reference.drop_trigger(f"t{drop}")
        for n, rect in enumerate(rows):
            indexed.insert({"name": f"row-{n}", "rect": rect})
            reference.insert({"name": f"row-{n}", "rect": rect})
        fired_indexed = [(t, r) for tag, t, r in log if tag == "indexed"]
        fired_reference = [(t, r) for tag, t, r in log
                           if tag == "reference"]
        assert fired_indexed == fired_reference


# ----------------------------------------------------------------------
# Subscription matching and pruned push dispatch
# ----------------------------------------------------------------------

OBJECTS = ("alice", "bob", "carol")
CLASSIFIER = ProbabilityClassifier([0.4, 0.7, 0.95])

subscription_specs = st.lists(
    st.tuples(
        st.one_of(st.none(), st.sampled_from(OBJECTS)),  # object filter
        grid_rects(),                                    # region
        st.sampled_from([0.0, 0.2, 0.5, 0.9]),           # threshold
        st.sampled_from(["enter", "leave", "both"]),
    ),
    min_size=0, max_size=10)


def _build_manager(specs, sink, tag):
    manager = SubscriptionManager()
    for i, (object_id, region, threshold, kind) in enumerate(specs):
        manager.add(Subscription(
            subscription_id=f"sub-{i}",
            region=region,
            kind=kind,
            object_id=object_id,
            threshold=threshold,
            consumer=lambda event, _tag=tag: sink.append(
                (_tag, event["subscription_id"], event["transition"],
                 event["object_id"])),
        ))
    return manager


class TestSubscriptionMatchingEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(subscription_specs,
           st.lists(st.integers(min_value=0, max_value=9),
                    min_size=0, max_size=3))
    def test_indexed_matching_equals_scan(self, specs, drops):
        manager = _build_manager(specs, [], "m")
        for drop in drops:
            manager.remove(f"sub-{drop}")
        for object_id in OBJECTS:
            indexed = [s.subscription_id
                       for s in manager.matching(object_id)]
            reference = [s.subscription_id
                         for s in manager.matching_reference(object_id)]
            assert indexed == reference

    @settings(max_examples=60, deadline=None)
    @given(subscription_specs,
           st.lists(st.tuples(st.sampled_from(OBJECTS), grid_rects(),
                              st.floats(min_value=0.05, max_value=1.0)),
                    min_size=0, max_size=6))
    def test_pruned_dispatch_is_observably_identical(self, specs, events):
        """Evaluating only ``matching_for_result`` candidates yields the
        same notifications (in order) and the same final inside-state
        as evaluating every matching subscription, for any confidence
        assignment consistent with the support contract (confidence is
        exactly 0 when the subscription region misses the support)."""
        sink = []
        full = _build_manager(specs, sink, "full")
        pruned = _build_manager(specs, sink, "pruned")

        def confidence_for(subscription, support, value):
            if not subscription.region.intersects(support):
                return 0.0
            return value

        for object_id, support, value in events:
            for subscription in full.matching(object_id):
                conf = confidence_for(subscription, support, value)
                full.evaluate(subscription, object_id, conf,
                              CLASSIFIER.classify(conf), 1.0,
                              lambda s, e: s.consumer(e))
            for subscription in pruned.matching_for_result(object_id,
                                                           support):
                conf = confidence_for(subscription, support, value)
                pruned.evaluate(subscription, object_id, conf,
                                CLASSIFIER.classify(conf), 1.0,
                                lambda s, e: s.consumer(e))
        full_events = [e[1:] for e in sink if e[0] == "full"]
        pruned_events = [e[1:] for e in sink if e[0] == "pruned"]
        assert full_events == pruned_events
        for full_sub, pruned_sub in zip(full.all(), pruned.all()):
            for object_id in OBJECTS:
                assert (full_sub.inside.get(object_id, False)
                        == pruned_sub.inside.get(object_id, False))


# ----------------------------------------------------------------------
# Symbolic lattice point location (R-tree vs linear scan)
# ----------------------------------------------------------------------

class TestLatticePointLocationEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(grid_rects(), min_size=0, max_size=5),
           st.lists(grid_points(), min_size=1, max_size=6),
           st.lists(grid_rects(), min_size=1, max_size=6))
    def test_indexed_resolution_matches_scan(self, regions, points,
                                             queries):
        world = siebel_floor()
        service = LocationService(SpatialDatabase(world))
        lattice = service.regions
        for i, rect in enumerate(regions):
            service.define_region(f"SC/3/zone-{i}",
                                  Polygon.from_rect(rect), "")
        for p in points:
            indexed = world.smallest_region_containing(p)
            reference = world.smallest_region_containing_reference(p)
            assert indexed is reference
        for rect in queries:
            assert (lattice.finest_region_containing_rect(rect)
                    == lattice.finest_region_containing_rect_reference(
                        rect))
            assert (lattice.regions_overlapping(rect)
                    == lattice.regions_overlapping_reference(rect))


# ----------------------------------------------------------------------
# Navigation graph distance memo
# ----------------------------------------------------------------------

class TestNavgraphMemoEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                              st.integers(1, 20), st.booleans()),
                    min_size=1, max_size=14),
           st.tuples(st.integers(0, 7), st.integers(0, 7),
                     st.integers(1, 20), st.booleans()))
    def test_memoized_paths_match_reference(self, edges, late_edge):
        graph = Graph()
        for a, b, w, restricted in edges:
            graph.add_edge(f"n{a}", f"n{b}", float(w),
                           restricted=restricted)
        nodes = graph.nodes()
        for allow in (False, True):
            for source in nodes:
                for target in nodes:
                    assert (graph.shortest_path(source, target, allow)
                            == graph.shortest_path_reference(
                                source, target, allow))
        # Mutation invalidates the memo: re-check after a new edge.
        a, b, w, restricted = late_edge
        graph.add_edge(f"n{a}", f"n{b}", float(w), restricted=restricted)
        for source in graph.nodes():
            for target in graph.nodes():
                assert (graph.shortest_path(source, target)
                        == graph.shortest_path_reference(source, target))


# ----------------------------------------------------------------------
# objects_in_region pruning (end-to-end over a real service)
# ----------------------------------------------------------------------

def _tracked_service(placements):
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    for i, point in enumerate(placements):
        ubi.tag_sighting(f"person-{i:02d}", point, 0.0)
    clock.advance(1.0)
    return service


class TestObjectsInRegionEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(grid_points(), min_size=1, max_size=6),
           st.lists(grid_rects(), min_size=1, max_size=4),
           st.sampled_from([0.0, 0.2, 0.5]))
    def test_pruned_matches_reference(self, placements, queries,
                                      min_confidence):
        service = _tracked_service(placements)
        for rect in queries:
            pruned = service.objects_in_region(
                rect, min_confidence=min_confidence)
            reference = service.objects_in_region_reference(
                rect, min_confidence=min_confidence)
            assert pruned == reference

    def test_result_order_is_confidence_desc_then_object_id(self):
        """Satellite pin: (confidence desc, object_id asc), independent
        of insertion order — tied confidences sort alphabetically."""
        world = siebel_floor()
        db = SpatialDatabase(world)
        clock = SimClock()
        service = LocationService(db, clock=clock)
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        # bob before alice, at the identical spot: identical readings
        # give identical confidences, so the tie must break by id.
        ubi.tag_sighting("bob", Point(150.0, 20.0), 0.0)
        ubi.tag_sighting("alice", Point(150.0, 20.0), 0.0)
        ubi.tag_sighting("zoe", Point(400.0, 100.0), 0.0)
        clock.advance(1.0)
        result = service.objects_in_region(Rect(140, 10, 160, 30),
                                           min_confidence=0.0)
        assert result == sorted(result, key=lambda p: (-p[1], p[0]))
        tied = [oid for oid, conf in result
                if conf == dict(result)["alice"]]
        assert tied == sorted(tied)
        assert tied[:2] == ["alice", "bob"]
