"""Tests for the ASCII floor renderer."""

import pytest

from repro.core import LocationEstimate, ProbabilityBucket
from repro.errors import SimulationError
from repro.geometry import Point, Rect
from repro.sim import Scenario, paper_floor, siebel_floor
from repro.sim.movement import MovementModel
from repro.sim.render import FloorRenderer, render_scenario


class TestRenderer:
    def test_rooms_labelled(self):
        text = FloorRenderer(paper_floor(), width=80).render()
        assert "NetLab" in text or "Net" in text
        assert "#" in text

    def test_doors_drawn(self):
        text = FloorRenderer(siebel_floor(), width=96).render()
        assert "+" in text

    def test_deterministic(self):
        world = siebel_floor()
        a = FloorRenderer(world, width=90).render()
        b = FloorRenderer(world, width=90).render()
        assert a == b

    def test_people_markers_and_legend(self):
        world = siebel_floor()
        model = MovementModel(world, seed=1)
        alice = model.add_person("alice", start_region="SC/3/3105")
        bob = model.add_person("bob", start_region="SC/3/3216")
        text = FloorRenderer(world, width=96).render([alice, bob])
        assert "1=alice" in text
        assert "2=bob" in text
        assert "1" in text.splitlines()[0] or any(
            "1" in line for line in text.splitlines())

    def test_estimates_drawn(self):
        world = siebel_floor()
        estimate = LocationEstimate(
            object_id="alice", rect=Rect(145, 10, 155, 20),
            probability=0.9, bucket=ProbabilityBucket.HIGH, time=0.0,
            symbolic="SC/3/3105")
        text = FloorRenderer(world, width=96).render(
            estimates=[estimate])
        assert "*" in text
        assert "alice@SC/3/3105" in text

    def test_width_validation(self):
        with pytest.raises(SimulationError):
            FloorRenderer(siebel_floor(), width=5)

    def test_all_markers_within_grid(self):
        world = siebel_floor()
        model = MovementModel(world, seed=3)
        for i in range(12):
            model.add_person(f"p{i}")
        renderer = FloorRenderer(world, width=60)
        text = renderer.render(model.people)
        grid_lines = text.split("\n\npeople:")[0].splitlines()
        for line in grid_lines:
            assert len(line) <= 60

    def test_render_scenario_helper(self):
        scenario = Scenario(seed=7).standard_deployment()
        scenario.add_people(2)
        scenario.run(60)
        text = render_scenario(scenario, width=80)
        assert "people:" in text


class TestCli:
    def test_floor_command(self, capsys):
        from repro.cli import main
        assert main(["floor", "paper", "--width", "70"]) == 0
        out = capsys.readouterr().out
        assert "#" in out

    def test_blueprint_command(self, capsys):
        import json
        from repro.cli import main
        assert main(["blueprint", "paper"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == "middlewhere-blueprint"

    def test_demo_command(self, capsys):
        from repro.cli import main
        assert main(["demo", "--people", "2", "--seconds", "30",
                     "--snapshots", "1", "--width", "70"]) == 0
        out = capsys.readouterr().out
        assert "t = 30 s" in out

    def test_locate_command(self, capsys):
        from repro.cli import main
        assert main(["locate", "where is person-1",
                     "--people", "2", "--seconds", "60"]) == 0
        out = capsys.readouterr().out
        assert "Q: where is person-1" in out
        assert "A:" in out

    def test_calibrate_command(self, capsys):
        from repro.cli import main
        assert main(["calibrate", "--seconds", "300",
                     "--people", "4"]) == 0
        out = capsys.readouterr().out
        assert "calibration of RF" in out
