"""Tests for location history (trajectories, interpolation, speed)."""

import pytest

from repro.core import LocationEstimate, ProbabilityBucket
from repro.errors import ServiceError
from repro.geometry import Point, Rect
from repro.service import LocationHistory


def estimate(x: float, y: float, t: float, object_id: str = "alice",
             symbolic: str = None) -> LocationEstimate:
    return LocationEstimate(
        object_id=object_id, rect=Rect.from_center(Point(x, y), 1.0),
        probability=0.9, bucket=ProbabilityBucket.HIGH, time=t,
        symbolic=symbolic)


class TestRecording:
    def test_record_and_last(self):
        history = LocationHistory()
        history.record(estimate(0, 0, 1.0))
        history.record(estimate(5, 0, 2.0))
        assert history.last("alice").time == 2.0
        assert history.sample_count("alice") == 2

    def test_out_of_order_dropped(self):
        history = LocationHistory()
        history.record(estimate(0, 0, 5.0))
        history.record(estimate(9, 9, 1.0))
        assert history.sample_count("alice") == 1
        assert history.last("alice").time == 5.0

    def test_min_interval_coalesces(self):
        history = LocationHistory(min_interval=1.0)
        history.record(estimate(0, 0, 1.0))
        history.record(estimate(1, 0, 1.2))  # replaces, not appends
        assert history.sample_count("alice") == 1
        assert history.last("alice").center.x == 1.0

    def test_capacity_ring(self):
        history = LocationHistory(max_samples_per_object=4,
                                  min_interval=0.0)
        for i in range(10):
            history.record(estimate(i, 0, float(i)))
        assert history.sample_count("alice") == 4
        assert history.trajectory("alice")[0].time == 6.0

    def test_forget(self):
        history = LocationHistory()
        history.record(estimate(0, 0, 1.0))
        assert history.forget("alice")
        assert not history.forget("alice")
        with pytest.raises(ServiceError):
            history.last("alice")

    def test_capacity_validation(self):
        with pytest.raises(ServiceError):
            LocationHistory(max_samples_per_object=1)


class TestQueries:
    @pytest.fixture
    def walk(self) -> LocationHistory:
        history = LocationHistory(min_interval=0.0)
        # alice walks east 4 ft/s for 10 s.
        for i in range(11):
            history.record(estimate(4.0 * i, 0.0, float(i),
                                    symbolic="SC/3/Corridor" if i > 4
                                    else "SC/3/3105"))
        return history

    def test_trajectory_window(self, walk):
        samples = walk.trajectory("alice", t0=3.0, t1=6.0)
        assert [s.time for s in samples] == [3.0, 4.0, 5.0, 6.0]

    def test_at_nearest(self, walk):
        assert walk.at("alice", 4.4).time == 4.0
        assert walk.at("alice", 4.6).time == 5.0

    def test_position_interpolated(self, walk):
        p = walk.position_at("alice", 2.5)
        assert p.x == pytest.approx(10.0)

    def test_position_clamped_outside_span(self, walk):
        assert walk.position_at("alice", -5.0).x == 0.0
        assert walk.position_at("alice", 99.0).x == 40.0

    def test_speed(self, walk):
        assert walk.speed("alice", window=10.0) == pytest.approx(4.0)

    def test_speed_needs_two_samples(self):
        history = LocationHistory()
        history.record(estimate(0, 0, 1.0))
        assert history.speed("alice") is None

    def test_distance_travelled(self, walk):
        assert walk.distance_travelled("alice") == pytest.approx(40.0)
        assert walk.distance_travelled("alice", t0=2.0, t1=5.0) == \
            pytest.approx(12.0)

    def test_regions_visited_deduplicates_runs(self, walk):
        assert walk.regions_visited("alice") == ["SC/3/3105",
                                                 "SC/3/Corridor"]

    def test_is_stationary(self, walk):
        assert walk.is_stationary("alice") is False
        still = LocationHistory(min_interval=0.0)
        for i in range(5):
            still.record(estimate(10.0, 10.0, float(i), "badge"))
        assert still.is_stationary("badge", window=10.0) is True

    def test_per_object_isolation(self):
        history = LocationHistory()
        history.record(estimate(0, 0, 1.0, "alice"))
        history.record(estimate(9, 9, 1.0, "bob"))
        assert history.tracked_objects() == ["alice", "bob"]
        assert history.last("alice").center.x == 0.0
        assert history.last("bob").center.x == 9.0


class TestServiceIntegration:
    def test_locate_records_history(self):
        from repro.sensors import UbisenseAdapter
        from repro.service import LocationService
        from repro.sim import SimClock, siebel_floor
        from repro.spatialdb import SpatialDatabase

        db = SpatialDatabase(siebel_floor())
        clock = SimClock()
        history = LocationHistory(min_interval=0.0)
        service = LocationService(db, clock=clock, history=history)
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)

        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        service.locate("alice")
        ubi.tag_sighting("alice", Point(154, 20), 1.5)
        clock.advance(1.0)
        service.locate("alice")
        assert history.sample_count("alice") == 2
        assert history.speed("alice", window=10.0) > 0.0

    def test_privacy_coarsened_answers_not_archived(self):
        from repro.sensors import UbisenseAdapter
        from repro.service import DEPTH_FLOOR, LocationService
        from repro.sim import SimClock, siebel_floor
        from repro.spatialdb import SpatialDatabase

        db = SpatialDatabase(siebel_floor())
        clock = SimClock()
        history = LocationHistory(min_interval=0.0)
        service = LocationService(db, clock=clock, history=history)
        service.privacy.restrict("alice", DEPTH_FLOOR)
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        service.locate("alice", requester="stranger")
        assert history.sample_count("alice") == 0
