"""Tests for the Vocal Personnel Locator (Section 8.4)."""

import pytest

from repro.apps import VocalPersonnelLocator
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import DEPTH_BLOCKED, LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    locator = VocalPersonnelLocator(service)
    return clock, service, ubi, locator


class TestWhereIs:
    def test_located_person(self, rig):
        clock, service, ubi, locator = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        reply = locator.ask("where is alice?")
        assert "alice is in SC/3/3105" in reply
        assert "confidence" in reply

    @pytest.mark.parametrize("utterance", [
        "where is alice",
        "Where's alice?",
        "find alice",
        "locate alice",
    ])
    def test_phrasings(self, rig, utterance):
        clock, service, ubi, locator = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        assert "SC/3/3105" in locator.ask(utterance)

    def test_unknown_person(self, rig):
        _, _, _, locator = rig
        assert "cannot locate" in locator.ask("where is nobody?")

    def test_privacy_respected(self, rig):
        clock, service, ubi, locator = rig
        service.privacy.restrict("alice", DEPTH_BLOCKED)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        reply = locator.ask("where is alice?", requester="stranger")
        assert "private" in reply


class TestWhoIsIn:
    def test_occupied_room(self, rig):
        clock, service, ubi, locator = rig
        ubi.tag_sighting("alice", Point(190, 80), 0.0)
        ubi.tag_sighting("bob", Point(200, 85), 0.0)
        clock.advance(1.0)
        reply = locator.ask("who is in the conference room?")
        assert "alice" in reply
        assert "bob" in reply

    def test_empty_room(self, rig):
        _, _, _, locator = rig
        reply = locator.ask("who is in HCILab?")
        assert "Nobody" in reply

    def test_unknown_region(self, rig):
        _, _, _, locator = rig
        reply = locator.ask("who is in the dungeon?")
        assert "do not know" in reply

    def test_exact_glob_accepted(self, rig):
        clock, service, ubi, locator = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        assert "alice" in locator.ask("who is in SC/3/3105?")


class TestNearest:
    def test_nearest_display(self, rig):
        clock, service, ubi, locator = rig
        ubi.tag_sighting("alice", Point(290, 5), 0.0)
        clock.advance(1.0)
        reply = locator.ask("which display is nearest alice?")
        assert "SC/3/HCILab/display1" in reply
        assert "feet away" in reply

    def test_nearest_workstation(self, rig):
        clock, service, ubi, locator = rig
        ubi.tag_sighting("alice", Point(150, 10), 0.0)
        clock.advance(1.0)
        reply = locator.ask("which computer is nearest alice?")
        assert "workstation1" in reply

    def test_unknown_kind(self, rig):
        _, _, _, locator = rig
        assert "cannot search" in locator.ask(
            "which unicorn is nearest alice?")


class TestFallbacks:
    def test_unparseable_utterance(self, rig):
        _, _, _, locator = rig
        reply = locator.ask("make me a sandwich")
        assert "Sorry" in reply

    def test_transcript_recorded(self, rig):
        _, _, _, locator = rig
        locator.ask("where is alice?")
        locator.ask("nonsense")
        assert len(locator.transcript) == 2
        assert locator.transcript[0][0] == "where is alice?"
