"""Concurrency tests: ingest and queries on separate threads."""

import threading

import pytest

from repro.geometry import Point, Rect
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import Column, Schema, SpatialDatabase, Table


def run_threads(targets):
    """Start one thread per (target, args) pair, join them all, and
    return the exceptions they raised (shared helper — the chaos suite
    reuses it)."""
    errors = []

    def guarded(target, args):
        try:
            target(*args)
        except Exception as exc:  # noqa: BLE001 — collected for assert
            errors.append(exc)

    threads = [threading.Thread(target=guarded, args=(target, args))
               for target, args in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestTableConcurrency:
    def test_parallel_inserts_all_land(self):
        table = Table("t", Schema([Column("k", int), Column("v", str)]))
        table.create_index("k")

        def writer(base: int) -> None:
            for i in range(200):
                table.insert({"k": base + i, "v": f"w{base}"})

        errors = run_threads([(writer, (n * 1000,)) for n in range(4)])
        assert not errors
        assert len(table) == 800
        for n in range(4):
            assert len(table.select_eq("k", n * 1000)) == 1

    def test_reads_during_writes_are_consistent(self):
        table = Table("t", Schema([Column("k", int)]))
        stop = threading.Event()
        anomalies = []

        def writer() -> None:
            i = 0
            while not stop.is_set():
                table.insert({"k": i})
                i += 1

        def reader() -> None:
            while not stop.is_set():
                rows = table.select()
                keys = [row["k"] for row in rows]
                # Insertion order must always be visible in order.
                if keys != sorted(keys):
                    anomalies.append(keys)

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start()
        r.start()
        import time
        time.sleep(0.3)
        stop.set()
        w.join()
        r.join()
        assert not anomalies


class TestServiceConcurrency:
    def test_remote_queries_during_ingest(self):
        """TCP locate() calls race adapter ingest without corruption."""
        from repro.orb import Orb
        from repro.service import publish_service

        world = siebel_floor()
        db = SpatialDatabase(world)
        clock = SimClock()
        server = Orb("server")
        server.listen()
        service = LocationService(db, orb=server, clock=clock)
        adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        adapter.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        reference, _ = publish_service(service, server)

        stop = threading.Event()
        errors = []

        def ingest() -> None:
            step = 0
            while not stop.is_set():
                step += 1
                now = clock.advance(0.5)
                adapter.tag_sighting("alice",
                                     Point(150 + step % 5, 20), now)
                db.purge_expired(now)

        successes = [0]

        def query() -> None:
            from repro.errors import RemoteInvocationError

            client = Orb("client")
            try:
                proxy = client.resolve(reference)
                while not stop.is_set():
                    try:
                        estimate = proxy.locate("alice")
                    except RemoteInvocationError as exc:
                        # Momentarily-stale readings are legitimate
                        # (the ingest thread purges between inserts);
                        # anything else is a real failure.
                        if exc.remote_type != "UnknownObjectError":
                            errors.append(exc)
                        continue
                    successes[0] += 1
                    if not (0.0 <= estimate.probability <= 1.0):
                        errors.append(estimate)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                client.shutdown()

        threads = [threading.Thread(target=ingest)] + [
            threading.Thread(target=query) for _ in range(3)]
        for t in threads:
            t.start()
        import time
        time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join()
        server.shutdown()
        assert not errors
        assert successes[0] > 0  # queries really ran against ingest
