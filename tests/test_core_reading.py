"""Unit tests for normalized readings."""

import pytest

from repro.core import (
    LinearTDF,
    NormalizedReading,
    SensorSpec,
    reading_from_coordinate,
    reading_from_region,
)
from repro.errors import SensorError
from repro.geometry import Point, Rect


@pytest.fixture
def spec() -> SensorSpec:
    return SensorSpec("T", 1.0, 0.9, 0.05, resolution=5.0,
                      time_to_live=60.0, tdf=LinearTDF(zero_at=120.0))


class TestNormalization:
    def test_coordinate_reading_becomes_bounding_square(self, spec):
        reading = reading_from_coordinate("S1", "tom", spec,
                                          Point(100, 50), time=0.0)
        assert reading.rect == Rect(95, 45, 105, 55)

    def test_explicit_error_radius_overrides_resolution(self, spec):
        reading = reading_from_coordinate("S1", "tom", spec, Point(0, 0),
                                          time=0.0, error_radius=1.0)
        assert reading.rect == Rect(-1, -1, 1, 1)

    def test_missing_radius_rejected(self):
        symbolic_spec = SensorSpec("Card", 1.0, 0.98, 0.02,
                                   resolution=None)
        with pytest.raises(SensorError):
            reading_from_coordinate("S1", "tom", symbolic_spec,
                                    Point(0, 0), time=0.0)

    def test_region_reading_keeps_rect(self, spec):
        room = Rect(0, 0, 20, 30)
        reading = reading_from_region("S1", "tom", spec, room, time=0.0)
        assert reading.rect == room


class TestFreshness:
    def test_age(self, spec):
        reading = reading_from_coordinate("S1", "tom", spec, Point(0, 0),
                                          time=10.0)
        assert reading.age_at(25.0) == 15.0
        assert reading.age_at(5.0) == 0.0  # clock skew clamped

    def test_expiry(self, spec):
        reading = reading_from_coordinate("S1", "tom", spec, Point(0, 0),
                                          time=0.0)
        assert not reading.is_expired_at(60.0)
        assert reading.is_expired_at(60.1)

    def test_pq_degrades_with_time(self, spec):
        reading = reading_from_coordinate("S1", "tom", spec, Point(0, 0),
                                          time=0.0)
        p_fresh, q_fresh = reading.pq_at(0.0, 50000.0)
        p_stale, q_stale = reading.pq_at(60.0, 50000.0)
        assert p_stale < p_fresh
        assert q_stale == q_fresh  # q is time-invariant

    def test_moving_flag_defaults_false(self, spec):
        reading = reading_from_region("S1", "tom", spec,
                                      Rect(0, 0, 1, 1), time=0.0)
        assert not reading.moving
