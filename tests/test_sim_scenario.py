"""Tests for the deployment model and scenario wiring."""

import pytest

from repro.errors import UnknownObjectError
from repro.sim import Scenario, paper_floor


class TestDeployment:
    def test_standard_deployment_registers_sensors(self, scenario):
        sensor_ids = {row["sensor_id"]
                      for row in scenario.db.sensor_specs.select()}
        assert "Ubi-18" in sensor_ids
        assert "RF-12" in sensor_ids
        assert "Card-3105" in sensor_ids
        assert "Finger-3105" in sensor_ids

    def test_sensors_produce_readings(self, populated_scenario):
        assert len(populated_scenario.db.sensor_readings) > 0
        assert populated_scenario.db.tracked_objects()

    def test_people_get_located(self, populated_scenario):
        located = 0
        for person in populated_scenario.people:
            try:
                estimate = populated_scenario.service.locate(
                    person.person_id)
            except UnknownObjectError:
                continue
            located += 1
            assert 0.0 <= estimate.probability <= 1.0
        assert located >= 1

    def test_estimates_are_plausible(self, populated_scenario):
        # When a person is locatable, the estimated region should be
        # within tens of feet of the truth (sensor ranges are 15-30 ft).
        for person in populated_scenario.people:
            try:
                estimate = populated_scenario.service.locate(
                    person.person_id)
            except UnknownObjectError:
                continue
            error = estimate.rect.center.distance_to(person.position)
            assert error < 120.0

    def test_determinism(self):
        def run():
            scenario = Scenario(seed=13).standard_deployment()
            scenario.add_people(2)
            scenario.run(45)
            return [(row["sensor_id"], row["mobile_object_id"],
                     row["detection_time"])
                    for row in scenario.db.sensor_readings.select()]
        assert run() == run()

    def test_accuracy_trace(self):
        scenario = Scenario(seed=21).standard_deployment()
        scenario.add_people(3)
        scenario.run(60, trace_accuracy=True)
        summary = scenario.trace.summary()
        assert summary.samples + summary.misses >= 60 * 3 * 0.9
        if summary.samples:
            assert 0.0 <= summary.room_accuracy <= 1.0
            assert summary.mean_error_ft >= 0.0

    def test_scenario_on_paper_floor(self):
        scenario = Scenario(world=paper_floor(), seed=5)
        scenario.deployment.install_card_reader("Card-3105",
                                                "CS/Floor3/3105")
        scenario.deployment.install_rf_station("RF-1",
                                               "CS/Floor3/Corridor3")
        scenario.add_people(2)
        scenario.run(60)
        assert scenario.now == pytest.approx(60.0)

    def test_publish_over_orb(self):
        scenario = Scenario(seed=3).standard_deployment()
        scenario.add_people(1)
        ref = scenario.publish()
        assert ref.startswith("inproc://")
        proxy = scenario.orb.resolve(ref)
        scenario.run(30)
        tracked = proxy.tracked_objects()
        assert isinstance(tracked, list)


class TestCardReaderEvents:
    def test_swipe_on_restricted_room_entry(self):
        scenario = Scenario(seed=8).standard_deployment()
        scenario.add_people(6)
        scenario.run(600, dt=1.0)
        swipes = scenario.db.sensor_readings.select(
            lambda row: row["sensor_type"] == "CardReader")
        # Six people wandering for ten minutes should hit a card-swipe
        # room at least once.
        assert swipes
