"""End-to-end: adapters → pipeline → fusion → region triggers.

The ISSUE acceptance scenario: at least 1000 readings for at least 10
objects travel the full asynchronous path, with exact accounting under
every overflow policy and all malformed readings dead-lettered with
reasons.
"""

import pytest

from repro.errors import IntakeOverflowError, PipelineError
from repro.geometry import Point, Rect
from repro.pipeline import (
    OVERFLOW_DROP_OLDEST,
    OVERFLOW_REJECT,
    LocationPipeline,
    PipelineConfig,
    PipelineReading,
)
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase


OBJECTS = 10
PER_OBJECT = 100  # 10 x 100 = 1000 readings


def make_rig(**service_kwargs):
    world = siebel_floor()
    db = SpatialDatabase(world)
    service = LocationService(db, **service_kwargs)
    adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    return world, db, service, adapter


def good_reading(object_id: str, t: float) -> PipelineReading:
    return PipelineReading(
        sensor_id="Ubi-1", glob_prefix="SC/3", sensor_type="ubisense",
        object_id=object_id, rect=Rect(149, 19, 151, 21),
        detection_time=t, location=Point(150, 20),
        detection_radius=1.0)


class TestEndToEnd:
    def test_thousand_readings_zero_loss_under_block(self):
        world, db, service, adapter = make_rig()
        events = []
        service.subscribe(world.canonical_mbr("SC/3/3105"), events.append,
                          kind="both", threshold=0.2)

        pipeline = LocationPipeline(
            service, PipelineConfig(workers=4, max_batch=16))
        for obj in range(OBJECTS):
            adapter.set_sink(pipeline)  # idempotent; exercises set_sink
        pipeline.start()
        try:
            room = world.canonical_mbr("SC/3/3105")
            for i in range(PER_OBJECT):
                t = float(i)
                for obj in range(OBJECTS):
                    # Inside room 3105, tiny per-object offset.
                    adapter.tag_sighting(
                        f"person-{obj}",
                        Point(room.center.x + obj * 0.1,
                              room.center.y),
                        t)
            assert pipeline.drain(timeout=60.0)
        finally:
            pipeline.stop()

        stats = pipeline.stats()
        total = OBJECTS * PER_OBJECT
        assert stats.enqueued == total
        assert stats.fused == total          # zero lost readings
        assert stats.dropped == 0
        assert stats.dead_lettered == 0
        assert stats.rejected == 0
        assert stats.reconciles()
        assert pipeline.workers.errors == []
        # Every reading landed in the spatial database.
        assert len(db.sensor_readings) == total
        # Region triggers fired: each object entered room 3105.
        assert stats.notifications == len(events)
        enters = [e for e in events if e["transition"] == "enter"]
        assert len({e["object_id"] for e in enters}) == OBJECTS
        # Latency accounting covered every fused reading.
        assert stats.enqueue_to_fused.count == total
        assert stats.enqueue_to_fused.p95 <= stats.enqueue_to_fused.max
        # The content-addressed fusion cache hits under continuously
        # advancing timestamps: each object keeps reporting the same
        # rectangle, so steady-state batches reuse the fused result
        # (the old time-keyed cache missed on every batch).
        assert stats.fusion_cache_hits > 0
        assert service.cache_stats()["hits"] >= stats.fusion_cache_hits

    def test_drop_oldest_deterministic_accounting(self):
        world, db, service, adapter = make_rig()
        capacity = 8
        submitted = 50
        pipeline = LocationPipeline(service, PipelineConfig(
            queue_capacity=capacity,
            overflow_policy=OVERFLOW_DROP_OLDEST, workers=2))
        # Workers not started yet: every overflow decision is forced
        # while the queue cannot drain, making drops exact.
        for i in range(submitted):
            assert pipeline.submit(good_reading("walker", float(i)))
        stats = pipeline.stats()
        assert stats.enqueued == submitted
        assert stats.dropped == submitted - capacity

        pipeline.start()
        try:
            assert pipeline.drain(timeout=30.0)
        finally:
            pipeline.stop()
        stats = pipeline.stats()
        assert stats.fused == capacity       # the survivors, exactly
        assert stats.dropped == submitted - capacity
        assert stats.reconciles()
        # The freshest readings survived (drop-oldest semantics).
        times = sorted(row["detection_time"]
                       for row in db.sensor_readings.select())
        assert times == [float(i) for i in range(submitted - capacity,
                                                 submitted)]

    def test_reject_policy_raises_and_counts(self):
        world, db, service, adapter = make_rig()
        pipeline = LocationPipeline(service, PipelineConfig(
            queue_capacity=2, overflow_policy=OVERFLOW_REJECT, workers=1))
        assert pipeline.submit(good_reading("runner", 0.0))
        assert pipeline.submit(good_reading("runner", 1.0))
        with pytest.raises(IntakeOverflowError):
            pipeline.submit(good_reading("runner", 2.0))
        stats = pipeline.stats()
        assert stats.rejected == 1
        assert stats.enqueued == 2           # refusals are not enqueued

        pipeline.start()
        try:
            assert pipeline.drain(timeout=30.0)
        finally:
            pipeline.stop()
        stats = pipeline.stats()
        assert stats.fused == 2
        assert stats.reconciles()

    def test_malformed_readings_dead_lettered_with_reasons(self):
        world, db, service, adapter = make_rig()
        # A sensor registered without a calibrated spec: readings from
        # it cannot be normalized for fusion.
        db.register_sensor("Legacy-9", "legacy", confidence=50.0,
                           time_to_live=10.0, spec=None)
        pipeline = LocationPipeline(service, PipelineConfig(workers=1))

        rect = Rect(0, 0, 1, 1)
        malformed = [
            (PipelineReading("Ubi-1", "SC/3", "ubisense", "",
                             rect, 1.0), "missing mobile object id"),
            (PipelineReading("", "SC/3", "ubisense", "alice",
                             rect, 1.0), "missing sensor id"),
            (PipelineReading("Ubi-1", "SC/3", "ubisense", "alice",
                             Rect(0, 0, float("inf"), 1), 1.0),
             "non-finite bounds"),
            (PipelineReading("Ubi-1", "SC/3", "ubisense", "alice",
                             rect, float("nan")), "invalid detection time"),
            (PipelineReading("Ubi-1", "SC/3", "ubisense", "alice",
                             rect, -5.0), "invalid detection time"),
            (PipelineReading("Ghost-1", "SC/3", "ubisense", "alice",
                             rect, 1.0), "unknown sensor"),
            (PipelineReading("Legacy-9", "SC/3", "legacy", "alice",
                             rect, 1.0), "no calibrated spec"),
        ]
        for reading, _ in malformed:
            assert pipeline.submit(reading) is False

        letters = pipeline.dead_letters.items()
        assert len(letters) == len(malformed)
        for letter, (reading, fragment) in zip(letters, malformed):
            assert letter.reading is reading
            assert fragment in letter.reason

        stats = pipeline.stats()
        assert stats.enqueued == len(malformed)
        assert stats.dead_lettered == len(malformed)
        assert stats.fused == 0
        assert stats.reconciles()

    def test_transient_flush_failures_retry_then_dead_letter(self):
        world, db, service, adapter = make_rig()
        from repro.errors import SensorError

        real_insert = db.insert_reading
        failures = {"remaining": 2}

        def flaky_insert(*args, **kwargs):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise SensorError("transient metadata race")
            return real_insert(*args, **kwargs)

        db.insert_reading = flaky_insert
        pipeline = LocationPipeline(service, PipelineConfig(workers=1))
        pipeline.submit(good_reading("alice", 1.0))
        pipeline.start()
        try:
            assert pipeline.drain(timeout=30.0)
        finally:
            pipeline.stop()
        stats = pipeline.stats()
        # Two transient failures, then success within max_attempts=3.
        assert stats.retries == 2
        assert stats.fused == 1
        assert stats.dead_lettered == 0
        assert stats.reconciles()

        # A permanently failing flush exhausts retries into the DLQ.
        db.insert_reading = lambda *a, **k: (_ for _ in ()).throw(
            SensorError("database down"))
        pipeline = LocationPipeline(service, PipelineConfig(workers=1))
        pipeline.submit(good_reading("bob", 2.0))
        pipeline.start()
        try:
            assert pipeline.drain(timeout=30.0)
        finally:
            pipeline.stop()
        stats = pipeline.stats()
        assert stats.fused == 0
        assert stats.dead_lettered == 1
        assert stats.reconciles()
        letters = pipeline.dead_letters.items()
        assert len(letters) == 1
        assert "flush failed after retries" in letters[0].reason

    def test_drain_before_start_refused(self):
        world, db, service, adapter = make_rig()
        pipeline = LocationPipeline(service, PipelineConfig(workers=1))
        pipeline.submit(good_reading("alice", 0.0))
        with pytest.raises(PipelineError):
            pipeline.drain(timeout=0.1)

    def test_context_manager_drains_on_exit(self):
        world, db, service, adapter = make_rig()
        with LocationPipeline(service,
                              PipelineConfig(workers=2)) as pipeline:
            for i in range(20):
                pipeline.submit(good_reading("alice", float(i)))
        stats = pipeline.stats()
        assert stats.fused == 20
        assert stats.reconciles()
        assert not pipeline.started
