"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import SensorSpec
from repro.geometry import Point, Rect
from repro.sim import Scenario, paper_floor, siebel_floor


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="also run tests marked slow (long chaos sweeps)")


def pytest_collection_modifyitems(config: pytest.Config,
                                  items: list) -> None:
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def universe() -> Rect:
    """A building-scale universe (the paper's 500 x 100 ft floor)."""
    return Rect(0.0, 0.0, 500.0, 100.0)


@pytest.fixture
def ubisense_like() -> SensorSpec:
    """A precise, trusted sensor: tight area, high y, tiny z."""
    return SensorSpec(
        sensor_type="Ubisense",
        carry_probability=0.9,
        detection_probability=0.95,
        misident_probability=0.05,
        z_area_scaled=True,
        resolution=0.5,
        time_to_live=3.0,
    )


@pytest.fixture
def rf_like() -> SensorSpec:
    """A coarse, weaker sensor: wide area, modest y, larger z."""
    return SensorSpec(
        sensor_type="RF",
        carry_probability=0.85,
        detection_probability=0.75,
        misident_probability=0.25,
        z_area_scaled=True,
        resolution=15.0,
        time_to_live=60.0,
    )


@pytest.fixture
def biometric_like() -> SensorSpec:
    """A certain-identity sensor (x = 1)."""
    return SensorSpec(
        sensor_type="Biometric",
        carry_probability=1.0,
        detection_probability=0.99,
        misident_probability=0.01,
        resolution=2.0,
        time_to_live=30.0,
    )


@pytest.fixture
def paper_world():
    """The Table-1 floor."""
    return paper_floor()


@pytest.fixture
def siebel_world():
    """The Siebel-style deployment floor."""
    return siebel_floor()


@pytest.fixture
def scenario() -> Scenario:
    """A seeded scenario with the paper's standard deployment."""
    return Scenario(seed=42).standard_deployment()


@pytest.fixture
def populated_scenario(scenario: Scenario) -> Scenario:
    """The scenario after people have moved and sensors have fired."""
    scenario.add_people(3)
    scenario.run(60, dt=1.0)
    return scenario
