"""Tests for sensor-trace recording and replay."""

import io

import pytest

from repro.core import FusionEngine, MODE_EQ7
from repro.errors import SimulationError
from repro.service import LocationService
from repro.sim import (
    Scenario,
    SimClock,
    TraceRecorder,
    copy_sensor_registrations,
    read_trace,
    replay_trace,
    siebel_floor,
)
from repro.spatialdb import SpatialDatabase


def record_scenario(seconds: float = 120.0, seed: int = 14):
    scenario = Scenario(seed=seed).standard_deployment()
    scenario.add_people(3)
    stream = io.StringIO()
    recorder = TraceRecorder(scenario.db, stream)
    scenario.run(seconds, dt=1.0)
    recorder.close()
    return scenario, stream


class TestRecording:
    def test_every_reading_recorded(self):
        scenario, stream = record_scenario()
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == len(scenario.db.sensor_readings)
        assert len(lines) > 0

    def test_close_stops_recording(self):
        scenario, stream = record_scenario(seconds=30.0)
        size_before = len(stream.getvalue())
        scenario.run(30.0)
        assert len(stream.getvalue()) == size_before

    def test_records_parse(self):
        _, stream = record_scenario(seconds=60.0)
        stream.seek(0)
        records = list(read_trace(stream))
        assert all("sensor_id" in r and "rect" in r for r in records)

    def test_bad_line_rejected(self):
        with pytest.raises(SimulationError):
            list(read_trace(io.StringIO("{broken\n")))

    def test_blank_lines_skipped(self):
        assert list(read_trace(io.StringIO("\n\n"))) == []


class TestReplay:
    def test_replay_reproduces_readings(self):
        scenario, stream = record_scenario()
        target = SpatialDatabase(siebel_floor())
        copy_sensor_registrations(scenario.db, target)
        stream.seek(0)
        count = replay_trace(target, read_trace(stream))
        assert count == len(scenario.db.sensor_readings)
        assert len(target.sensor_readings) == count
        assert target.tracked_objects() == scenario.db.tracked_objects()

    def test_replay_estimates_match_original(self):
        scenario, stream = record_scenario()
        target = SpatialDatabase(siebel_floor())
        copy_sensor_registrations(scenario.db, target)
        stream.seek(0)
        replay_trace(target, read_trace(stream))
        replay_service = LocationService(target,
                                         clock=scenario.clock)
        for person in scenario.db.tracked_objects():
            try:
                original = scenario.service.locate(person)
            except Exception:
                continue
            twin = replay_service.locate(person)
            assert twin.rect.almost_equals(original.rect, 1e-9)
            assert twin.probability == pytest.approx(
                original.probability)

    def test_ab_comparison_with_different_engine(self):
        # The point of traces: same inputs, different fusion math.
        scenario, stream = record_scenario()
        target = SpatialDatabase(siebel_floor())
        copy_sensor_registrations(scenario.db, target)
        stream.seek(0)
        replay_trace(target, read_trace(stream))
        eq7_service = LocationService(
            target, engine=FusionEngine(mode=MODE_EQ7),
            clock=scenario.clock)
        compared = 0
        for person in target.tracked_objects():
            try:
                exact = scenario.service.locate(person)
                printed = eq7_service.locate(person)
            except Exception:
                continue
            compared += 1
            # Same winning regions, different posterior math.
            assert printed.rect.almost_equals(exact.rect, 1e-9)
            assert printed.posterior <= exact.posterior + 1e-12
        assert compared >= 1

    def test_time_offset(self):
        scenario, stream = record_scenario(seconds=30.0)
        target = SpatialDatabase(siebel_floor())
        copy_sensor_registrations(scenario.db, target)
        stream.seek(0)
        replay_trace(target, read_trace(stream), time_offset=1000.0)
        times = [row["detection_time"]
                 for row in target.sensor_readings.select()]
        assert min(times) >= 1000.0
