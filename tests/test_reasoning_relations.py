"""Tests for probabilistic spatial relations and the rule base."""

import pytest

from repro.core import LocationEstimate, ProbabilityBucket
from repro.geometry import Rect
from repro.reasoning import (
    SpatialRelations,
    accessible_regions,
    build_knowledge_base,
    is_reachable,
    reachable_regions,
)
from repro.sim import paper_floor, siebel_floor


def estimate(rect: Rect, probability: float = 0.9,
             object_id: str = "tom") -> LocationEstimate:
    return LocationEstimate(
        object_id=object_id, rect=rect, probability=probability,
        bucket=ProbabilityBucket.HIGH, time=0.0)


@pytest.fixture
def relations() -> SpatialRelations:
    return SpatialRelations(siebel_floor())


class TestContainment:
    def test_fully_inside(self, relations):
        est = estimate(Rect(150, 10, 155, 15), 0.9)
        result = relations.containment(est, "SC/3/3105")
        assert result.holds
        assert result.probability == pytest.approx(0.9)

    def test_partially_inside_scales(self, relations):
        # Estimate straddling the 3105/NetLab wall at x=200.
        est = estimate(Rect(190, 10, 210, 20), 0.9)
        result = relations.containment(est, "SC/3/3105")
        assert result.probability == pytest.approx(0.45)

    def test_outside(self, relations):
        est = estimate(Rect(350, 80, 360, 90), 0.9)
        result = relations.containment(est, "SC/3/3105")
        assert not result.holds
        assert result.probability == 0.0

    def test_rect_region_accepted(self, relations):
        est = estimate(Rect(10, 10, 12, 12), 0.8)
        assert relations.containment(est, Rect(0, 0, 20, 20)).holds


class TestUsage:
    def test_inside_usage_region(self, relations):
        # workstation1 in 3105 has usage region (141,0)-(151,9).
        est = estimate(Rect(144, 2, 148, 6), 0.95)
        result = relations.usage(est, "SC/3/3105/workstation1")
        assert result.holds

    def test_outside_usage_region(self, relations):
        est = estimate(Rect(180, 30, 185, 35), 0.95)
        result = relations.usage(est, "SC/3/3105/workstation1")
        assert not result.holds

    def test_default_margin_when_no_usage_region(self, relations):
        world = relations.world
        entity = world.get("SC/3/3105/workstation1")
        entity.properties.pop("usage_region")
        est = estimate(Rect(145, 3, 147, 5), 0.95)
        assert relations.usage(est, "SC/3/3105/workstation1").holds


class TestProximityAndColocation:
    def test_close_objects(self, relations):
        a = estimate(Rect(100, 50, 102, 52), 0.9, "a")
        b = estimate(Rect(104, 50, 106, 52), 0.8, "b")
        result = relations.proximity(a, b, threshold=10.0)
        assert result.holds
        assert result.probability == pytest.approx(0.72)

    def test_far_objects(self, relations):
        a = estimate(Rect(0, 0, 2, 2), 0.9, "a")
        b = estimate(Rect(300, 80, 302, 82), 0.9, "b")
        assert not relations.proximity(a, b, threshold=10.0).holds

    def test_invalid_threshold(self, relations):
        a = estimate(Rect(0, 0, 2, 2))
        with pytest.raises(Exception):
            relations.proximity(a, a, threshold=0.0)

    def test_colocated_same_room(self, relations):
        a = estimate(Rect(150, 10, 152, 12), 0.9, "a")
        b = estimate(Rect(180, 20, 182, 22), 0.9, "b")
        result = relations.colocation(a, b, granularity_depth=3)
        assert result.holds

    def test_different_rooms_not_colocated_at_room_depth(self, relations):
        a = estimate(Rect(150, 10, 152, 12), 0.9, "a")   # 3105
        b = estimate(Rect(30, 10, 32, 12), 0.9, "b")     # 3102
        assert not relations.colocation(a, b, granularity_depth=3).holds

    def test_same_floor_colocated_at_floor_depth(self, relations):
        a = estimate(Rect(150, 10, 152, 12), 0.9, "a")
        b = estimate(Rect(30, 10, 32, 12), 0.9, "b")
        assert relations.colocation(a, b, granularity_depth=2).holds


class TestDistances:
    def test_euclidean_between_objects(self, relations):
        a = estimate(Rect(0, 0, 2, 2), 0.9, "a")
        b = estimate(Rect(3, 4, 5, 8), 0.9, "b")
        assert relations.distance_between(a, b) == \
            pytest.approx(a.rect.center_distance(b.rect))

    def test_path_distance_between_objects(self, relations):
        a = estimate(Rect(49, 19, 51, 21), 0.9, "a")    # 3102 center
        b = estimate(Rect(349, 19, 351, 21), 0.9, "b")  # 3110 center
        path = relations.distance_between(a, b, path=True)
        euclid = relations.distance_between(a, b)
        assert path is not None
        assert path > euclid

    def test_region_distance(self, relations):
        euclid = relations.region_distance("SC/3/3102", "SC/3/3110")
        path = relations.region_distance("SC/3/3102", "SC/3/3110",
                                         path=True)
        assert path >= euclid


class TestRuleBase:
    def test_reachability_over_free_doors(self):
        world = paper_floor()
        kb = build_knowledge_base(world)
        reachable = reachable_regions(kb, "CS/Floor3/NetLab")
        assert "CS/Floor3/Corridor3" in reachable
        assert "CS/Floor3/HCILab" in reachable
        # 3105 is behind restricted doors: not freely reachable.
        assert "CS/Floor3/3105" not in reachable

    def test_accessibility_includes_restricted(self):
        world = paper_floor()
        kb = build_knowledge_base(world)
        accessible = accessible_regions(kb, "CS/Floor3/NetLab")
        assert "CS/Floor3/3105" in accessible

    def test_is_reachable_helper(self):
        kb = build_knowledge_base(paper_floor())
        assert is_reachable(kb, "CS/Floor3/NetLab", "CS/Floor3/HCILab")
        assert not is_reachable(kb, "CS/Floor3/NetLab", "CS/Floor3/3105")

    def test_hierarchy_facts(self):
        kb = build_knowledge_base(paper_floor())
        assert kb.ask("within('CS/Floor3/NetLab', 'CS/Floor3')")
        assert kb.ask("within('CS/Floor3/NetLab', 'CS')")

    def test_colocated_rule(self):
        kb = build_knowledge_base(paper_floor())
        assert kb.ask(
            "colocated_in('CS/Floor3/NetLab', 'CS/Floor3/HCILab', "
            "'CS/Floor3')")
