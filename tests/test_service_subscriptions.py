"""Tests for subscriptions and trigger-driven notifications (Section 4.3)."""

import pytest

from repro.errors import ServiceError
from repro.core import ProbabilityBucket
from repro.geometry import Point, Rect
from repro.sensors import UbisenseAdapter
from repro.service import (
    KIND_BOTH,
    KIND_ENTER,
    KIND_LEAVE,
    LocationService,
    Subscription,
    SubscriptionManager,
)
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    return world, db, clock, service, ubi


class TestSubscriptionValidation:
    def test_needs_consumer(self):
        with pytest.raises(ServiceError):
            Subscription("s1", Rect(0, 0, 1, 1))

    def test_invalid_kind(self):
        with pytest.raises(ServiceError):
            Subscription("s1", Rect(0, 0, 1, 1), kind="teleport",
                         consumer=lambda e: None)

    def test_invalid_threshold(self):
        with pytest.raises(ServiceError):
            Subscription("s1", Rect(0, 0, 1, 1), threshold=1.5,
                         consumer=lambda e: None)

    def test_manager_duplicate_rejected(self):
        manager = SubscriptionManager()
        sub = Subscription("s1", Rect(0, 0, 1, 1), consumer=lambda e: None)
        manager.add(sub)
        with pytest.raises(ServiceError):
            manager.add(sub)

    def test_manager_matching(self):
        manager = SubscriptionManager()
        any_sub = Subscription("s1", Rect(0, 0, 1, 1),
                               consumer=lambda e: None)
        bob_sub = Subscription("s2", Rect(0, 0, 1, 1), object_id="bob",
                               consumer=lambda e: None)
        manager.add(any_sub)
        manager.add(bob_sub)
        assert {s.subscription_id
                for s in manager.matching("bob")} == {"s1", "s2"}
        assert {s.subscription_id
                for s in manager.matching("eve")} == {"s1"}


class TestEnterNotifications:
    def test_enter_event_fires_once(self, rig):
        _, _, _, service, ubi = rig
        events = []
        service.subscribe("SC/3/3105", consumer=events.append,
                          threshold=0.5)
        # Two readings inside the room: one enter event, not two.
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        ubi.tag_sighting("alice", Point(151, 20), 1.0)
        assert len(events) == 1
        event = events[0]
        assert event["transition"] == "enter"
        assert event["object_id"] == "alice"
        assert event["region_glob"] == "SC/3/3105"
        assert event["confidence"] >= 0.5

    def test_below_threshold_no_event(self, rig):
        _, _, _, service, ubi = rig
        events = []
        service.subscribe("SC/3/3105", consumer=events.append,
                          threshold=0.9999)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert events == []

    def test_object_filter(self, rig):
        _, _, _, service, ubi = rig
        events = []
        service.subscribe("SC/3/3105", consumer=events.append,
                          object_id="bob")
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert events == []
        ubi.tag_sighting("bob", Point(150, 20), 0.0)
        assert len(events) == 1

    def test_reading_outside_region_no_event(self, rig):
        _, _, _, service, ubi = rig
        events = []
        service.subscribe("SC/3/3105", consumer=events.append)
        ubi.tag_sighting("alice", Point(350, 90), 0.0)  # room 3226
        assert events == []

    def test_bucket_threshold(self, rig):
        _, _, _, service, ubi = rig
        events = []
        service.subscribe("SC/3/3105", consumer=events.append,
                          bucket=ProbabilityBucket.MEDIUM)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert len(events) == 1
        assert events[0]["grade"] >= ProbabilityBucket.MEDIUM


class TestLeaveNotifications:
    def test_enter_then_leave(self, rig):
        _, _, _, service, ubi = rig
        events = []
        service.subscribe("SC/3/3105", consumer=events.append,
                          kind=KIND_BOTH)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)   # inside
        ubi.tag_sighting("alice", Point(250, 50), 5.0)   # corridor
        transitions = [e["transition"] for e in events]
        assert transitions == ["enter", "leave"]

    def test_leave_only_subscription(self, rig):
        _, _, _, service, ubi = rig
        events = []
        service.subscribe("SC/3/3105", consumer=events.append,
                          kind=KIND_LEAVE)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert events == []  # enters are not delivered
        ubi.tag_sighting("alice", Point(250, 50), 5.0)
        assert [e["transition"] for e in events] == ["leave"]


class TestLifecycle:
    def test_unsubscribe_stops_events(self, rig):
        _, db, _, service, ubi = rig
        events = []
        sub_id = service.subscribe("SC/3/3105", consumer=events.append)
        assert service.unsubscribe(sub_id)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert events == []
        assert db.sensor_readings.trigger_count() == 0

    def test_unsubscribe_unknown(self, rig):
        _, _, _, service, _ = rig
        assert not service.unsubscribe("sub-999")

    def test_notifications_counted(self, rig):
        _, _, _, service, ubi = rig
        service.subscribe("SC/3/3105", consumer=lambda e: None)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert service.subscriptions.notifications_sent == 1

    def test_each_subscription_is_a_db_trigger(self, rig):
        _, db, _, service, _ = rig
        for _ in range(5):
            service.subscribe("SC/3/3105", consumer=lambda e: None)
        assert db.sensor_readings.trigger_count() == 5


class TestRemoteSubscription:
    def test_event_pushed_over_orb(self, rig):
        from repro.orb import Orb
        world, db, clock, _, ubi = rig
        orb = Orb()
        service = LocationService(db, orb=orb, clock=clock)

        class Consumer:
            def __init__(self):
                self.events = []

            def notify(self, event):
                self.events.append(event)

        consumer = Consumer()
        ref = orb.register("app-consumer", consumer)
        service.subscribe("SC/3/3105", remote_reference=ref)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert len(consumer.events) == 1
        assert consumer.events[0]["object_id"] == "alice"
