"""ORB robustness: malformed clients must not take the server down."""

import socket
import struct
import threading

import pytest

from repro.orb import Orb


class Echo:
    def ping(self):
        return "pong"


@pytest.fixture
def server():
    orb = Orb("server")
    orb.register("echo", Echo())
    host, port = orb.listen()
    yield orb, host, port
    orb.shutdown()


def good_client_works(host: str, port: int) -> bool:
    client = Orb("probe")
    try:
        return client.resolve(f"tcp://{host}:{port}/echo").ping() == "pong"
    finally:
        client.shutdown()


class TestMalformedClients:
    def test_garbage_bytes_then_server_still_serves(self, server):
        orb, host, port = server
        raw = socket.create_connection((host, port), timeout=5.0)
        raw.sendall(b"\x00\x00\x00\x05notjs")
        # The server answers with a framed error (or closes); either
        # way it keeps serving well-formed clients.
        raw.settimeout(2.0)
        try:
            raw.recv(4096)
        except OSError:
            pass
        raw.close()
        assert good_client_works(host, port)

    def test_oversized_frame_rejected(self, server):
        orb, host, port = server
        raw = socket.create_connection((host, port), timeout=5.0)
        # Claim a 1 GiB frame; the server must drop the connection
        # rather than try to buffer it.
        raw.sendall(struct.pack(">I", 1 << 30))
        raw.settimeout(2.0)
        try:
            data = raw.recv(4096)
        except OSError:
            data = b""
        raw.close()
        assert good_client_works(host, port)

    def test_half_frame_then_disconnect(self, server):
        orb, host, port = server
        raw = socket.create_connection((host, port), timeout=5.0)
        raw.sendall(struct.pack(">I", 100) + b"only-part")
        raw.close()
        assert good_client_works(host, port)

    def test_valid_json_wrong_shape(self, server):
        orb, host, port = server
        raw = socket.create_connection((host, port), timeout=5.0)
        payload = b'["not", "a", "request"]'
        raw.sendall(struct.pack(">I", len(payload)) + payload)
        raw.settimeout(5.0)
        header = raw.recv(4)
        (length,) = struct.unpack(">I", header)
        body = b""
        while len(body) < length:
            body += raw.recv(length - len(body))
        assert b"error" in body
        raw.close()
        assert good_client_works(host, port)

    def test_many_connect_disconnect_cycles(self, server):
        orb, host, port = server
        for _ in range(30):
            raw = socket.create_connection((host, port), timeout=5.0)
            raw.close()
        assert good_client_works(host, port)
