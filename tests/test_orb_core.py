"""Tests for the broker: servants, references, proxies (in-process)."""

import pytest

from repro.errors import NamingError, OrbError, RemoteInvocationError
from repro.geometry import Rect
from repro.orb import EventChannel, NamingService, Orb


class Calculator:
    """A test servant."""

    def add(self, a, b):
        return a + b

    def boom(self):
        raise ValueError("deliberate failure")

    def _secret(self):
        return "hidden"

    def rect(self):
        return Rect(0, 0, 2, 3)


class Restricted:
    ORB_EXPOSED = ("ping",)

    def ping(self):
        return "pong"

    def hidden(self):
        return "nope"


class TestRegistration:
    def test_register_and_resolve_inproc(self):
        orb = Orb()
        ref = orb.register("calc", Calculator())
        assert ref == "inproc://calc"
        proxy = orb.resolve(ref)
        assert proxy.add(2, 3) == 5

    def test_duplicate_id_rejected(self):
        orb = Orb()
        orb.register("calc", Calculator())
        with pytest.raises(OrbError):
            orb.register("calc", Calculator())

    def test_invalid_id_rejected(self):
        orb = Orb()
        with pytest.raises(OrbError):
            orb.register("", Calculator())
        with pytest.raises(OrbError):
            orb.register("a/b", Calculator())

    def test_unregister(self):
        orb = Orb()
        orb.register("calc", Calculator())
        assert orb.unregister("calc")
        assert not orb.unregister("calc")
        with pytest.raises(OrbError):
            orb.resolve("inproc://calc")

    def test_reference_for_unknown_servant(self):
        with pytest.raises(OrbError):
            Orb().reference_for("ghost")

    def test_object_ids(self):
        orb = Orb()
        orb.register("b", Calculator())
        orb.register("a", Calculator())
        assert orb.adapter.object_ids() == ("a", "b")


class TestInvocation:
    def test_value_types_cross_the_boundary(self):
        orb = Orb()
        proxy = orb.resolve(orb.register("calc", Calculator()))
        assert proxy.rect() == Rect(0, 0, 2, 3)

    def test_remote_exception_wrapped(self):
        orb = Orb()
        proxy = orb.resolve(orb.register("calc", Calculator()))
        with pytest.raises(RemoteInvocationError) as exc_info:
            proxy.boom()
        assert exc_info.value.remote_type == "ValueError"
        assert "deliberate" in exc_info.value.remote_message

    def test_unknown_method(self):
        orb = Orb()
        proxy = orb.resolve(orb.register("calc", Calculator()))
        with pytest.raises(RemoteInvocationError):
            proxy.divide(1, 2)

    def test_private_methods_blocked(self):
        orb = Orb()
        proxy = orb.resolve(orb.register("calc", Calculator()))
        with pytest.raises(AttributeError):
            proxy._secret()

    def test_exposed_allowlist(self):
        orb = Orb()
        proxy = orb.resolve(orb.register("r", Restricted()))
        assert proxy.ping() == "pong"
        with pytest.raises(RemoteInvocationError):
            proxy.hidden()

    def test_kwargs(self):
        orb = Orb()
        proxy = orb.resolve(orb.register("calc", Calculator()))
        assert proxy.add(a=1, b=2) == 3

    def test_malformed_reference_scheme(self):
        with pytest.raises(OrbError):
            Orb().resolve("http://example.com/thing")


class TestNamingService:
    def test_bind_resolve(self):
        naming = NamingService()
        naming.bind("svc", "inproc://svc")
        assert naming.resolve("svc") == "inproc://svc"

    def test_double_bind_rejected(self):
        naming = NamingService()
        naming.bind("svc", "a")
        with pytest.raises(NamingError):
            naming.bind("svc", "b")

    def test_rebind_replaces(self):
        naming = NamingService()
        naming.bind("svc", "a")
        naming.rebind("svc", "b")
        assert naming.resolve("svc") == "b"

    def test_unknown_name(self):
        with pytest.raises(NamingError):
            NamingService().resolve("nope")
        assert NamingService().resolve_or_none("nope") is None

    def test_unbind(self):
        naming = NamingService()
        naming.bind("svc", "a")
        assert naming.unbind("svc")
        assert not naming.unbind("svc")

    def test_list_services(self):
        naming = NamingService()
        naming.bind("b", "1")
        naming.bind("a", "2")
        assert naming.list_services() == ["a", "b"]

    def test_empty_name_rejected(self):
        with pytest.raises(NamingError):
            NamingService().bind("", "x")

    def test_discovery_over_orb(self):
        # The naming service is itself a servant (the Gaia pattern).
        orb = Orb()
        naming = NamingService()
        naming_ref = orb.register("naming", naming)
        orb.register("calc", Calculator())
        naming.bind("calculator", orb.reference_for("calc"))
        remote_naming = orb.resolve(naming_ref)
        calc_ref = remote_naming.resolve("calculator")
        assert orb.resolve(calc_ref).add(1, 1) == 2


class TestEventChannel:
    def test_local_fanout(self):
        channel = EventChannel()
        seen_a, seen_b = [], []
        channel.subscribe(seen_a.append)
        channel.subscribe(seen_b.append)
        assert channel.publish({"k": 1}) == 2
        assert seen_a == seen_b == [{"k": 1}]

    def test_unsubscribe(self):
        channel = EventChannel()
        seen = []
        sid = channel.subscribe(seen.append)
        assert channel.unsubscribe(sid)
        assert not channel.unsubscribe(sid)
        channel.publish({"k": 1})
        assert seen == []

    def test_failing_consumer_does_not_block_others(self):
        channel = EventChannel()
        seen = []

        def bad(event):
            raise RuntimeError("consumer crashed")

        channel.subscribe(bad)
        channel.subscribe(seen.append)
        delivered = channel.publish({"k": 1})
        assert delivered == 1
        assert seen == [{"k": 1}]
        assert len(channel.delivery_failures) == 1

    def test_strict_mode_raises(self):
        channel = EventChannel(swallow_errors=False)
        channel.subscribe(lambda e: (_ for _ in ()).throw(RuntimeError()))
        with pytest.raises(RuntimeError):
            channel.publish({})

    def test_remote_consumer_via_orb(self):
        orb = Orb()

        class Consumer:
            def __init__(self):
                self.events = []

            def notify(self, event):
                self.events.append(event)

        consumer = Consumer()
        ref = orb.register("consumer", consumer)
        channel = EventChannel(orb)
        channel.subscribe_remote(ref)
        channel.publish({"x": 42})
        assert consumer.events == [{"x": 42}]

    def test_remote_without_orb_rejected(self):
        with pytest.raises(OrbError):
            EventChannel().subscribe_remote("inproc://x")

    def test_consumer_count(self):
        channel = EventChannel()
        channel.subscribe(lambda e: None)
        channel.subscribe(lambda e: None)
        assert channel.consumer_count() == 2

    def test_event_copies_isolated(self):
        channel = EventChannel()
        captured = []
        channel.subscribe(lambda e: captured.append(e))
        original = {"k": 1}
        channel.publish(original)
        captured[0]["k"] = 99
        assert original["k"] == 1


class _Mutator:
    """Servant that mutates its argument and hoards returned state."""

    def __init__(self):
        self.received = None

    def absorb(self, payload):
        self.received = payload
        payload["tampered"] = True
        return payload

    def state(self):
        return self.received


class TestInProcFastPath:
    """The fast marshal must be observably identical to a full
    serializer round-trip — including mutation isolation."""

    def test_fast_path_taken_for_value_types(self):
        orb = Orb()
        orb.register("calc", Calculator())
        proxy = orb.resolve("inproc://calc")
        rect = proxy.rect()
        assert rect == Rect(0, 0, 2, 3)
        assert proxy.add(2, 3) == 5
        stats = orb.transport_stats()
        assert stats["inproc_fast_invocations"] == 2
        assert stats["inproc_fallback_invocations"] == 0

    def test_servant_mutation_cannot_reach_caller(self):
        orb = Orb()
        servant = _Mutator()
        orb.register("mut", servant)
        proxy = orb.resolve("inproc://mut")
        payload = {"rect": Rect(1, 2, 3, 4), "items": [1, 2]}
        result = proxy.absorb(payload)
        # The servant's edit shows up in the *returned* copy...
        assert result["tampered"] is True
        # ...but neither the caller's argument nor the servant's
        # retained copy alias the caller's objects.
        assert "tampered" not in payload
        assert servant.received is not payload
        servant.received["items"].append(99)
        assert payload["items"] == [1, 2]

    def test_tuples_arrive_as_lists_like_tcp(self):
        class Echo:
            def echo(self, value):
                return value

        orb = Orb()
        orb.register("echo", Echo())
        proxy = orb.resolve("inproc://echo")
        # JSON has no tuple; the fast path matches that observable.
        assert proxy.echo((1, 2, 3)) == [1, 2, 3]

    def test_debug_roundtrip_equivalent_but_counted_as_fallback(self):
        fast = Orb("fast")
        slow = Orb("slow", debug_roundtrip=True)
        for orb in (fast, slow):
            orb.register("calc", Calculator())
        fast_result = fast.resolve("inproc://calc").rect()
        slow_result = slow.resolve("inproc://calc").rect()
        assert fast_result == slow_result
        assert slow.transport_stats()["inproc_fast_invocations"] == 0
        assert slow.transport_stats()["inproc_fallback_invocations"] >= 1

    def test_serialization_failure_parity(self):
        class Opaque:
            pass

        class Leaky:
            def leak(self):
                return Opaque()

        orb = Orb()
        orb.register("leaky", Leaky())
        proxy = orb.resolve("inproc://leaky")
        # An unserializable return must fail in-proc exactly as it
        # would over TCP — the fast path may not smuggle it through.
        with pytest.raises(OrbError):
            proxy.leak()
