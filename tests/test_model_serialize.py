"""Tests for blueprint (world model) serialization."""

import json

import pytest

from repro.errors import WorldModelError
from repro.geometry import Point, Rect
from repro.model import (
    world_from_dict,
    world_from_json,
    world_to_dict,
    world_to_json,
)
from repro.model.serialize import load_world, save_world
from repro.sim import generate_office_floor, paper_floor, siebel_floor


def assert_worlds_equivalent(a, b) -> None:
    assert {str(e.glob) for e in a.entities()} == \
        {str(e.glob) for e in b.entities()}
    for entity in a.entities():
        key = str(entity.glob)
        assert a.canonical_mbr(key).almost_equals(b.canonical_mbr(key))
        assert a.get(key).entity_type is b.get(key).entity_type
    assert {str(d.glob) for d in a.doors()} == \
        {str(d.glob) for d in b.doors()}
    for door in a.doors():
        twin = [d for d in b.doors() if d.glob == door.glob][0]
        assert twin.kind is door.kind
        assert twin.region_a == door.region_a
    assert set(a.frames.frames()) == set(b.frames.frames())


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [paper_floor, siebel_floor,
                                         lambda: generate_office_floor(3)])
    def test_roundtrip_preserves_world(self, builder):
        original = builder()
        rebuilt = world_from_dict(world_to_dict(original))
        assert_worlds_equivalent(original, rebuilt)

    def test_json_roundtrip(self):
        original = siebel_floor()
        text = world_to_json(original)
        json.loads(text)  # genuinely valid JSON
        rebuilt = world_from_json(text)
        assert_worlds_equivalent(original, rebuilt)

    def test_properties_survive(self):
        original = siebel_floor()
        rebuilt = world_from_dict(world_to_dict(original))
        entity = rebuilt.get("SC/3/3216/display1")
        assert isinstance(entity.properties["usage_region"], Rect)

    def test_frames_survive(self):
        original = siebel_floor()
        rebuilt = world_from_dict(world_to_dict(original))
        p = rebuilt.frames.convert_point(Point(0, 0), "SC/3/3105", "")
        assert p.almost_equals(Point(140, 0))

    def test_file_roundtrip(self, tmp_path):
        original = paper_floor()
        path = tmp_path / "floor.json"
        save_world(original, str(path))
        rebuilt = load_world(str(path))
        assert_worlds_equivalent(original, rebuilt)

    def test_rebuilt_world_is_fully_usable(self):
        from repro.reasoning import NavigationGraph
        from repro.spatialdb import SpatialDatabase

        rebuilt = world_from_json(world_to_json(paper_floor()))
        db = SpatialDatabase(rebuilt)
        assert db.object_mbr("CS/Floor3/3105") == Rect(330, 0, 350, 30)
        nav = NavigationGraph(rebuilt)
        assert nav.path_distance("CS/Floor3/NetLab",
                                 "CS/Floor3/HCILab") is not None


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(WorldModelError):
            world_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(WorldModelError):
            world_from_dict({"format": "middlewhere-blueprint",
                             "version": 99})

    def test_invalid_json_rejected(self):
        with pytest.raises(WorldModelError):
            world_from_json("{not json")

    def test_orphan_frame_rejected(self):
        data = world_to_dict(paper_floor())
        data["frames"].append({"name": "X/1", "parent": "X",
                               "dx": 0, "dy": 0, "dz": 0, "rotation": 0})
        with pytest.raises(WorldModelError):
            world_from_dict(data)

    def test_unknown_geometry_kind_rejected(self):
        data = world_to_dict(paper_floor())
        data["entities"][0]["geometry"] = {"kind": "blob"}
        with pytest.raises(WorldModelError):
            world_from_dict(data)

    def test_unserializable_property_rejected(self):
        world = paper_floor()
        world.get("CS/Floor3/3105").properties["callback"] = print
        with pytest.raises(WorldModelError):
            world_to_dict(world)


class TestWorldVersionRoundTrip:
    """Regression: the mutation counter must survive serialization.

    The lazy region R-tree (and any other derived index) keys its
    cache on ``world.version``.  A rebuilt world that restarted the
    counter at its own add_* count could alias a cache entry keyed
    against the original world, silently serving stale geometry."""

    def test_version_counter_round_trips(self):
        world = paper_floor()
        assert world_from_dict(world_to_dict(world)).version == \
            world.version

    def test_version_survives_json_round_trip(self):
        world = siebel_floor()
        rebuilt = world_from_json(world_to_json(world))
        assert rebuilt.version == world.version

    def test_rebuilt_counter_keeps_monotonic_after_mutation(self):
        world = paper_floor()
        rebuilt = world_from_dict(world_to_dict(world))
        before = rebuilt.version
        from repro.geometry import Polygon
        from repro.model.world import Entity, EntityType
        from repro.model.glob import Glob
        rebuilt.add_entity(Entity(
            glob=Glob.parse("CS/Floor3/Annex"),
            entity_type=EntityType.ROOM,
            geometry=Polygon.from_rect(Rect(460, 60, 480, 80)),
            frame="CS/Floor3"))
        assert rebuilt.version > before

    def test_point_location_matches_reference_after_round_trip(self):
        """The indexed point-location must agree with the reference
        scan on a freshly deserialized world (the index rebuilds
        against the restored counter, not a stale alias)."""
        rebuilt = world_from_json(world_to_json(paper_floor()))
        probes = [Point(335, 10), Point(105, 15), Point(250, 35),
                  Point(5, 95), Point(499, 99), Point(40, 12),
                  Point(200, 20)]
        for p in probes:
            indexed = rebuilt.smallest_region_containing(p)
            reference = rebuilt.smallest_region_containing_reference(p)
            left = str(indexed.glob) if indexed else None
            right = str(reference.glob) if reference else None
            assert left == right, p

    def test_legacy_blueprint_without_counter_still_loads(self):
        data = world_to_dict(paper_floor())
        del data["world_version"]
        rebuilt = world_from_dict(data)
        assert rebuilt.version > 0  # the rebuild's own add_* count
        assert rebuilt.smallest_region_containing(Point(335, 10)) \
            is not None
