"""Tests for the calibration estimators (the paper's future work)."""

import math
import random

import pytest

from repro.core import (
    CalibrationReport,
    CarryProbabilityEstimator,
    DetectionProbabilityEstimator,
    ExponentialTDF,
    MisidentificationEstimator,
    SensorSpec,
    TdfFitter,
    wilson_interval,
)
from repro.errors import CalibrationError


class TestWilsonInterval:
    def test_point_estimate_is_rate(self):
        estimate = wilson_interval(70, 100)
        assert estimate.value == pytest.approx(0.7)
        assert estimate.low < 0.7 < estimate.high

    def test_interval_narrows_with_trials(self):
        wide = wilson_interval(7, 10)
        narrow = wilson_interval(700, 1000)
        assert narrow.width < wide.width

    def test_bounds_clamped(self):
        estimate = wilson_interval(0, 10)
        assert estimate.low == 0.0
        estimate = wilson_interval(10, 10)
        assert estimate.high == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(CalibrationError):
            wilson_interval(1, 0)
        with pytest.raises(CalibrationError):
            wilson_interval(11, 10)


class TestRateEstimators:
    def test_detection_estimator_recovers_rate(self):
        rng = random.Random(1)
        estimator = DetectionProbabilityEstimator()
        for _ in range(2000):
            estimator.record_device_present_trial(rng.random() < 0.75)
        estimate = estimator.estimate()
        assert estimate.low <= 0.75 <= estimate.high

    def test_misident_estimator(self):
        rng = random.Random(2)
        estimator = MisidentificationEstimator()
        for _ in range(5000):
            estimator.record_absence_trial(rng.random() < 0.02)
        estimate = estimator.estimate()
        assert estimate.low <= 0.02 <= estimate.high

    def test_carry_estimator_divides_out_y(self):
        rng = random.Random(3)
        x_true, y_true = 0.8, 0.75
        estimator = CarryProbabilityEstimator(y_true)
        for _ in range(4000):
            detected = rng.random() < x_true * y_true
            estimator.record_presence_trial(detected)
        estimate = estimator.estimate()
        assert estimate.value == pytest.approx(x_true, abs=0.05)

    def test_carry_estimator_invalid_y(self):
        with pytest.raises(CalibrationError):
            CarryProbabilityEstimator(0.0)

    def test_no_trials_rejected(self):
        with pytest.raises(CalibrationError):
            DetectionProbabilityEstimator().estimate()


class TestTdfFitter:
    def test_recovers_half_life(self):
        rng = random.Random(4)
        fitter = TdfFitter(bucket_width=5.0)
        true_half_life = 30.0
        for _ in range(8000):
            age = rng.uniform(0.0, 60.0)
            survival = math.pow(0.5, age / true_half_life)
            fitter.record(age, rng.random() < survival)
        fit = fitter.fit()
        assert fit.half_life == pytest.approx(true_half_life, rel=0.25)
        assert isinstance(fit.tdf, ExponentialTDF)
        assert fit.rmse < 0.15

    def test_no_decay_gives_infinite_half_life(self):
        fitter = TdfFitter(bucket_width=5.0)
        for age in (1.0, 6.0, 11.0, 16.0, 21.0) * 20:
            fitter.record(age, True)
        fit = fitter.fit()
        assert fit.half_life == float("inf")

    def test_needs_two_buckets(self):
        fitter = TdfFitter(bucket_width=100.0)
        for _ in range(10):
            fitter.record(1.0, True)
        with pytest.raises(CalibrationError):
            fitter.fit()

    def test_negative_age_rejected(self):
        with pytest.raises(CalibrationError):
            TdfFitter().record(-1.0, True)

    def test_invalid_bucket_width(self):
        with pytest.raises(CalibrationError):
            TdfFitter(bucket_width=0.0)


class TestCalibrationReport:
    def _report(self) -> CalibrationReport:
        from repro.core.calibration import RateEstimate
        return CalibrationReport(
            sensor_type="RF",
            x=RateEstimate(0.9, 0.85, 0.95, 300),
            y=RateEstimate(0.75, 0.7, 0.8, 300),
            z=RateEstimate(0.02, 0.01, 0.03, 2000),
        )

    def test_derived_pq(self):
        report = self._report()
        assert report.p == pytest.approx(0.75 * 0.9 + 0.02 * 0.1)
        assert report.q == pytest.approx(0.02 + 0.75 * 0.1)

    def test_to_spec_keeps_geometry(self):
        report = self._report()
        reference = SensorSpec("RF", 0.5, 0.5, 0.5, z_area_scaled=True,
                               resolution=15.0, time_to_live=60.0)
        spec = report.to_spec(reference)
        assert spec.carry_probability == 0.9
        assert spec.detection_probability == 0.75
        assert spec.z_area_scaled
        assert spec.resolution == 15.0

    def test_summary_mentions_everything(self):
        text = self._report().summary()
        assert "x = 0.900" in text
        assert "derived p" in text


class TestSimulatedStudy:
    def test_study_recovers_station_parameters(self):
        from repro.sim import Scenario, SensorStudy

        scenario = Scenario(seed=4)
        station = scenario.deployment.install_rf_station(
            "RF-S", "SC/3/Corridor", misident_rate=0.002)
        scenario.add_people(8)
        study = SensorStudy(scenario, station)
        study.run(1800, dt=1.0)
        report = study.report()
        # True per-scan parameters: y = 0.75, z = 0.002.
        assert report.y.value == pytest.approx(0.75, abs=0.12)
        assert report.z.low <= 0.004
        assert 0 < report.z.value < 0.02
        assert report.x.trials > 50

    def test_calibrated_spec_usable_by_fusion(self):
        from repro.sim import Scenario, SensorStudy

        scenario = Scenario(seed=9)
        station = scenario.deployment.install_rf_station(
            "RF-S", "SC/3/Corridor")
        scenario.add_people(6)
        study = SensorStudy(scenario, station)
        study.run(900, dt=1.0)
        spec = study.report(fit_tdf=False).to_spec(station.adapter.spec)
        # The calibrated spec plugs straight into the error model.
        p, q = spec.pq(900.0, scenario.db.universe().area)
        assert 0.0 <= q <= p <= 1.0
