"""The paper's headline property: new technologies plug in on the fly.

"This makes it possible to extend the infrastructure with new location
technologies on the fly, as they become available, without any change
to existing applications and services" (Section 1).

These tests run an application against the Location Service, then
install a brand-new (never-seen) sensor technology mid-run, and verify
the application keeps working — better — without touching a line of
application code.
"""

import pytest

from repro.apps import VocalPersonnelLocator
from repro.core import ConstantTDF, SensorSpec
from repro.geometry import Point
from repro.sensors import (
    AdapterRegistry,
    LocationAdapter,
    UbisenseAdapter,
    default_registry,
)
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


class FloorMatAdapter(LocationAdapter):
    """A brand-new technology: pressure mats reporting footsteps.

    Small footprint, high certainty of *presence* (you stand on it),
    modest identification quality (gait matching).
    """

    ADAPTER_TYPE = "FloorMat"

    def __init__(self, adapter_id: str, glob_prefix: str,
                 mat_position: Point, frame=None) -> None:
        spec = SensorSpec(
            sensor_type=self.ADAPTER_TYPE,
            carry_probability=1.0,      # feet are always carried
            detection_probability=0.9,
            misident_probability=0.08,  # gait confusion
            resolution=1.5,
            time_to_live=20.0,
            tdf=ConstantTDF(),
        )
        super().__init__(adapter_id, glob_prefix, spec, frame)
        self.mat_position = mat_position

    def footstep(self, person_id: str, time: float):
        return self._emit_circle(person_id, self.mat_position, 1.5, time)


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    rf = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    return world, db, clock, service, rf


class TestOnTheFlyAddition:
    def test_new_technology_improves_running_application(self, rig):
        world, db, clock, service, ubi = rig
        locator = VocalPersonnelLocator(service)

        # Phase 1: the app runs with the existing deployment.
        ubi.tag_sighting("alice", Point(150, 20), clock.advance(1.0))
        before = locator.ask("where is alice?")
        assert "SC/3/3105" in before
        confidence_before = service.locate("alice").probability

        # Phase 2: facilities installs floor mats — a technology that
        # did not exist when the application was written.
        mat = FloorMatAdapter("Mat-1", "SC/3/3105",
                              Point(150, 20), frame="")
        mat.attach(db)   # plug-and-play: adapter + metadata, no more
        now = clock.advance(1.0)
        ubi.tag_sighting("alice", Point(150, 20), now)
        mat.footstep("alice", now)

        # The untouched application now gets a reinforced answer.
        after = locator.ask("where is alice?")
        assert "SC/3/3105" in after
        estimate = service.locate("alice")
        assert confidence_before < estimate.probability
        assert "Mat-1" in estimate.sources

    def test_new_sensor_enters_classifier_population(self, rig):
        world, db, clock, service, _ = rig
        boundaries_before = service.classifier().boundaries
        FloorMatAdapter("Mat-1", "SC/3/3105", Point(150, 20),
                        frame="").attach(db)
        boundaries_after = service.classifier().boundaries
        # Section 4.4's buckets follow the deployed population.
        assert boundaries_after != boundaries_before

    def test_registry_based_installation(self, rig):
        world, db, clock, service, _ = rig
        registry = default_registry()
        registry.register(FloorMatAdapter)
        adapter = registry.create("FloorMat", "Mat-7", "SC/3/3216",
                                  Point(27, 95), frame="")
        adapter.attach(db)
        adapter.footstep("bob", clock.advance(1.0))
        estimate = service.locate("bob")
        assert estimate.symbolic == "SC/3/3216"
        assert estimate.sources == ("Mat-7",)

    def test_new_technology_participates_in_triggers(self, rig):
        world, db, clock, service, _ = rig
        events = []
        service.subscribe("SC/3/3105", consumer=events.append,
                          threshold=0.5)
        mat = FloorMatAdapter("Mat-1", "SC/3/3105",
                              Point(150, 20), frame="").attach(db)
        mat.footstep("carol", clock.advance(1.0))
        assert len(events) == 1
        assert events[0]["object_id"] == "carol"
