"""Tests for the spatial SQL dialect (Section 5.1)."""

import pytest

from repro.errors import QueryError
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase, parse_query


@pytest.fixture
def db() -> SpatialDatabase:
    world = siebel_floor()
    # Decorate some rooms for the paper's example query.
    world.get("SC/3/3105").properties["bluetooth_signal"] = 0.9
    world.get("SC/3/NetLab").properties["bluetooth_signal"] = 0.4
    world.get("SC/3/3216").properties["bluetooth_signal"] = 0.85
    return SpatialDatabase(world)


class TestParsing:
    def test_select_star(self):
        query = parse_query("SELECT * FROM spatial_objects")
        assert query.columns is None
        assert query.conditions == []

    def test_full_query_shape(self):
        query = parse_query(
            "SELECT glob FROM spatial_objects "
            "WHERE object_type = 'Room' AND properties.x >= 2 "
            "NEAREST TO (10, 20) LIMIT 3")
        assert query.columns == ["glob"]
        assert len(query.conditions) == 2
        assert query.nearest is not None
        assert query.limit == 3

    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT * FROM other_table",
        "SELECT * FROM spatial_objects WHERE",
        "SELECT * FROM spatial_objects LIMIT -1",
        "SELECT * FROM spatial_objects trailing",
        "UPDATE spatial_objects",
        "SELECT * FROM spatial_objects WHERE nope ~ 3",
    ])
    def test_bad_queries_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


class TestExecution:
    def test_select_star_returns_all(self, db):
        rows = db.query("SELECT * FROM spatial_objects")
        assert len(rows) == len(db.spatial_objects.select())

    def test_type_filter(self, db):
        rows = db.query("SELECT glob FROM spatial_objects "
                        "WHERE object_type = 'Display'")
        assert all("display" in row["glob"] for row in rows)
        assert len(rows) >= 3

    def test_paper_example_query(self, db):
        # "Where is the nearest region that has power outlets and high
        # Bluetooth signal?" — asked from inside the NetLab.
        rows = db.query(
            "SELECT glob FROM spatial_objects "
            "WHERE object_type = 'Room' "
            "AND properties.power_outlets = true "
            "AND properties.bluetooth_signal >= 0.8 "
            "NEAREST TO (230, 20) LIMIT 1")
        assert rows[0]["glob"] == "SC/3/3105"
        assert "distance" in rows[0]

    def test_string_comparison(self, db):
        rows = db.query("SELECT * FROM spatial_objects "
                        "WHERE glob_prefix = 'SC/3/3105'")
        assert {row["object_identifier"] for row in rows} == \
            {"workstation1"}

    def test_numeric_comparisons(self, db):
        low = db.query("SELECT glob FROM spatial_objects "
                       "WHERE properties.bluetooth_signal < 0.5")
        assert [row["glob"] for row in low] == ["SC/3/NetLab"]

    def test_contains_predicate(self, db):
        rows = db.query("SELECT glob FROM spatial_objects "
                        "WHERE object_type = 'Room' "
                        "AND CONTAINS(150, 20)")
        assert [row["glob"] for row in rows] == ["SC/3/3105"]

    def test_intersects_predicate(self, db):
        rows = db.query("SELECT glob FROM spatial_objects "
                        "WHERE object_type = 'Room' "
                        "AND INTERSECTS(140, 0, 260, 40)")
        globs = {row["glob"] for row in rows}
        assert {"SC/3/3105", "SC/3/NetLab"} <= globs
        assert "SC/3/3216" not in globs

    def test_disjoint_prefilters_short_circuit(self, db):
        rows = db.query("SELECT * FROM spatial_objects "
                        "WHERE INTERSECTS(0, 0, 10, 10) "
                        "AND INTERSECTS(300, 80, 380, 100)")
        assert rows == []

    def test_nearest_ordering(self, db):
        rows = db.query("SELECT glob FROM spatial_objects "
                        "WHERE object_type = 'Room' "
                        "NEAREST TO (30, 20) LIMIT 3")
        assert rows[0]["glob"] == "SC/3/3102"
        distances = [row["distance"] for row in rows]
        assert distances == sorted(distances)

    def test_limit_zero(self, db):
        assert db.query("SELECT * FROM spatial_objects LIMIT 0") == []

    def test_missing_property_is_false(self, db):
        rows = db.query("SELECT glob FROM spatial_objects "
                        "WHERE properties.nonexistent = 7")
        assert rows == []

    def test_boolean_and_null_literals(self, db):
        rows = db.query("SELECT glob FROM spatial_objects "
                        "WHERE properties.power_outlets = true "
                        "AND object_type = 'Room'")
        assert len(rows) == 11  # every Siebel room has outlets

    def test_column_projection(self, db):
        rows = db.query("SELECT object_identifier, object_type "
                        "FROM spatial_objects "
                        "WHERE object_type = 'Corridor'")
        assert rows == [{"object_identifier": "Corridor",
                         "object_type": "Corridor"}]

    def test_case_insensitive_keywords(self, db):
        rows = db.query("select glob from spatial_objects "
                        "where object_type = 'Floor'")
        assert rows[0]["glob"] == "SC/3"

    def test_unknown_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.query("SELECT nope FROM spatial_objects")
