"""Chaos for the shard fleet: SIGKILL one shard mid-stream, recover.

The scenario each run plays (all draws from the seeded
:class:`FaultPlan` RNG, so a failing run replays exactly):

1. a 3-shard cluster with per-shard write-ahead logs ingests an
   asynchronous reading stream through the router's sink path;
2. at a drawn step a drawn victim is SIGKILLed — no flush, no
   goodbye, exactly like losing a machine;
3. the stream keeps flowing: batches bound for the dead shard fail
   and are ``router_dead_lettered`` so fleet accounting still closes;
4. the victim restarts from its own WAL into a fresh generation
   directory, the router rebinds, and a second wave proves the fleet
   is whole again.

Invariants asserted fleet-wide after recovery: router accounting
(``submitted == forwarded + dead_lettered + pending``), pipeline
accounting (``enqueued == fused + dropped + dead_lettered``), and
per-shard table-vs-fused parity (``rows == recovered + sync + fused``)
— the same books the single-process chaos suites keep.

Seeds: the fixed CI seeds plus any extras from ``CHAOS_SEED``
(comma-separated); a wider randomized sweep hides behind ``--runslow``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SensorSpec
from repro.faults import FaultPlan
from repro.geometry import Rect
from repro.pipeline import PipelineReading
from repro.shard import ShardCluster

FIXED_SEEDS = (101, 202, 303)

NUM_SHARDS = 3
OBJECTS = tuple(f"person-{i}" for i in range(10))

SENSORS = (
    ("Ubi-1", SensorSpec(sensor_type="Ubisense", carry_probability=0.9,
                         detection_probability=0.95,
                         misident_probability=0.05, z_area_scaled=True,
                         resolution=0.5, time_to_live=3600.0), 95.0),
    ("RF-1", SensorSpec(sensor_type="RF", carry_probability=0.85,
                        detection_probability=0.75,
                        misident_probability=0.25, z_area_scaled=True,
                        resolution=15.0, time_to_live=3600.0), 75.0),
)


def _seeds():
    extra = os.environ.get("CHAOS_SEED", "")
    env = [int(s) for s in extra.split(",") if s.strip()]
    return sorted(set(FIXED_SEEDS) | set(env))


def _register_sensors(router):
    for sensor_id, spec, confidence in SENSORS:
        router.register_sensor(sensor_id, spec.sensor_type, confidence,
                               spec.time_to_live, spec)


def _reading(rng, step: int) -> PipelineReading:
    object_id = OBJECTS[rng.randrange(len(OBJECTS))]
    sensor_id, spec, _ = SENSORS[rng.randrange(len(SENSORS))]
    x = rng.randrange(0, 39) * 10.0
    y = rng.randrange(0, 19) * 5.0
    return PipelineReading(
        sensor_id=sensor_id, glob_prefix="SC/3",
        sensor_type=spec.sensor_type, object_id=object_id,
        rect=Rect(x, y, x + 4.0, y + 3.0),
        detection_time=float(step))


def _run_kill_recover(tmp_path, seed: int, stream_len: int = 90):
    """One full kill/recover scenario; returns the closing stats."""
    plan = FaultPlan(seed)
    rng = plan.rng
    victim = rng.randrange(NUM_SHARDS)
    kill_step = rng.randrange(stream_len // 3, 2 * stream_len // 3)
    stream = [_reading(rng, step) for step in range(stream_len)]

    cluster = ShardCluster(
        NUM_SHARDS, wal_root=str(tmp_path / "wal"),
        pipeline={"workers": 1, "max_wait": 0.01}, batch_size=8)
    try:
        router = cluster.router
        _register_sensors(router)
        for step, reading in enumerate(stream):
            if step == kill_step:
                cluster.kill_shard(victim)
                assert not cluster.alive(victim)
            assert router.submit(reading)
        # Drain what can drain; the dead shard fails its share.
        router.drain(timeout=30.0)

        # --- recover ---------------------------------------------------
        cluster.restart_shard(victim, recover=True)
        assert cluster.alive(victim)
        assert router.drain(timeout=30.0)

        # Fleet books must close even though one shard died mid-flight.
        assert router.reconciles(), router.stats()["router"]
        errors = router.check_invariants()
        assert errors == [], errors

        victim_stats = router.proxy(victim).stats()
        recovered = victim_stats["recovered_rows"]
        routed_to_victim = sum(
            1 for r in stream if router.shard_of(r.object_id) == victim)
        # The WAL can only replay readings the victim actually fused.
        assert 0 <= recovered <= routed_to_victim
        fingerprint = router.proxy(victim).fingerprint()
        assert isinstance(fingerprint, str) and fingerprint

        # --- the fleet serves again ------------------------------------
        victim_objects = [oid for oid in OBJECTS
                          if router.shard_of(oid) == victim]
        probe = victim_objects[0] if victim_objects else OBJECTS[0]
        router.insert_reading(
            sensor_id="Ubi-1", glob_prefix="SC/3",
            sensor_type="Ubisense", mobile_object_id=probe,
            rect=Rect(100.0, 50.0, 104.0, 53.0),
            detection_time=float(stream_len))
        estimate = router.locate(probe, float(stream_len) + 1.0)
        assert estimate.probability > 0.0

        second_wave = [_reading(rng, stream_len + 1 + step)
                       for step in range(24)]
        for reading in second_wave:
            assert router.submit(reading)
        assert router.drain(timeout=30.0)
        assert router.reconciles()
        errors = router.check_invariants()
        assert errors == [], errors

        stats = router.stats()
        return {
            "victim": victim,
            "kill_step": kill_step,
            "recovered": recovered,
            "dead_lettered": stats["router"]["router_dead_lettered"],
            "fleet": stats["fleet"],
        }
    finally:
        cluster.shutdown()


class TestKillAndRecover:
    @pytest.mark.parametrize("seed", _seeds())
    def test_fleet_survives_shard_loss(self, tmp_path, seed):
        report = _run_kill_recover(tmp_path, seed)
        fleet = report["fleet"]
        # Pipeline accounting closes fleet-wide: the dead incarnation's
        # counters died with it, the books are the live processes'.
        assert fleet["enqueued"] == (fleet["fused"] + fleet["dropped"]
                                     + fleet["dead_lettered"])

    def test_kill_without_recovery_leaves_books_closed(self, tmp_path):
        """A dead shard never recovered: the router alone keeps the
        accounting honest (everything bound for it dead-letters)."""
        plan = FaultPlan(FIXED_SEEDS[0])
        rng = plan.rng
        stream = [_reading(rng, step) for step in range(40)]
        cluster = ShardCluster(
            NUM_SHARDS, wal_root=str(tmp_path / "wal"),
            pipeline={"workers": 1, "max_wait": 0.01}, batch_size=8)
        try:
            router = cluster.router
            _register_sensors(router)
            cluster.kill_shard(1)
            for reading in stream:
                router.submit(reading)
            router.drain(timeout=30.0)
            assert router.reconciles()
            errors = router.check_invariants()
            # The only acceptable errors name the unreachable shard.
            assert all("shard 1" in e for e in errors), errors
            routed_dead = sum(
                1 for r in stream if router.shard_of(r.object_id) == 1)
            assert router.stats()["router"]["router_dead_lettered"] \
                == routed_dead
        finally:
            cluster.shutdown()


class TestSemanticKillRecover:
    """Semantic triggers under shard loss: no duplicates, no loss.

    The semantic engine lives router-side; shards only mirror fused
    locations into their event buffers.  Killing a shard can only lose
    *unpumped* location updates (whose readings dead-letter or wait in
    the WAL), never duplicate them — so per solution the transition
    stream must strictly alternate enter/leave starting at enter, and
    once every object is re-placed after recovery the engine's standing
    solutions must be exactly what a naive full re-evaluation derives.
    """

    RULES = (
        "on_floor(P) :- located_within(P, 'SC/3')",
        "pair(P, Q) :- colocated_at(P, Q, 'SC/3'), distinct(P, Q)",
    )

    def _run(self, tmp_path, seed: int, stream_len: int = 60) -> None:
        plan = FaultPlan(seed)
        rng = plan.rng
        victim = rng.randrange(NUM_SHARDS)
        kill_step = rng.randrange(stream_len // 3, 2 * stream_len // 3)
        stream = [_reading(rng, step) for step in range(stream_len)]

        cluster = ShardCluster(
            NUM_SHARDS, wal_root=str(tmp_path / "wal"),
            pipeline={"workers": 1, "max_wait": 0.01}, batch_size=8)
        try:
            router = cluster.router
            _register_sensors(router)
            events = []
            sids = [router.subscribe_semantic(rule,
                                              consumer=events.append)
                    for rule in self.RULES]
            for step, reading in enumerate(stream):
                if step == kill_step:
                    cluster.kill_shard(victim)
                    assert not cluster.alive(victim)
                assert router.submit(reading)
                if step % 8 == 0:
                    router.pump_events()
            router.drain(timeout=30.0)
            router.pump_events()

            cluster.restart_shard(victim, recover=True)
            assert cluster.alive(victim)
            assert router.drain(timeout=30.0)

            second_wave = [_reading(rng, stream_len + 1 + step)
                           for step in range(24)]
            for reading in second_wave:
                assert router.submit(reading)
            assert router.drain(timeout=30.0)
            router.pump_events()

            # Heal every object's location with a synchronous insert on
            # its (now live) owner; afterwards all ten stand on_floor.
            base = float(stream_len + 30)
            for offset, object_id in enumerate(OBJECTS):
                router.insert_reading(
                    sensor_id="Ubi-1", glob_prefix="SC/3",
                    sensor_type="Ubisense", mobile_object_id=object_id,
                    rect=Rect(20.0 + 12.0 * offset, 50.0,
                              24.0 + 12.0 * offset, 53.0),
                    detection_time=base + offset)
            router.pump_events()

            assert events, "no semantic events at all — vacuous run"
            per_solution = {}
            for event in events:
                key = (event["subscription_id"], event["head"],
                       tuple(sorted(event["bindings"].items())))
                per_solution.setdefault(key, []).append(
                    event["transition"])
            for key, transitions in per_solution.items():
                expected = ["enter" if i % 2 == 0 else "leave"
                            for i in range(len(transitions))]
                assert transitions == expected, (
                    f"{key}: {transitions} (duplicate or lost event)")

            manager = router.semantic
            assert manager is not None
            assert manager.active_solutions(sids[0]) == [
                {"P": object_id} for object_id in sorted(OBJECTS)]
            # The oracle finds nothing the incremental engine missed.
            assert manager.engine.evaluate_reference() == []
        finally:
            cluster.shutdown()

    def test_semantic_stream_consistent_across_shard_loss(self,
                                                          tmp_path):
        self._run(tmp_path, FIXED_SEEDS[0])

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", _seeds())
    def test_seed_matrix(self, tmp_path, seed):
        self._run(tmp_path, seed)


@pytest.mark.slow
class TestRandomizedSweep:
    """Wider net for CI's seeded sweeps (``--runslow`` + CHAOS_SEED)."""

    @pytest.mark.parametrize("offset", range(4))
    def test_derived_seeds(self, tmp_path, offset):
        base = _seeds()[0]
        _run_kill_recover(tmp_path, base * 1000 + offset,
                          stream_len=60)
