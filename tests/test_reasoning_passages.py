"""Tests for ECFP/ECRP/ECNP passage relations (Section 4.6.1)."""

import pytest

from repro.geometry import Point, Polygon, Rect, Segment
from repro.model import (
    Door,
    EntityType,
    FrameTransform,
    Glob,
    PassageKind,
    WorldModel,
)
from repro.reasoning import (
    PassageRelation,
    RCC8,
    connected_pairs,
    passage_between,
    region_rcc8,
    traversable,
)


@pytest.fixture
def world() -> WorldModel:
    """Three rooms in a row: a|b share a free door, b|c share only a
    wall, a|c are not adjacent.  Room d is reached through a locked
    door from c."""
    w = WorldModel()
    w.add_frame("B", "", FrameTransform())
    bounds = {
        "a": Rect(0, 0, 10, 10),
        "b": Rect(10, 0, 20, 10),
        "c": Rect(20, 0, 30, 10),
        "d": Rect(30, 0, 40, 10),
    }
    for name, rect in bounds.items():
        w.add_region(Glob.parse(f"B/{name}"), EntityType.ROOM,
                     Polygon.from_rect(rect), "B")
    w.add_door(Door(Glob.parse("B/dab"), Glob.parse("B/a"),
                    Glob.parse("B/b"),
                    Segment(Point(10, 4), Point(10, 6)), "B",
                    PassageKind.FREE))
    w.add_door(Door(Glob.parse("B/dcd"), Glob.parse("B/c"),
                    Glob.parse("B/d"),
                    Segment(Point(30, 4), Point(30, 6)), "B",
                    PassageKind.RESTRICTED))
    return w


class TestPassageBetween:
    def test_free_door_is_ecfp(self, world):
        assert passage_between(world, "B/a", "B/b") is PassageRelation.ECFP

    def test_wall_only_is_ecnp(self, world):
        assert passage_between(world, "B/b", "B/c") is PassageRelation.ECNP

    def test_restricted_door_is_ecrp(self, world):
        assert passage_between(world, "B/c", "B/d") is PassageRelation.ECRP

    def test_non_adjacent_rooms_have_no_passage_relation(self, world):
        assert passage_between(world, "B/a", "B/c") is None

    def test_order_insensitive(self, world):
        assert passage_between(world, "B/b", "B/a") is PassageRelation.ECFP

    def test_free_door_beats_locked_door(self, world):
        # Add a second, free door between c and d: most permissive wins.
        world.add_door(Door(Glob.parse("B/dcd2"), Glob.parse("B/c"),
                            Glob.parse("B/d"),
                            Segment(Point(30, 7), Point(30, 9)), "B",
                            PassageKind.FREE))
        assert passage_between(world, "B/c", "B/d") is PassageRelation.ECFP


class TestRegionRcc8:
    def test_adjacent_rooms_are_ec(self, world):
        assert region_rcc8(world, "B/a", "B/b") is RCC8.EC

    def test_separated_rooms_are_dc(self, world):
        assert region_rcc8(world, "B/a", "B/d") is RCC8.DC

    def test_coarse_mode(self, world):
        assert region_rcc8(world, "B/a", "B/b", exact=False) is RCC8.EC


class TestConnectedPairs:
    def test_all_adjacencies_found(self, world):
        pairs = connected_pairs(world)
        as_dict = {(a.split("/")[-1], b.split("/")[-1]): rel
                   for a, b, rel in pairs}
        assert as_dict[("a", "b")] is PassageRelation.ECFP
        assert as_dict[("b", "c")] is PassageRelation.ECNP
        assert as_dict[("c", "d")] is PassageRelation.ECRP
        assert ("a", "c") not in as_dict
        assert ("a", "d") not in as_dict


class TestTraversable:
    def test_free_always(self):
        assert traversable(PassageRelation.ECFP)
        assert traversable(PassageRelation.ECFP, with_credentials=True)

    def test_restricted_needs_credentials(self):
        assert not traversable(PassageRelation.ECRP)
        assert traversable(PassageRelation.ECRP, with_credentials=True)

    def test_wall_never(self):
        assert not traversable(PassageRelation.ECNP, with_credentials=True)
