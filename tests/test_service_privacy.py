"""Tests for privacy granularity policies (Section 4.5)."""

import pytest

from repro.errors import PrivacyError
from repro.service import (
    DEPTH_BLOCKED,
    DEPTH_BUILDING,
    DEPTH_FLOOR,
    DEPTH_FULL,
    DEPTH_ROOM,
    PrivacyPolicy,
)


class TestDepthResolution:
    def test_default_is_full(self):
        policy = PrivacyPolicy()
        assert policy.depth_for("alice", "bob") == DEPTH_FULL

    def test_wildcard_rule(self):
        policy = PrivacyPolicy()
        policy.restrict("alice", DEPTH_FLOOR)
        assert policy.depth_for("alice", "anyone") == DEPTH_FLOOR
        assert policy.depth_for("carol", "anyone") == DEPTH_FULL

    def test_specific_requester_beats_wildcard(self):
        policy = PrivacyPolicy()
        policy.restrict("alice", DEPTH_BUILDING)
        policy.allow("alice", "best-friend", DEPTH_ROOM)
        assert policy.depth_for("alice", "best-friend") == DEPTH_ROOM
        assert policy.depth_for("alice", "stranger") == DEPTH_BUILDING

    def test_anonymous_requester_gets_wildcard(self):
        policy = PrivacyPolicy()
        policy.restrict("alice", DEPTH_FLOOR)
        assert policy.depth_for("alice", None) == DEPTH_FLOOR

    def test_invalid_depth_rejected(self):
        with pytest.raises(PrivacyError):
            PrivacyPolicy().restrict("alice", -1)


class TestBlocking:
    def test_blocked_raises(self):
        policy = PrivacyPolicy()
        policy.restrict("alice", DEPTH_BLOCKED)
        with pytest.raises(PrivacyError):
            policy.check_allowed("alice", "stranger")

    def test_blocked_for_one_requester_only(self):
        policy = PrivacyPolicy()
        policy.restrict("alice", DEPTH_BLOCKED, requester="stalker")
        with pytest.raises(PrivacyError):
            policy.check_allowed("alice", "stalker")
        assert policy.check_allowed("alice", "friend") == DEPTH_FULL

    def test_check_allowed_returns_depth(self):
        policy = PrivacyPolicy()
        policy.restrict("alice", DEPTH_FLOOR)
        assert policy.check_allowed("alice", "bob") == DEPTH_FLOOR

    def test_restrictive_default(self):
        policy = PrivacyPolicy(default_depth=DEPTH_BUILDING)
        assert policy.depth_for("anyone", "x") == DEPTH_BUILDING
