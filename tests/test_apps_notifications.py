"""Tests for Location-Based Notifications (Section 8.3)."""

import pytest

from repro.apps import NotificationCenter, RegionNotifier
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    return clock, service, ubi


class TestOccupancyTracking:
    def test_enter_adds_leave_removes(self, rig):
        clock, service, ubi = rig
        notifier = RegionNotifier(service, "SC/3/ConferenceRoom")
        ubi.tag_sighting("alice", Point(190, 80), 0.0)
        assert notifier.occupants == {"alice"}
        ubi.tag_sighting("alice", Point(250, 50), 5.0)  # corridor
        assert notifier.occupants == set()

    def test_greeting_on_entry(self, rig):
        clock, service, ubi = rig
        notifier = RegionNotifier(service, "SC/3/ConferenceRoom",
                                  greeting="welcome to the meeting")
        ubi.tag_sighting("alice", Point(190, 80), 0.0)
        assert len(notifier.delivered) == 1
        assert notifier.delivered[0].recipient == "alice"
        assert notifier.delivered[0].message == "welcome to the meeting"

    def test_no_greeting_without_configuring_one(self, rig):
        clock, service, ubi = rig
        notifier = RegionNotifier(service, "SC/3/ConferenceRoom")
        ubi.tag_sighting("alice", Point(190, 80), 0.0)
        assert notifier.delivered == []


class TestBroadcast:
    def test_store_closing_message(self, rig):
        clock, service, ubi = rig
        notifier = RegionNotifier(service, "SC/3/ConferenceRoom")
        ubi.tag_sighting("alice", Point(190, 80), 0.0)
        ubi.tag_sighting("bob", Point(200, 85), 0.0)
        ubi.tag_sighting("carol", Point(30, 10), 0.0)  # elsewhere
        clock.advance(1.0)
        recipients = notifier.broadcast("The store is closing in five "
                                        "minutes")
        assert recipients == ["alice", "bob"]
        assert len(notifier.delivered) == 2

    def test_broadcast_reaches_people_present_before_watch(self, rig):
        clock, service, ubi = rig
        ubi.tag_sighting("early-bird", Point(190, 80), 0.0)
        notifier = RegionNotifier(service, "SC/3/ConferenceRoom")
        clock.advance(1.0)
        recipients = notifier.broadcast("hello")
        assert "early-bird" in recipients

    def test_close_tears_down_trigger(self, rig):
        clock, service, ubi = rig
        notifier = RegionNotifier(service, "SC/3/ConferenceRoom",
                                  greeting="hi")
        notifier.close()
        ubi.tag_sighting("alice", Point(190, 80), 0.0)
        assert notifier.delivered == []


class TestNotificationCenter:
    def test_watch_multiple_regions(self, rig):
        clock, service, ubi = rig
        center = NotificationCenter(service)
        center.watch("SC/3/ConferenceRoom")
        center.watch("SC/3/HCILab")
        ubi.tag_sighting("alice", Point(190, 80), 0.0)
        ubi.tag_sighting("bob", Point(290, 5), 0.0)
        clock.advance(1.0)
        count = center.broadcast_all("fire drill")
        assert count == 2
        center.close()
