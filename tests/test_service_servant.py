"""Tests for the remote Location Service servant over the ORB."""

import pytest

from repro.core import ProbabilityBucket
from repro.errors import RemoteInvocationError
from repro.geometry import Point, Rect
from repro.orb import NamingService, Orb
from repro.sensors import UbisenseAdapter
from repro.service import (
    SERVICE_NAME,
    LocationService,
    publish_service,
)
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    orb = Orb("server")
    service = LocationService(db, orb=orb, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    naming = NamingService()
    reference, _ = publish_service(service, orb, naming)
    yield orb, naming, clock, ubi, reference
    orb.shutdown()


class TestInProcessServant:
    def test_discovery_via_naming(self, rig):
        orb, naming, clock, ubi, _ = rig
        ref = naming.resolve(SERVICE_NAME)
        proxy = orb.resolve(ref)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        estimate = proxy.locate("alice")
        assert estimate.object_id == "alice"
        assert estimate.symbolic == "SC/3/3105"

    def test_unknown_object_error_crosses_boundary(self, rig):
        orb, _, _, _, ref = rig
        proxy = orb.resolve(ref)
        with pytest.raises(RemoteInvocationError) as exc_info:
            proxy.locate("nobody")
        assert exc_info.value.remote_type == "UnknownObjectError"

    def test_region_queries(self, rig):
        orb, _, clock, ubi, ref = rig
        proxy = orb.resolve(ref)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        room = Rect(140, 0, 200, 40)
        assert proxy.confidence_in_region("alice", room) > 0.5
        found = proxy.objects_in_region(room)
        assert found[0][0] == "alice"

    def test_relations(self, rig):
        orb, _, clock, ubi, ref = rig
        proxy = orb.resolve(ref)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        ubi.tag_sighting("bob", Point(152, 22), 0.0)
        clock.advance(1.0)
        result = proxy.proximity("alice", "bob", 10.0)
        assert result["holds"] is True
        colocated = proxy.colocation("alice", "bob", 3)
        assert colocated["holds"] is True

    def test_tracked_objects(self, rig):
        orb, _, _, ubi, ref = rig
        proxy = orb.resolve(ref)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert proxy.tracked_objects() == ["alice"]

    def test_grade(self, rig):
        orb, _, _, _, ref = rig
        proxy = orb.resolve(ref)
        assert proxy.grade(1.0) is ProbabilityBucket.VERY_HIGH


class TestRemotePush:
    def test_subscribe_via_servant(self, rig):
        orb, _, _, ubi, ref = rig
        proxy = orb.resolve(ref)

        class App:
            def __init__(self):
                self.events = []

            def notify(self, event):
                self.events.append(event)

        app = App()
        app_ref = orb.register("app", app)
        sub_id = proxy.subscribe(Rect(140, 0, 200, 40), app_ref,
                                 threshold=0.5)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert len(app.events) == 1
        assert proxy.unsubscribe(sub_id)
        ubi.tag_sighting("alice", Point(151, 21), 1.0)
        assert len(app.events) == 1


class TestOverTcp:
    def test_full_path_over_sockets(self):
        world = siebel_floor()
        db = SpatialDatabase(world)
        clock = SimClock()
        server_orb = Orb("server")
        server_orb.listen()
        service = LocationService(db, orb=server_orb, clock=clock)
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        reference, _ = publish_service(service, server_orb)
        assert reference.startswith("tcp://")

        client_orb = Orb("client")
        try:
            proxy = client_orb.resolve(reference)
            ubi.tag_sighting("alice", Point(150, 20), 0.0)
            clock.advance(1.0)
            estimate = proxy.locate("alice")
            assert estimate.symbolic == "SC/3/3105"
            assert estimate.bucket in list(ProbabilityBucket)
        finally:
            client_orb.shutdown()
            server_orb.shutdown()
