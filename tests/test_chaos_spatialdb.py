"""Concurrency chaos for the SpatialDatabase (satellite of the chaos
suite): concurrent writers racing ``purge_expired`` under a
drop/duplicate fault plan, with exact accounting.

Delivery order under threads is nondeterministic, but the *counts* are
exact: the shared FaultySink's hit counters tell us precisely how many
readings were dropped and duplicated, so

    inserted == submitted - dropped + duplicated
    rows remaining + rows purged == inserted

must hold with no double-counts and no phantom rows.  Thread plumbing
reuses :func:`tests.test_spatialdb_concurrency.run_threads`.
"""

import threading

from test_spatialdb_concurrency import run_threads

from repro.core import SensorSpec
from repro.faults import FaultPlan, unique_reading_ids
from repro.geometry import Point, Rect
from repro.pipeline import PipelineReading
from repro.sensors import ReadingSink
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase

WRITERS = 4
PER_WRITER = 300
TTL_S = 5.0


class DbSink(ReadingSink):
    """Writes surviving readings straight into the spatial database."""

    def __init__(self, db: SpatialDatabase) -> None:
        self.db = db
        self.inserted = 0
        self._lock = threading.Lock()

    def submit(self, reading: PipelineReading) -> bool:
        self.db.insert_reading(
            sensor_id=reading.sensor_id,
            glob_prefix=reading.glob_prefix,
            sensor_type=reading.sensor_type,
            mobile_object_id=reading.object_id,
            rect=reading.rect,
            detection_time=reading.detection_time,
            location=reading.location,
            detection_radius=reading.detection_radius,
            fire_triggers=False,
        )
        with self._lock:
            self.inserted += 1
        return True


def _database() -> SpatialDatabase:
    db = SpatialDatabase(siebel_floor())
    for w in range(WRITERS):
        db.register_sensor(
            sensor_id=f"Chaos-{w}",
            sensor_type="Chaos",
            confidence=90.0,
            time_to_live=TTL_S,
            spec=SensorSpec(
                sensor_type="Chaos",
                carry_probability=0.9,
                detection_probability=0.9,
                misident_probability=0.1,
                resolution=2.0,
                time_to_live=TTL_S,
            ),
        )
    return db


def test_concurrent_writers_and_purge_account_exactly():
    db = _database()
    db_sink = DbSink(db)
    plan = FaultPlan(91)
    plan.drop(0.1)
    plan.duplicate(0.1)
    sink = plan.wrap_sink(db_sink)

    purged_total = [0]
    stop = threading.Event()

    def writer(w: int) -> None:
        for i in range(PER_WRITER):
            t = float(i)  # virtual seconds; TTL makes early ones expire
            center = Point(100.0 + w, 20.0 + i % 10)
            sink.submit(PipelineReading(
                sensor_id=f"Chaos-{w}",
                glob_prefix="SC/3",
                sensor_type="Chaos",
                object_id=f"person-{w}",
                rect=Rect.from_center(center, 2.0),
                detection_time=t,
                location=center,
                detection_radius=2.0,
            ))

    def purger() -> None:
        t = 0.0
        while not stop.is_set():
            t += 10.0
            purged_total[0] += db.purge_expired(t % float(PER_WRITER))

    purge_thread = threading.Thread(target=purger)
    purge_thread.start()
    try:
        errors = run_threads([(writer, (w,)) for w in range(WRITERS)])
    finally:
        stop.set()
        purge_thread.join()
    assert not errors

    counts = plan.report().as_dict()
    dropped = counts["drop"]["dropped"]
    duplicated = counts["duplicate"]["duplicated"]
    submitted = WRITERS * PER_WRITER

    # Every reading reached exactly one terminal state.
    assert db_sink.inserted == submitted - dropped + duplicated
    assert unique_reading_ids(db) == []
    # No row vanished without a purge and none was counted twice.
    final_purged = purged_total[0] + db.purge_expired(
        float(PER_WRITER) + TTL_S + 1.0)
    assert len(db.sensor_readings) + final_purged == db_sink.inserted
    assert len(db.sensor_readings) == 0  # everything eventually expired


def test_same_seed_same_fault_counts_despite_threads():
    """With a single writer the fault counts are fully deterministic
    even while a purger races the writes: sink-side decisions depend
    only on submission order, which purges never perturb."""
    def run() -> str:
        db = _database()
        db_sink = DbSink(db)
        plan = FaultPlan(17)
        plan.drop(0.2)
        plan.duplicate(0.2, copies=2)
        sink = plan.wrap_sink(db_sink)
        stop = threading.Event()
        purged = [0]

        def purger() -> None:
            t = 0.0
            while not stop.is_set():
                t += 7.0
                purged[0] += db.purge_expired(t % float(PER_WRITER))

        purge_thread = threading.Thread(target=purger)
        purge_thread.start()
        try:
            errors = run_threads([(lambda: [sink.submit(PipelineReading(
                sensor_id="Chaos-0",
                glob_prefix="SC/3",
                sensor_type="Chaos",
                object_id="person-0",
                rect=Rect.from_center(Point(100.0, 20.0 + i % 10), 2.0),
                detection_time=float(i),
                location=Point(100.0, 20.0 + i % 10),
                detection_radius=2.0,
            )) for i in range(PER_WRITER)], ())])
        finally:
            stop.set()
            purge_thread.join()
        assert not errors
        return plan.report().as_text()

    assert run() == run()
