"""Tests for the symbolic region lattice (Section 4.5)."""

import pytest

from repro.errors import ServiceError
from repro.geometry import Point, Polygon, Rect
from repro.service import SymbolicRegionLattice
from repro.sim import siebel_floor


@pytest.fixture
def lattice() -> SymbolicRegionLattice:
    return SymbolicRegionLattice(siebel_floor())


class TestStructure:
    def test_rooms_present(self, lattice):
        regions = lattice.regions()
        assert "SC/3/3105" in regions
        assert "SC/3/Corridor" in regions
        assert "SC/3" in regions

    def test_room_parent_is_floor(self, lattice):
        assert lattice.parents_of("SC/3/3105") == ["SC/3"]

    def test_floor_children_include_rooms(self, lattice):
        children = lattice.children_of("SC/3")
        assert "SC/3/3105" in children
        assert "SC/3/Corridor" in children

    def test_unknown_region_rejected(self, lattice):
        with pytest.raises(ServiceError):
            lattice.parents_of("SC/9")

    def test_ancestors_sorted_by_area(self, lattice):
        ancestors = lattice.ancestors_of("SC/3/3105")
        assert ancestors == ["SC/3"]


class TestResolution:
    def test_finest_region_for_point(self, lattice):
        assert lattice.finest_region_containing_point(
            Point(150, 10)) == "SC/3/3105"
        assert lattice.finest_region_containing_point(
            Point(200, 50)) == "SC/3/Corridor"

    def test_point_outside_world(self, lattice):
        assert lattice.finest_region_containing_point(
            Point(9999, 9999)) is None

    def test_finest_region_for_rect(self, lattice):
        assert lattice.finest_region_containing_rect(
            Rect(150, 10, 160, 20)) == "SC/3/3105"

    def test_rect_straddling_rooms_resolves_to_floor(self, lattice):
        straddling = Rect(190, 10, 210, 20)  # 3105 | NetLab wall
        assert lattice.finest_region_containing_rect(
            straddling) == "SC/3"

    def test_regions_overlapping_ordered_smallest_first(self, lattice):
        overlapping = lattice.regions_overlapping(Rect(150, 10, 160, 20))
        assert overlapping[0] == "SC/3/3105"
        assert overlapping[-1] == "SC/3"


class TestCoarsening:
    def test_coarsen_room_to_floor(self, lattice):
        assert lattice.coarsen("SC/3/3105", 2) == "SC/3"

    def test_coarsen_room_to_building(self, lattice):
        assert lattice.coarsen("SC/3/3105", 1) == "SC"

    def test_coarsen_noop_when_deep_enough(self, lattice):
        assert lattice.coarsen("SC/3/3105", 5) == "SC/3/3105"


class TestApplicationDefinedRegions:
    def test_define_region_joins_lattice(self, lattice):
        # "East wing of the building" (Section 4.5).
        east_wing = Polygon.from_rect(Rect(300, 0, 400, 100))
        lattice.define_region("SC/3/EastWing", east_wing)
        assert lattice.has("SC/3/EastWing")
        # Room 3110 (at x 320-380) now has the wing as a parent.
        assert "SC/3/EastWing" in lattice.parents_of("SC/3/3110")

    def test_work_region_inside_a_room(self, lattice):
        work = Polygon.from_rect(Rect(145, 5, 160, 15))
        lattice.define_region("SC/3/3105/work", work)
        assert "SC/3/3105" in lattice.parents_of("SC/3/3105/work")
        assert lattice.finest_region_containing_point(
            Point(150, 10)) == "SC/3/3105/work"
