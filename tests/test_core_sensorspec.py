"""Unit tests for the sensor error model (Section 4.1.1)."""

import pytest

from repro.core import ConstantTDF, LinearTDF, SensorSpec, derive_pq
from repro.errors import SensorError


class TestDerivePq:
    def test_biometric_case(self):
        # x = 1: p = y, q = z exactly.
        p, q = derive_pq(x=1.0, y=0.99, z=0.01)
        assert p == pytest.approx(0.99)
        assert q == pytest.approx(0.01)

    def test_paper_algebra_for_q(self):
        # q = z*x + (y+z)*(1-x) = z + y*(1-x).
        x, y, z = 0.9, 0.95, 0.05
        _, q = derive_pq(x, y, z)
        assert q == pytest.approx(z + y * (1 - x))

    def test_detection_probability(self):
        # p = y*x + z*(1-x): carrying -> detected at y, else misID at z.
        x, y, z = 0.8, 0.9, 0.1
        p, _ = derive_pq(x, y, z)
        assert p == pytest.approx(0.9 * 0.8 + 0.1 * 0.2)

    def test_q_clamped_to_one(self):
        _, q = derive_pq(x=0.0, y=1.0, z=0.5)
        assert q == 1.0

    def test_invalid_probability_rejected(self):
        with pytest.raises(SensorError):
            derive_pq(1.5, 0.5, 0.5)
        with pytest.raises(SensorError):
            derive_pq(0.5, -0.1, 0.5)

    def test_p_greater_than_q_for_good_sensors(self):
        # A sensor worth deploying detects better than it hallucinates.
        for x in (0.85, 0.9, 1.0):
            p, q = derive_pq(x, 0.95, 0.05)
            assert p > q


class TestSpecValidation:
    def test_negative_resolution_rejected(self):
        with pytest.raises(SensorError):
            SensorSpec("T", 1.0, 0.9, 0.1, resolution=-1.0)

    def test_zero_ttl_rejected(self):
        with pytest.raises(SensorError):
            SensorSpec("T", 1.0, 0.9, 0.1, time_to_live=0.0)

    def test_bad_probability_rejected(self):
        with pytest.raises(SensorError):
            SensorSpec("T", 2.0, 0.9, 0.1)


class TestAreaScaledZ:
    def test_ubisense_calibration(self):
        # "z = 0.05 * area(A)/area(U)" for Ubisense (Section 6).
        spec = SensorSpec("Ubisense", 0.9, 0.95, 0.05, z_area_scaled=True,
                          resolution=0.5, time_to_live=3.0)
        z = spec.effective_z(reading_area=1.0, universe_area=50000.0)
        assert z == pytest.approx(0.05 / 50000.0)

    def test_fixed_z_ignores_area(self):
        spec = SensorSpec("Bio", 1.0, 0.99, 0.01)
        assert spec.effective_z(1.0, 50000.0) == 0.01
        assert spec.effective_z(10000.0, 50000.0) == 0.01

    def test_ratio_clamped(self):
        spec = SensorSpec("X", 0.9, 0.9, 0.2, z_area_scaled=True)
        assert spec.effective_z(99999.0, 100.0) == pytest.approx(0.2)

    def test_zero_universe_rejected(self):
        spec = SensorSpec("X", 0.9, 0.9, 0.2, z_area_scaled=True)
        with pytest.raises(SensorError):
            spec.effective_z(1.0, 0.0)

    def test_pq_uses_effective_z(self):
        spec = SensorSpec("X", 1.0, 0.9, 0.5, z_area_scaled=True)
        p_small, q_small = spec.pq(1.0, 1000.0)
        p_big, q_big = spec.pq(500.0, 1000.0)
        assert q_small < q_big          # bigger claims are easier to fake
        assert p_small <= p_big


class TestTemporalDegradation:
    def test_degraded_p_decreases_with_age(self):
        spec = SensorSpec("T", 1.0, 0.9, 0.05,
                          tdf=LinearTDF(zero_at=100.0))
        fresh = spec.degraded_p(1.0, 1000.0, 0.0)
        stale = spec.degraded_p(1.0, 1000.0, 50.0)
        assert stale < fresh

    def test_degraded_p_floored_at_q(self):
        # Degradation never turns a reading into anti-evidence.
        spec = SensorSpec("T", 1.0, 0.9, 0.05,
                          tdf=LinearTDF(zero_at=10.0))
        _, q = spec.pq(1.0, 1000.0)
        assert spec.degraded_p(1.0, 1000.0, 1e6) == pytest.approx(q)

    def test_constant_tdf_keeps_p(self):
        spec = SensorSpec("T", 1.0, 0.9, 0.05, tdf=ConstantTDF())
        assert spec.degraded_p(1.0, 1000.0, 500.0) == \
            spec.degraded_p(1.0, 1000.0, 0.0)

    def test_expiry(self):
        spec = SensorSpec("T", 1.0, 0.9, 0.05, time_to_live=60.0)
        assert not spec.is_expired(60.0)
        assert spec.is_expired(60.01)

    def test_confidence_percent(self):
        spec = SensorSpec("T", 1.0, 0.93, 0.01)
        assert spec.confidence_percent() == pytest.approx(93.0)
