"""Chaos-verified crash recovery: seeded kills inside the WAL layer.

Escalating seeded fault plans kill the durability layer at each of its
four kill points (mid-append, mid-fsync, mid-snapshot, mid-compaction)
while the ingestion pipeline is running, then :func:`repro.storage.
recover` rebuilds from the WAL directory and the suite compares the
recovered database against the in-memory survivor:

* a kill **mid-append** leaves a torn record that logged nothing, so
  the recovered table is fingerprint-identical to the survivor;
* a kill **mid-fsync** leaves the record durable but unacknowledged —
  the recovered table may hold exactly one committed-but-unapplied row
  more than the survivor, never fewer and never a different one;
* a kill **mid-snapshot** leaves a torn snapshot document that
  recovery must skip, falling back to the previous snapshot plus a
  longer replay;
* a kill **mid-compaction** (after the snapshot, before truncation)
  leaves WAL records the snapshot already covers; replay skips them
  by sequence number.

Same-seed runs must produce byte-identical FaultReports, and pipeline
accounting must still reconcile (crashed flushes dead-letter).

Seeds: the three fixed CI seeds plus any extras from ``CHAOS_SEED``
(comma-separated), which the CI recovery job uses to fan out.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SensorSpec
from repro.errors import SimulatedCrash, StorageError
from repro.faults import FaultPlan
from repro.geometry import Rect
from repro.pipeline import PipelineConfig
from repro.sim import Scenario, paper_floor
from repro.spatialdb import SpatialDatabase
from repro.storage import (
    WAL_NAME,
    DurabilityManager,
    list_snapshots,
    load_latest_snapshot,
    readings_fingerprint,
    recover,
    scan_wal,
)

FIXED_SEEDS = (101, 202, 303)


def _seeds():
    extra = os.environ.get("CHAOS_SEED", "")
    env = [int(s) for s in extra.split(",") if s.strip()]
    return sorted(set(FIXED_SEEDS) | set(env))


SEEDS = _seeds()


def _run_durable(tmp_path, seed, point=None, offset=3, occurrence=1,
                 seconds=150, people=5, mode="strict", workers=None):
    """One pipeline run over a durable scenario with an armed kill.

    The kill is armed at ``base + offset`` where ``base`` is the WAL
    position after sensor registration, so append/fsync kills always
    land inside the pipeline's insert traffic.  Returns
    ``(scenario, manager, plan, stats)``.
    """
    scenario = Scenario(seed=seed)
    manager = scenario.use_durability(str(tmp_path / "wal"), mode=mode)
    scenario.standard_deployment()
    base = manager.stats()["last_seq"]
    plan = FaultPlan(seed, clock=scenario.clock)
    if point in ("append", "fsync"):
        plan.wal_crash(point=point, at_seq=base + offset,
                       occurrence=occurrence)
    elif point is not None:
        # Snapshot/compaction kills arm on occurrence, not WAL position.
        plan.wal_crash(point=point, occurrence=occurrence)
    scenario.add_people(people)
    config = PipelineConfig(workers=workers) if workers else None
    pipeline = scenario.use_pipeline(fault_plan=plan, config=config)
    try:
        scenario.run(seconds, dt=1.0)
        pipeline.drain(timeout=60.0)
    finally:
        pipeline.stop()
    return scenario, manager, plan, pipeline.stats()


def _rows_by_id(db):
    return {row["reading_id"]: row for row in db.sensor_readings.select()}


class TestCleanRunRecovery:
    """No faults: the WAL directory alone reproduces the survivor."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fingerprint_identical(self, tmp_path, seed):
        scenario, manager, _, stats = _run_durable(tmp_path, seed)
        assert stats.reconciles()
        assert manager.stats()["crashed"] == 0
        state = recover(manager.wal_dir)
        assert readings_fingerprint(state.db) == \
            readings_fingerprint(scenario.db)
        assert state.db.tracked_objects() == scenario.db.tracked_objects()

    def test_durability_does_not_perturb_the_data_path(self, tmp_path):
        """DurabilityMode.OFF stays bit-identical: a journaled run
        stores exactly the rows an unjournaled same-seed run stores."""
        def rows(durable):
            scenario = Scenario(seed=7)
            if durable:
                scenario.use_durability(str(tmp_path / "wal-on"))
            scenario.standard_deployment()
            scenario.add_people(4)
            pipeline = scenario.use_pipeline(
                config=PipelineConfig(workers=1))
            try:
                scenario.run(90, dt=1.0)
                pipeline.drain(timeout=60.0)
            finally:
                pipeline.stop()
            return readings_fingerprint(scenario.db)

        assert rows(durable=True) == rows(durable=False)


class TestKillMidAppend:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovered_equals_survivor(self, tmp_path, seed):
        scenario, manager, plan, stats = _run_durable(
            tmp_path, seed, point="append")
        assert manager.stats()["crashed"] == 1
        assert stats.reconciles()
        assert stats.dead_lettered > 0  # the crashed flush and its heirs
        state = recover(manager.wal_dir)
        assert state.torn_bytes > 0  # the half-written record
        assert readings_fingerprint(state.db) == \
            readings_fingerprint(scenario.db)

    def test_same_seed_byte_identical_report(self, tmp_path):
        # One worker: with several, WHICH insert lands on the killed
        # sequence number is an interleaving accident; the report and
        # fingerprints are only run-stable when flush order is.
        outs = []
        for run in ("a", "b"):
            scenario, manager, plan, stats = _run_durable(
                tmp_path / run, 101, point="append", workers=1)
            outs.append((plan.report().as_text(),
                         readings_fingerprint(scenario.db),
                         readings_fingerprint(recover(manager.wal_dir).db),
                         stats.enqueued, stats.dead_lettered))
        assert outs[0] == outs[1]

    def test_crash_is_seeded_not_spurious(self, tmp_path):
        _, _, plan, _ = _run_durable(tmp_path, 101, point="append")
        counts = plan.report().as_dict()["wal-crash"]
        assert counts.get("crash", 0) == 1


class TestKillMidFsync:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovered_holds_at_most_one_extra_row(self, tmp_path, seed):
        scenario, manager, plan, stats = _run_durable(
            tmp_path, seed, point="fsync")
        assert manager.stats()["crashed"] == 1
        assert stats.reconciles()
        state = recover(manager.wal_dir)
        survivor = _rows_by_id(scenario.db)
        recovered = _rows_by_id(state.db)
        # The committed-but-unapplied window: recovered ⊇ survivor,
        # by at most the one record whose commit was never acked.
        assert set(survivor) <= set(recovered)
        extra = set(recovered) - set(survivor)
        assert len(extra) == 1
        for reading_id, row in survivor.items():
            assert recovered[reading_id] == row

    def test_no_torn_tail_after_fsync_kill(self, tmp_path):
        _, manager, _, _ = _run_durable(tmp_path, 101, point="fsync")
        assert scan_wal(
            os.path.join(manager.wal_dir, WAL_NAME)).torn_bytes == 0


class TestKillMidSnapshot:
    def test_recovery_skips_the_torn_snapshot(self, tmp_path):
        scenario, manager, plan, stats = _run_durable(
            tmp_path, 101, point="snapshot")
        # The pipeline never cuts snapshots here; trigger one directly.
        assert manager.stats()["crashed"] == 0
        survivor = readings_fingerprint(scenario.db)
        with pytest.raises(SimulatedCrash):
            manager.snapshot()
        assert manager.stats()["crashed"] == 1
        snapshots = list_snapshots(manager.wal_dir)
        assert len(snapshots) == 2  # baseline + the torn one
        seq, _ = load_latest_snapshot(manager.wal_dir)
        assert seq == 0  # fell back to the baseline
        state = recover(manager.wal_dir)
        assert state.snapshot_seq == 0
        assert state.replayed > 0  # the whole history replays
        assert readings_fingerprint(state.db) == survivor

    def test_crashed_manager_refuses_further_snapshots(self, tmp_path):
        _, manager, _, _ = _run_durable(tmp_path, 101, point="snapshot")
        with pytest.raises(SimulatedCrash):
            manager.snapshot()
        with pytest.raises(StorageError):
            manager.snapshot()


class TestKillMidCompaction:
    def test_snapshot_covers_the_untruncated_records(self, tmp_path):
        scenario, manager, plan, stats = _run_durable(
            tmp_path, 101, point="compact")
        survivor = readings_fingerprint(scenario.db)
        with pytest.raises(SimulatedCrash):
            manager.compact()
        # The kill hit between the snapshot and the truncation: the WAL
        # still holds records, but the snapshot already covers them.
        scan = scan_wal(os.path.join(manager.wal_dir, WAL_NAME))
        assert scan.records
        seq, _ = load_latest_snapshot(manager.wal_dir)
        assert seq == scan.last_seq
        state = recover(manager.wal_dir)
        assert state.replayed == 0  # everything was inside the snapshot
        assert readings_fingerprint(state.db) == survivor


_UBI = SensorSpec(sensor_type="Ubisense", carry_probability=0.9,
                  detection_probability=0.95, misident_probability=0.05,
                  z_area_scaled=True, resolution=0.5, time_to_live=3.0)
_RF = SensorSpec(sensor_type="RF", carry_probability=0.85,
                 detection_probability=0.75, misident_probability=0.25,
                 z_area_scaled=True, resolution=15.0, time_to_live=60.0)

_SENSORS = (("Ubi-18", "Ubisense", 95.0, 3.0, _UBI),
            ("RF-12", "RF", 75.0, 60.0, _RF))
_OBJECTS = ("alice", "bob", "carol")

_op = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, len(_OBJECTS) - 1),
              st.integers(0, len(_SENSORS) - 1),
              st.integers(0, 96), st.integers(0, 16),
              st.floats(0.0, 100.0, allow_nan=False)),
    st.tuples(st.just("expire"), st.integers(0, len(_OBJECTS) - 1)),
    st.tuples(st.just("purge"), st.floats(0.0, 200.0, allow_nan=False)),
)


class TestReplayProperty:
    """Property: replay(WAL) == the in-memory reference, op for op."""

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(_op, min_size=1, max_size=30))
    def test_replay_matches_reference(self, tmp_path_factory, ops):
        wal_dir = str(tmp_path_factory.mktemp("wal"))
        world = paper_floor()
        durable = SpatialDatabase(world)
        reference = SpatialDatabase(world)
        manager = DurabilityManager(durable, wal_dir).attach()
        for db in (durable, reference):
            for sensor in _SENSORS:
                db.register_sensor(*sensor[:4], spec=sensor[4])
        for op in ops:
            for db in (durable, reference):
                if op[0] == "insert":
                    _, obj, sensor, x, y, t = op
                    db.insert_reading(
                        sensor_id=_SENSORS[sensor][0],
                        glob_prefix="CS/Floor3",
                        sensor_type=_SENSORS[sensor][1],
                        mobile_object_id=_OBJECTS[obj],
                        rect=Rect(float(x), float(y),
                                  float(x) + 4.0, float(y) + 4.0),
                        detection_time=t)
                elif op[0] == "expire":
                    db.expire_object_readings(_OBJECTS[op[1]])
                else:
                    db.purge_expired(now=op[1])
        manager.sync()
        state = recover(wal_dir)
        live = readings_fingerprint(durable)
        assert readings_fingerprint(reference) == live, \
            "journaling perturbed the data path"
        assert readings_fingerprint(state.db) == live, \
            "replay diverged from the survivor"
        manager.close()


@pytest.mark.slow
class TestEscalatingSweep:
    """Every kill point × every seed, plus arbitrary kill offsets —
    excluded from tier-1 (needs --runslow; the CI recovery job fans
    these out across CHAOS_SEED values)."""

    @pytest.mark.parametrize("point", ["append", "fsync"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_kill_offsets_never_break_recovery(self, tmp_path, seed,
                                               point):
        for offset in (1, 2, 5, 8):
            directory = tmp_path / f"{point}-{offset}"
            scenario, manager, plan, stats = _run_durable(
                directory, seed, point=point, offset=offset)
            assert stats.reconciles(), (seed, point, offset)
            state = recover(manager.wal_dir)
            survivor = _rows_by_id(scenario.db)
            recovered = _rows_by_id(state.db)
            assert set(survivor) <= set(recovered), (seed, point, offset)
            assert len(set(recovered) - set(survivor)) <= \
                (1 if point == "fsync" else 0)
            for reading_id, row in survivor.items():
                assert recovered[reading_id] == row, \
                    (seed, point, offset, reading_id)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_recover_resume_crash_again(self, tmp_path, seed):
        """Recovery output survives being crashed again: recover, keep
        writing durably on the recovered database, kill, recover."""
        scenario, manager, _, _ = _run_durable(tmp_path, seed,
                                               point="append")
        state = recover(manager.wal_dir)
        resumed = state.db
        again = DurabilityManager(resumed, str(tmp_path / "wal2"),
                                  mode=manager.mode).attach()
        plan = FaultPlan(seed + 1)
        plan.wal_crash(point="append",
                       at_seq=again.stats()["last_seq"] + 4)
        again.attach_fault_plan(plan)
        crashed = False
        for i in range(8):
            try:
                resumed.insert_reading(
                    sensor_id="Ubi-18", glob_prefix="CS/Floor3",
                    sensor_type="Ubisense", mobile_object_id="alice",
                    rect=Rect(100.0 + i, 10.0, 104.0 + i, 14.0),
                    detection_time=1000.0 + i)
            except (SimulatedCrash, StorageError):
                crashed = True
        assert crashed
        final = recover(str(tmp_path / "wal2"))
        assert readings_fingerprint(final.db) == \
            readings_fingerprint(resumed)
