"""Failure injection: stale data, conflicts, crashes, lost badges."""

import pytest

from repro.errors import UnknownObjectError
from repro.geometry import Point, Rect
from repro.sensors import RfBadgeAdapter, UbisenseAdapter
from repro.service import LocationService
from repro.sim import MovementModel, Scenario, SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    return world, db, clock, service


class TestStaleData:
    def test_everything_expired_means_unknown(self, rig):
        world, db, clock, service = rig
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(300.0)
        with pytest.raises(UnknownObjectError):
            service.locate("alice")

    def test_fresh_sensor_outlives_stale_one(self, rig):
        world, db, clock, service = rig
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        rf = RfBadgeAdapter("RF-1", "SC/3/3105", Point(170, 20),
                            frame="").attach(db)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)  # TTL 3 s
        rf.badge_sighting("alice", 0.0)                  # TTL 60 s
        clock.advance(30.0)
        estimate = service.locate("alice")
        assert estimate.sources == ("RF-1",)

    def test_purge_keeps_database_bounded(self, rig):
        world, db, clock, service = rig
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        for i in range(100):
            ubi.tag_sighting("alice", Point(150 + i * 0.01, 20),
                             float(i))
        purged = db.purge_expired(now=200.0)
        assert purged == 100
        assert len(db.sensor_readings) == 0


class TestConflictingSensors:
    def test_badge_left_behind(self, rig):
        """The paper's motivating conflict: a stationary badge in the
        office while the person walks elsewhere."""
        world, db, clock, service = rig
        rf_office = RfBadgeAdapter("RF-office", "SC/3/3102",
                                   Point(50, 20), frame="").attach(db)
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        # The badge pings repeatedly from the same spot (not moving).
        rf_office.badge_sighting("alice", 0.0)
        rf_office.badge_sighting("alice", 5.0)
        # Meanwhile the person's Ubisense tag tracks her walking.
        ubi.tag_sighting("alice", Point(250, 50), 8.0)
        ubi.tag_sighting("alice", Point(254, 50), 9.0)
        clock.advance(10.0)
        estimate = service.locate("alice")
        # The moving rectangle wins (conflict rule 1).
        assert estimate.moving
        assert estimate.rect.contains_point(Point(254, 50))
        assert "Ubi-1" in estimate.sources

    def test_disjoint_equal_sensors_resolved_deterministically(self, rig):
        world, db, clock, service = rig
        rf_a = RfBadgeAdapter("RF-A", "SC/3/3102", Point(50, 20),
                              frame="").attach(db)
        rf_b = RfBadgeAdapter("RF-B", "SC/3/3110", Point(350, 20),
                              frame="").attach(db)
        rf_a.badge_sighting("alice", 0.0)
        rf_b.badge_sighting("alice", 0.0)
        clock.advance(1.0)
        first = service.locate("alice")
        second = service.locate("alice")
        assert first.rect == second.rect


class TestCrashingConsumers:
    def test_crashing_subscriber_is_isolated(self, rig):
        world, db, clock, service = rig
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        healthy_events = []

        def crashing(event):
            raise RuntimeError("app died")

        # The crashing consumer subscribes first.
        crashed_id = service.subscribe("SC/3/3105", consumer=crashing)
        service.subscribe("SC/3/3105", consumer=healthy_events.append)
        # Ingest survives, the healthy app is served, the failure is
        # recorded against the crashed subscription.
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert db.readings_for("alice", now=1.0)
        assert len(healthy_events) == 1
        assert service.notification_failures
        assert service.notification_failures[0][0] == crashed_id
        assert "app died" in service.notification_failures[0][1]

    def test_dead_remote_subscriber_is_isolated(self, rig):
        from repro.orb import Orb
        world, db, clock, _ = rig
        orb = Orb()
        service = LocationService(db, orb=orb, clock=clock)
        ubi = UbisenseAdapter("Ubi-9", "SC/3", frame="").attach(db)
        # A TCP reference to a port nothing listens on.
        service.subscribe("SC/3/3105",
                          remote_reference="tcp://127.0.0.1:1/ghost")
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert db.readings_for("alice", now=1.0)
        assert service.notification_failures


class TestLostDevices:
    def test_person_without_badge_is_invisible_to_badge_sensors(self):
        scenario = Scenario(seed=2).standard_deployment()
        model = scenario.movement
        person = model.add_person("forgetful")
        person.carrying_badge = False
        scenario.run(300)
        badge_rows = [
            row for row in scenario.db.sensor_readings.select()
            if row["mobile_object_id"] == "forgetful"
            and row["sensor_type"] in ("Ubisense", "RF")
        ]
        assert badge_rows == []

    def test_badgeless_person_still_caught_by_card_reader(self):
        scenario = Scenario(seed=6).standard_deployment()
        person = scenario.movement.add_person("forgetful")
        person.carrying_badge = False
        scenario.run(900)
        rows = [row for row in scenario.db.sensor_readings.select()
                if row["mobile_object_id"] == "forgetful"]
        # Card readers and fingerprint devices need no badge, so some
        # readings exist if the person entered a covered room.
        for row in rows:
            assert row["sensor_type"] in ("CardReader", "Biometric",
                                          "Biometric-room",
                                          "Biometric-logout")
