"""Failure injection: stale data, conflicts, crashes, lost badges."""

import pytest

from repro.errors import UnknownObjectError
from repro.geometry import Point, Rect
from repro.sensors import RfBadgeAdapter, UbisenseAdapter
from repro.service import LocationService
from repro.sim import MovementModel, Scenario, SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    return world, db, clock, service


class TestStaleData:
    def test_everything_expired_means_unknown(self, rig):
        world, db, clock, service = rig
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(300.0)
        with pytest.raises(UnknownObjectError):
            service.locate("alice")

    def test_fresh_sensor_outlives_stale_one(self, rig):
        world, db, clock, service = rig
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        rf = RfBadgeAdapter("RF-1", "SC/3/3105", Point(170, 20),
                            frame="").attach(db)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)  # TTL 3 s
        rf.badge_sighting("alice", 0.0)                  # TTL 60 s
        clock.advance(30.0)
        estimate = service.locate("alice")
        assert estimate.sources == ("RF-1",)

    def test_purge_keeps_database_bounded(self, rig):
        world, db, clock, service = rig
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        for i in range(100):
            ubi.tag_sighting("alice", Point(150 + i * 0.01, 20),
                             float(i))
        purged = db.purge_expired(now=200.0)
        assert purged == 100
        assert len(db.sensor_readings) == 0


class TestConflictingSensors:
    def test_badge_left_behind(self, rig):
        """The paper's motivating conflict: a stationary badge in the
        office while the person walks elsewhere."""
        world, db, clock, service = rig
        rf_office = RfBadgeAdapter("RF-office", "SC/3/3102",
                                   Point(50, 20), frame="").attach(db)
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        # The badge pings repeatedly from the same spot (not moving).
        rf_office.badge_sighting("alice", 0.0)
        rf_office.badge_sighting("alice", 5.0)
        # Meanwhile the person's Ubisense tag tracks her walking.
        ubi.tag_sighting("alice", Point(250, 50), 8.0)
        ubi.tag_sighting("alice", Point(254, 50), 9.0)
        clock.advance(10.0)
        estimate = service.locate("alice")
        # The moving rectangle wins (conflict rule 1).
        assert estimate.moving
        assert estimate.rect.contains_point(Point(254, 50))
        assert "Ubi-1" in estimate.sources

    def test_disjoint_equal_sensors_resolved_deterministically(self, rig):
        world, db, clock, service = rig
        rf_a = RfBadgeAdapter("RF-A", "SC/3/3102", Point(50, 20),
                              frame="").attach(db)
        rf_b = RfBadgeAdapter("RF-B", "SC/3/3110", Point(350, 20),
                              frame="").attach(db)
        rf_a.badge_sighting("alice", 0.0)
        rf_b.badge_sighting("alice", 0.0)
        clock.advance(1.0)
        first = service.locate("alice")
        second = service.locate("alice")
        assert first.rect == second.rect


class TestCrashingConsumers:
    def test_crashing_subscriber_is_isolated(self, rig):
        world, db, clock, service = rig
        ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        healthy_events = []

        def crashing(event):
            raise RuntimeError("app died")

        # The crashing consumer subscribes first.
        crashed_id = service.subscribe("SC/3/3105", consumer=crashing)
        service.subscribe("SC/3/3105", consumer=healthy_events.append)
        # Ingest survives, the healthy app is served, the failure is
        # recorded against the crashed subscription.
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert db.readings_for("alice", now=1.0)
        assert len(healthy_events) == 1
        assert service.notification_failures
        assert service.notification_failures[0][0] == crashed_id
        assert "app died" in service.notification_failures[0][1]

    def test_dead_remote_subscriber_is_isolated(self, rig):
        from repro.orb import Orb
        world, db, clock, _ = rig
        orb = Orb()
        service = LocationService(db, orb=orb, clock=clock)
        ubi = UbisenseAdapter("Ubi-9", "SC/3", frame="").attach(db)
        # A TCP reference to a port nothing listens on.
        service.subscribe("SC/3/3105",
                          remote_reference="tcp://127.0.0.1:1/ghost")
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        assert db.readings_for("alice", now=1.0)
        assert service.notification_failures


class TestLostDevices:
    def test_person_without_badge_is_invisible_to_badge_sensors(self):
        scenario = Scenario(seed=2).standard_deployment()
        model = scenario.movement
        person = model.add_person("forgetful")
        person.carrying_badge = False
        scenario.run(300)
        badge_rows = [
            row for row in scenario.db.sensor_readings.select()
            if row["mobile_object_id"] == "forgetful"
            and row["sensor_type"] in ("Ubisense", "RF")
        ]
        assert badge_rows == []

    def test_badgeless_person_still_caught_by_card_reader(self):
        scenario = Scenario(seed=6).standard_deployment()
        person = scenario.movement.add_person("forgetful")
        person.carrying_badge = False
        scenario.run(900)
        rows = [row for row in scenario.db.sensor_readings.select()
                if row["mobile_object_id"] == "forgetful"]
        # Card readers and fingerprint devices need no badge, so some
        # readings exist if the person entered a covered room.
        for row in rows:
            assert row["sensor_type"] in ("CardReader", "Biometric",
                                          "Biometric-room",
                                          "Biometric-logout")


class TestPipelineParity:
    """The failure scenarios above, replayed through the ingestion
    pipeline (``Scenario.use_pipeline``), must land on the same final
    estimates as the synchronous insert path: batching and worker
    threads may change *when* readings land, never *what* the service
    answers once the pipeline has drained."""

    @staticmethod
    def _pair(seed=21):
        """Two identical scenarios; the second routes via a pipeline."""
        sync = Scenario(seed=seed).standard_deployment()
        piped = Scenario(seed=seed).standard_deployment()
        pipeline = piped.use_pipeline(workers=2)
        return sync, piped, pipeline

    @staticmethod
    def _adapters(scenario):
        return {a.adapter_id: a for a in scenario.deployment.adapters()}

    @staticmethod
    def _locate_key(scenario, object_id):
        """A comparable digest of the final answer (or its refusal)."""
        try:
            est = scenario.service.locate(object_id)
        except UnknownObjectError:
            return "unknown"
        return (est.rect, tuple(est.sources), est.bucket, est.moving,
                repr(est.probability), repr(est.posterior), est.symbolic)

    def test_stale_data_parity(self):
        sync, piped, pipeline = self._pair()
        try:
            for scenario in (sync, piped):
                adapters = self._adapters(scenario)
                adapters["Ubi-18"].tag_sighting("alice", Point(150, 20),
                                                0.0)  # TTL 3 s
                adapters["RF-12"].badge_sighting("alice", 0.0)  # TTL 60 s
                scenario.clock.advance(30.0)
            assert pipeline.drain(timeout=30.0)
            key = self._locate_key(piped, "alice")
            assert key == self._locate_key(sync, "alice")
            assert key[1] == ("RF-12",)  # only the fresh sensor cited
            # Once everything has expired, both paths refuse alike.
            for scenario in (sync, piped):
                scenario.clock.advance(300.0)
            assert self._locate_key(sync, "alice") == "unknown"
            assert self._locate_key(piped, "alice") == "unknown"
        finally:
            pipeline.stop()

    def test_lost_badge_parity(self):
        sync, piped, pipeline = self._pair(seed=2)
        try:
            for scenario in (sync, piped):
                person = scenario.movement.add_person("forgetful")
                person.carrying_badge = False
                scenario.run(300)
            assert pipeline.drain(timeout=60.0)
            for scenario in (sync, piped):
                badge_rows = [
                    row for row in scenario.db.sensor_readings.select()
                    if row["mobile_object_id"] == "forgetful"
                    and row["sensor_type"] in ("Ubisense", "RF")
                ]
                assert badge_rows == []
            assert (self._locate_key(piped, "forgetful")
                    == self._locate_key(sync, "forgetful"))
        finally:
            pipeline.stop()

    def test_conflicting_sensors_parity(self):
        """The badge-left-behind conflict resolves identically: the
        moving Ubisense track beats the stationary office badge on
        both paths."""
        sync, piped, pipeline = self._pair()
        try:
            for scenario in (sync, piped):
                adapters = self._adapters(scenario)
                adapters["RF-12"].badge_sighting("alice", 0.0)
                adapters["RF-12"].badge_sighting("alice", 5.0)
                adapters["Ubi-18"].tag_sighting("alice", Point(250, 50),
                                                8.0)
                adapters["Ubi-18"].tag_sighting("alice", Point(254, 50),
                                                9.0)
                scenario.clock.advance(10.0)
            assert pipeline.drain(timeout=30.0)
            key = self._locate_key(piped, "alice")
            assert key == self._locate_key(sync, "alice")
            assert key != "unknown"
            moving = key[3]
            assert moving
            assert "Ubi-18" in key[1]
        finally:
            pipeline.stop()
