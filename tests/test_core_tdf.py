"""Unit tests for temporal degradation functions (Section 3.2)."""

import math

import pytest

from repro.core import ConstantTDF, ExponentialTDF, LinearTDF, StepTDF
from repro.errors import SensorError


class TestConstant:
    def test_no_decay(self):
        tdf = ConstantTDF()
        assert tdf.degrade(0.9, 0.0) == 0.9
        assert tdf.degrade(0.9, 1e6) == 0.9

    def test_input_validation(self):
        with pytest.raises(SensorError):
            ConstantTDF().degrade(1.5, 0.0)
        with pytest.raises(SensorError):
            ConstantTDF().degrade(0.5, -1.0)


class TestLinear:
    def test_zero_age_identity(self):
        assert LinearTDF(zero_at=60.0).degrade(0.8, 0.0) == 0.8

    def test_halfway(self):
        assert LinearTDF(zero_at=60.0).degrade(0.8, 30.0) == \
            pytest.approx(0.4)

    def test_floor_at_zero(self):
        assert LinearTDF(zero_at=60.0).degrade(0.8, 120.0) == 0.0

    def test_invalid_zero_at(self):
        with pytest.raises(SensorError):
            LinearTDF(zero_at=0.0)


class TestExponential:
    def test_half_life(self):
        tdf = ExponentialTDF(half_life=30.0)
        assert tdf.degrade(0.8, 30.0) == pytest.approx(0.4)
        assert tdf.degrade(0.8, 60.0) == pytest.approx(0.2)

    def test_zero_age_identity(self):
        assert ExponentialTDF(half_life=30.0).degrade(0.8, 0.0) == 0.8

    def test_invalid_half_life(self):
        with pytest.raises(SensorError):
            ExponentialTDF(half_life=-1.0)


class TestStep:
    def test_steps_apply_in_order(self):
        tdf = StepTDF([(10.0, 0.8), (20.0, 0.5)])
        assert tdf.degrade(1.0, 5.0) == 1.0
        assert tdf.degrade(1.0, 10.0) == 0.8
        assert tdf.degrade(1.0, 15.0) == 0.8
        assert tdf.degrade(1.0, 25.0) == 0.5

    def test_empty_steps_rejected(self):
        with pytest.raises(SensorError):
            StepTDF([])

    def test_non_increasing_ages_rejected(self):
        with pytest.raises(SensorError):
            StepTDF([(10.0, 0.8), (5.0, 0.5)])

    def test_increasing_factors_rejected(self):
        with pytest.raises(SensorError):
            StepTDF([(10.0, 0.5), (20.0, 0.8)])

    def test_factor_out_of_range_rejected(self):
        with pytest.raises(SensorError):
            StepTDF([(10.0, 1.5)])


@pytest.mark.parametrize("tdf", [
    ConstantTDF(),
    LinearTDF(zero_at=100.0),
    ExponentialTDF(half_life=25.0),
    StepTDF([(10.0, 0.9), (50.0, 0.4)]),
])
class TestCommonContract:
    def test_identity_at_zero_age(self, tdf):
        assert tdf.degrade(0.7, 0.0) == pytest.approx(0.7)

    def test_monotone_non_increasing(self, tdf):
        ages = [0.0, 1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 200.0]
        values = [tdf.degrade(0.9, age) for age in ages]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_result_within_bounds(self, tdf):
        for age in (0.0, 13.0, 97.0, 1000.0):
            value = tdf.degrade(0.6, age)
            assert 0.0 <= value <= 0.6 + 1e-12

    def test_zero_confidence_stays_zero(self, tdf):
        assert tdf.degrade(0.0, 42.0) == 0.0
