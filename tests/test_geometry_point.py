"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry import Point


class TestDistances:
    def test_planar_distance_is_pythagorean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_planar_distance_ignores_height(self):
        assert Point(0, 0, 0).distance_to(Point(3, 4, 100)) == 5.0

    def test_3d_distance_includes_height(self):
        d = Point(0, 0, 0).distance_to_3d(Point(0, 0, 7))
        assert d == 7.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-4.0, 9.0)
        assert a.distance_to(b) == b.distance_to(a)

    def test_distance_to_self_is_zero(self):
        p = Point(12.3, 45.6, 7.0)
        assert p.distance_to(p) == 0.0


class TestTransforms:
    def test_translated(self):
        assert Point(1, 2, 3).translated(10, -2, 1) == Point(11, 0, 4)

    def test_scaled_leaves_height(self):
        assert Point(2, 3, 5).scaled(2, 10) == Point(4, 30, 5)

    def test_rotated_quarter_turn(self):
        rotated = Point(1, 0).rotated(math.pi / 2)
        assert rotated.almost_equals(Point(0, 1), 1e-12)

    def test_rotated_preserves_norm(self):
        p = Point(3, 4)
        r = p.rotated(1.234)
        assert math.isclose(math.hypot(r.x, r.y), 5.0)

    def test_midpoint(self):
        assert Point(0, 0, 0).midpoint(Point(2, 4, 6)) == Point(1, 2, 3)


class TestEquality:
    def test_points_are_hashable_values(self):
        assert {Point(1, 2), Point(1, 2)} == {Point(1, 2)}

    def test_almost_equals_tolerance(self):
        assert Point(1, 2).almost_equals(Point(1 + 1e-12, 2), 1e-9)
        assert not Point(1, 2).almost_equals(Point(1.1, 2), 1e-9)

    def test_iteration_yields_xyz(self):
        assert list(Point(1, 2, 3)) == [1, 2, 3]

    def test_xy_tuple(self):
        assert Point(7, 8, 9).xy == (7, 8)

    def test_repr_omits_zero_height(self):
        assert "Point(1, 2)" == repr(Point(1, 2))
        assert "3" in repr(Point(1, 2, 3))
