"""EventChannel behaviour under concurrent publishers.

The ingestion pipeline publishes trigger events from several worker
threads at once; the channel must neither lose deliveries nor corrupt
its failure log, and one crashed consumer must never block the rest.
"""

import threading

from repro.orb import Orb
from repro.orb.events import EventChannel


class _FlakyConsumer:
    """Fails every ``period``-th delivery; counts the rest."""

    def __init__(self, period: int) -> None:
        self.period = period
        self.delivered = 0
        self._calls = 0
        self._lock = threading.Lock()

    def __call__(self, event) -> None:
        with self._lock:
            self._calls += 1
            if self._calls % self.period == 0:
                raise RuntimeError("consumer crashed")
            self.delivered += 1


class TestConcurrentPublishers:
    def test_no_events_lost_across_threads(self):
        channel = EventChannel()
        received = []
        lock = threading.Lock()

        def consumer(event):
            with lock:
                received.append(event["n"])

        channel.subscribe(consumer)
        threads = 8
        per_thread = 50

        def publisher(thread_index):
            for i in range(per_thread):
                channel.publish({"n": (thread_index, i)})

        workers = [threading.Thread(target=publisher, args=(t,))
                   for t in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert len(received) == threads * per_thread
        assert set(received) == {(t, i) for t in range(threads)
                                 for i in range(per_thread)}
        assert channel.delivery_failures == []

    def test_failure_log_consistent_under_concurrency(self):
        channel = EventChannel()
        flaky = _FlakyConsumer(period=3)  # every 3rd call raises
        channel.subscribe(flaky)
        steady = []
        steady_lock = threading.Lock()

        def steady_consumer(event):
            with steady_lock:
                steady.append(event)

        channel.subscribe(steady_consumer)
        threads, per_thread = 6, 30
        total = threads * per_thread

        def publisher():
            for _ in range(per_thread):
                channel.publish({"kind": "tick"})

        workers = [threading.Thread(target=publisher)
                   for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        # Every publish reached the steady consumer regardless of the
        # flaky one, and every flaky failure is logged exactly once.
        assert len(steady) == total
        assert len(channel.delivery_failures) == total // 3
        assert flaky.delivered == total - total // 3
        for _, message in channel.delivery_failures:
            assert "consumer crashed" in message

    def test_failing_remote_never_blocks_local(self):
        orb = Orb("events-test")
        channel = EventChannel(orb=orb)

        class BrokenSink:
            def notify(self, event):
                raise RuntimeError("remote application crashed")

        reference = orb.register("broken-sink", BrokenSink())
        remote_id = channel.subscribe_remote(reference)
        local = []
        channel.subscribe(local.append)

        delivered = channel.publish({"kind": "enter"})
        assert delivered == 1  # local only
        assert len(local) == 1
        assert len(channel.delivery_failures) == 1
        failed_id, message = channel.delivery_failures[0]
        assert failed_id == remote_id
        assert "remote application crashed" in message

        # The channel keeps working after the failure.
        assert channel.publish({"kind": "exit"}) == 1
        assert len(local) == 2
