"""Tests for the route advisor application."""

import pytest

from repro.apps import RouteAdvisor
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, paper_floor, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    return clock, service, ubi, RouteAdvisor(service)


class TestRegionToRegion:
    def test_simple_route(self, rig):
        _, _, _, advisor = rig
        directions = advisor.directions_between("SC/3/3102",
                                                "SC/3/HCILab")
        assert directions is not None
        assert directions.origin == "SC/3/3102"
        assert directions.destination == "SC/3/HCILab"
        assert directions.distance_ft > 0
        assert any("Corridor" in step for step in directions.steps)

    def test_restricted_door_avoided_without_credentials(self, rig):
        _, _, _, advisor = rig
        # 3105 is behind a restricted door: unreachable badge-less.
        assert advisor.directions_between("SC/3/3102",
                                          "SC/3/3105") is None
        with_badge = advisor.directions_between(
            "SC/3/3102", "SC/3/3105", has_credentials=True)
        assert with_badge is not None
        assert with_badge.uses_restricted_doors
        assert any("badge required" in step for step in with_badge.steps)

    def test_paper_floor_route(self):
        world = paper_floor()
        db = SpatialDatabase(world)
        service = LocationService(db, clock=SimClock())
        db.register_sensor("dummy", "X", 50.0, 60.0)
        advisor = RouteAdvisor(service)
        directions = advisor.directions_between("CS/Floor3/NetLab",
                                                "CS/Floor3/HCILab")
        assert directions is not None
        assert len(directions.steps) == 2

    def test_str_rendering(self, rig):
        _, _, _, advisor = rig
        text = str(advisor.directions_between("SC/3/3102",
                                              "SC/3/HCILab"))
        assert "SC/3/3102 -> SC/3/HCILab" in text
        assert "1." in text


class TestPersonRouting:
    def test_directions_for_located_person(self, rig):
        clock, service, ubi, advisor = rig
        ubi.tag_sighting("alice", Point(30, 20), 0.0)  # room 3102
        clock.advance(1.0)
        directions = advisor.directions_for("alice", "SC/3/HCILab")
        assert directions is not None
        assert directions.origin == "SC/3/3102"

    def test_already_there(self, rig):
        clock, service, ubi, advisor = rig
        ubi.tag_sighting("alice", Point(290, 10), 0.0)  # HCILab
        clock.advance(1.0)
        directions = advisor.directions_for("alice", "SC/3/HCILab")
        assert directions.distance_ft == 0.0
        assert directions.steps == ["you are already there"]

    def test_unlocatable_person(self, rig):
        _, _, _, advisor = rig
        assert advisor.directions_for("ghost", "SC/3/HCILab") is None

    def test_guide_to_person(self, rig):
        clock, service, ubi, advisor = rig
        ubi.tag_sighting("alice", Point(30, 20), 0.0)   # 3102
        ubi.tag_sighting("bob", Point(290, 10), 0.0)    # HCILab
        clock.advance(1.0)
        directions = advisor.guide_to_person("alice", "bob")
        assert directions is not None
        assert directions.destination == "SC/3/HCILab"

    def test_advise_locked_destination(self, rig):
        clock, service, ubi, advisor = rig
        ubi.tag_sighting("alice", Point(30, 20), 0.0)
        clock.advance(1.0)
        answer = advisor.advise("alice", "SC/3/3105")
        assert "no unrestricted path" in answer
        assert "badge" in answer

    def test_advise_unlocatable(self, rig):
        _, _, _, advisor = rig
        answer = advisor.advise("ghost", "SC/3/HCILab")
        assert "cannot find a route" in answer
