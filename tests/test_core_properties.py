"""Property-based tests (hypothesis) on fusion invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CellDecomposition,
    RegionLattice,
    eq5_single_sensor,
    eq7_region_probability,
    exact_region_probability,
    support_confidence,
)
from repro.geometry import Rect

UNIVERSE = Rect(0.0, 0.0, 500.0, 100.0)

probs = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


@st.composite
def inner_rects(draw):
    x = draw(st.floats(0, 450))
    y = draw(st.floats(0, 80))
    w = draw(st.floats(1, 50))
    h = draw(st.floats(1, 20))
    return Rect(x, y, min(500.0, x + w), min(100.0, y + h))


@st.composite
def weighted_readings(draw):
    rect = draw(inner_rects())
    p = draw(probs)
    q = draw(probs)
    return (rect, p, q)


class TestPosteriorInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(weighted_readings(), min_size=0, max_size=5),
           inner_rects())
    def test_eq7_in_unit_interval(self, readings, region):
        value = eq7_region_probability(region, readings, UNIVERSE.area)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(weighted_readings(), min_size=0, max_size=5),
           inner_rects())
    def test_exact_in_unit_interval(self, readings, region):
        value = exact_region_probability(region, readings, UNIVERSE.area)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(weighted_readings(), min_size=1, max_size=4))
    def test_cell_posterior_normalized(self, readings):
        cells = CellDecomposition(readings, UNIVERSE)
        total = sum(cells._posterior.values())
        assert math.isclose(total, 1.0, rel_tol=1e-9)
        assert math.isclose(sum(c.area for c in cells.cells),
                            UNIVERSE.area, rel_tol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(inner_rects(), probs, probs)
    def test_single_sensor_exact_equals_eq5(self, rect, p, q):
        exact = exact_region_probability(rect, [(rect, p, q)],
                                         UNIVERSE.area)
        printed = eq5_single_sensor(rect.area, UNIVERSE.area, p, q)
        assert math.isclose(exact, printed, rel_tol=1e-9, abs_tol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(inner_rects(), probs)
    def test_reinforcement_monotone_in_exact_mode(self, rect, p):
        # Adding an identical reading with p > q never lowers the
        # exact posterior of the region.
        q = min(0.99, max(0.01, 1.0 - p))
        if p <= q:
            p, q = q, p
        if p == q:
            return
        one = exact_region_probability(rect, [(rect, p, q)],
                                       UNIVERSE.area)
        two = exact_region_probability(rect, [(rect, p, q)] * 2,
                                       UNIVERSE.area)
        assert two >= one - 1e-12


class TestSupportConfidenceInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(probs, probs), min_size=1, max_size=6))
    def test_in_unit_interval(self, pairs):
        assert 0.0 <= support_confidence(pairs) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(probs, probs), min_size=1, max_size=5),
           probs)
    def test_adding_good_sensor_never_hurts(self, pairs, p):
        base = support_confidence(pairs)
        q = p * 0.5  # strictly better than uninformative
        assert support_confidence(pairs + [(p, q)]) >= base - 1e-12


class TestLatticeInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(inner_rects(), min_size=0, max_size=6))
    def test_structural_invariants(self, rects):
        lattice = RegionLattice(rects, UNIVERSE)
        lattice.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(inner_rects(), min_size=1, max_size=6))
    def test_components_partition_inputs(self, rects):
        lattice = RegionLattice(rects, UNIVERSE)
        components = lattice.components()
        union = set()
        for component in components:
            assert not (union & component)
            union |= component
        assert union == set(range(len(rects)))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(inner_rects(), min_size=1, max_size=5))
    def test_minimal_regions_contain_no_other_node(self, rects):
        lattice = RegionLattice(rects, UNIVERSE)
        region_rects = [n.rect for n in lattice.region_nodes()]
        for node in lattice.parents_of_bottom():
            for other in region_rects:
                if other == node.rect:
                    continue
                contained = node.rect.contains_rect(other) and \
                    node.rect.area > other.area + 1e-9
                assert not contained
