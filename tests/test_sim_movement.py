"""Tests for the clock and the person-movement model."""

import pytest

from repro.errors import SimulationError
from repro.sim import MovementModel, SimClock, siebel_floor


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now() == 5.0

    def test_callable_protocol(self):
        clock = SimClock(start=3.0)
        assert clock() == 3.0

    def test_no_negative_advance(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1.0)

    def test_no_backwards_set(self):
        clock = SimClock(start=10.0)
        with pytest.raises(SimulationError):
            clock.set_time(5.0)
        clock.set_time(20.0)
        assert clock.now() == 20.0


class TestMovement:
    @pytest.fixture
    def model(self) -> MovementModel:
        return MovementModel(siebel_floor(), seed=7,
                             dwell_range=(1.0, 2.0))

    def test_add_person_at_room_center(self, model):
        person = model.add_person("alice", start_region="SC/3/3105")
        assert person.region == "SC/3/3105"
        assert person.position.almost_equals(
            model.world.canonical_mbr("SC/3/3105").center)

    def test_unknown_start_region_rejected(self, model):
        with pytest.raises(SimulationError):
            model.add_person("alice", start_region="SC/3/nope")

    def test_unknown_person_rejected(self, model):
        with pytest.raises(SimulationError):
            model.person("ghost")

    def test_positions_stay_inside_the_floor(self, model):
        model.add_person("alice")
        model.add_person("bob")
        floor = model.world.canonical_mbr("SC/3")
        now = 0.0
        for _ in range(300):
            now += 1.0
            model.step(now, 1.0)
            for person in model.people:
                assert floor.contains_point(person.position)

    def test_people_actually_move(self, model):
        person = model.add_person("alice", start_region="SC/3/3105")
        start = person.position
        now = 0.0
        moved = False
        for _ in range(120):
            now += 1.0
            model.step(now, 1.0)
            if person.position.distance_to(start) > 1.0:
                moved = True
                break
        assert moved

    def test_region_tracks_position(self, model):
        model.add_person("alice")
        now = 0.0
        for _ in range(300):
            now += 1.0
            model.step(now, 1.0)
            for person in model.people:
                region_mbr = model.world.canonical_mbr(person.region)
                # The person's claimed region contains them (tolerating
                # the door sill, which sits on the boundary).
                assert region_mbr.expanded(1.0).contains_point(
                    person.position)

    def test_speed_limit_respected(self, model):
        person = model.add_person("alice")
        now = 0.0
        previous = person.position
        for _ in range(200):
            now += 1.0
            model.step(now, 1.0)
            step_distance = person.position.distance_to(previous)
            assert step_distance <= person.speed + 1e-6
            previous = person.position

    def test_deterministic_given_seed(self):
        world = siebel_floor()
        runs = []
        for _ in range(2):
            model = MovementModel(world, seed=99, dwell_range=(1.0, 2.0))
            person = model.add_person("alice")
            now = 0.0
            for _ in range(100):
                now += 1.0
                model.step(now, 1.0)
            runs.append((person.position, person.region))
        assert runs[0][0].almost_equals(runs[1][0])
        assert runs[0][1] == runs[1][1]

    def test_invalid_dt_rejected(self, model):
        model.add_person("alice")
        with pytest.raises(SimulationError):
            model.step(1.0, 0.0)

    def test_badge_carrying_sampled(self):
        model = MovementModel(siebel_floor(), seed=1,
                              badge_carry_probability=0.0)
        person = model.add_person("alice")
        assert not person.carrying_badge
        model2 = MovementModel(siebel_floor(), seed=1,
                               badge_carry_probability=1.0)
        person2 = model2.add_person("bob")
        assert person2.carrying_badge
