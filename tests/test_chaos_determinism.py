"""Property-based determinism tests for the fault subsystem.

For *arbitrary* seeds and injector stacks, two identically-built
FaultPlans fed an identical reading stream must produce identical
injection traces, identical reports and identical surviving readings —
the foundation the chaos suite's reproducibility guarantee rests on.
"""

from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.geometry import Point, Rect
from repro.pipeline import PipelineReading
from repro.sensors import ReadingSink

SENSORS = ("S-0", "S-1", "S-2")
OBJECTS = ("obj-0", "obj-1", "obj-2", "obj-3")


class CollectingSink(ReadingSink):
    """Terminal sink: records everything that survives the chain."""

    def __init__(self) -> None:
        self.readings: List[PipelineReading] = []

    def submit(self, reading: PipelineReading) -> bool:
        self.readings.append(reading)
        return True


def _stream(n: int = 120) -> List[PipelineReading]:
    readings = []
    for i in range(n):
        center = Point(10.0 + i % 7, 20.0 + i % 5)
        readings.append(PipelineReading(
            sensor_id=SENSORS[i % len(SENSORS)],
            glob_prefix="SC/3",
            sensor_type="Test",
            object_id=OBJECTS[i % len(OBJECTS)],
            rect=Rect.from_center(center, 2.0),
            detection_time=float(i),
            location=center,
            detection_radius=2.0,
        ))
    return readings


@st.composite
def injector_stacks(draw):
    """A list of (kind, params) specs FaultPlan builders understand."""
    kinds = st.sampled_from(
        ["drop", "duplicate", "delay", "reorder", "corrupt", "flapping",
         "clock_skew"])
    rate = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    specs = []
    for i in range(draw(st.integers(min_value=1, max_value=5))):
        kind = draw(kinds)
        if kind == "drop":
            params = {"rate": draw(rate)}
        elif kind == "duplicate":
            params = {"rate": draw(rate),
                      "copies": draw(st.integers(1, 3))}
        elif kind == "delay":
            params = {"rate": draw(rate),
                      "delay": draw(st.floats(0.5, 10.0))}
        elif kind == "reorder":
            params = {"window_size": draw(st.integers(2, 6))}
        elif kind == "corrupt":
            params = {"rate": draw(rate),
                      "max_offset": draw(st.floats(0.5, 8.0))}
        elif kind == "flapping":
            params = {"up": draw(st.floats(1.0, 20.0)),
                      "down": draw(st.floats(1.0, 20.0))}
        else:  # clock_skew
            # A zero skew is rejected by the injector ("injects
            # nothing"), so never draw it.
            params = {"skew": draw(
                st.floats(-5.0, 5.0).filter(lambda s: s != 0.0))}
        scope = {}
        if draw(st.booleans()):
            scope["sensors"] = draw(
                st.lists(st.sampled_from(SENSORS), min_size=1,
                         max_size=2, unique=True))
        if draw(st.booleans()):
            scope["objects"] = draw(
                st.lists(st.sampled_from(OBJECTS), min_size=1,
                         max_size=2, unique=True))
        specs.append((kind, params, scope, f"{kind}-{i}"))
    return specs


def _build_and_run(seed: int, specs) -> tuple:
    clock = [0.0]
    sink = CollectingSink()
    plan = FaultPlan(seed, clock=lambda: clock[0])
    for kind, params, scope, name in specs:
        getattr(plan, kind)(**params, **scope, name=name)
    wrapped = plan.wrap_sink(sink)
    for reading in _stream():
        clock[0] = reading.detection_time
        wrapped.submit(reading)
        plan.pump(clock[0])
    plan.flush()
    trace = tuple(plan.trace)
    survivors = tuple(
        (r.sensor_id, r.object_id, repr(r.detection_time),
         repr(r.rect.min_x), repr(r.rect.min_y))
        for r in sink.readings)
    return trace, plan.report().as_text(), survivors


@given(seed=st.integers(min_value=0, max_value=2**63 - 1),
       specs=injector_stacks())
@settings(max_examples=30, deadline=None)
def test_identical_builds_are_byte_identical(seed, specs):
    first = _build_and_run(seed, specs)
    second = _build_and_run(seed, specs)
    assert first[0] == second[0]   # injection trace
    assert first[1] == second[1]   # FaultReport.as_text()
    assert first[2] == second[2]   # surviving readings


@given(seed=st.integers(min_value=0, max_value=2**32),
       rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
       copies=st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None)
def test_drop_duplicate_conservation(seed, rate, copies):
    """Survivors = submitted - dropped + duplicated, exactly."""
    sink = CollectingSink()
    plan = FaultPlan(seed, clock=lambda: 0.0)
    plan.drop(rate)
    plan.duplicate(rate, copies=copies)
    wrapped = plan.wrap_sink(sink)
    n = 120
    for reading in _stream(n):
        wrapped.submit(reading)
    counts = plan.report().as_dict()
    dropped = counts.get("drop", {}).get("dropped", 0)
    duplicated = counts.get("duplicate", {}).get("duplicated", 0)
    assert len(sink.readings) == n - dropped + duplicated


@given(seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=20, deadline=None)
def test_flush_decisions_ignore_attempt_interleaving(seed):
    """Flush-fault decisions hash the reading, not shared RNG state,
    so calling order across worker threads cannot change them."""
    inj_a = FaultPlan(seed).flush_faults(0.5).flush_injectors()[0]
    inj_b = FaultPlan(seed).flush_faults(0.5).flush_injectors()[0]
    readings = _stream(40)

    def decisions(inj, order):
        out = []
        for i in order:
            try:
                inj(readings[i], 1)
                out.append((i, False))
            except Exception:
                out.append((i, True))
        return dict(out)

    forward = decisions(inj_a, range(40))
    backward = decisions(inj_b, reversed(range(40)))
    assert forward == backward
