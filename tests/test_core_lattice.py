"""Tests for the containment lattice (Section 4.1.2, Figures 5-6)."""

import pytest

from repro.core import BOTTOM, TOP, RegionLattice
from repro.errors import FusionError
from repro.geometry import Rect

UNIVERSE = Rect(0.0, 0.0, 500.0, 100.0)


def paper_five_sensor_layout():
    """An arrangement shaped like the paper's Figure 5: S1, S2, S3
    overlapping in a chain (making D, E), S4 inside S3, S5 disjoint."""
    s1 = Rect(10, 10, 60, 60)
    s2 = Rect(40, 20, 110, 70)
    s3 = Rect(90, 10, 180, 80)
    s4 = Rect(120, 30, 150, 60)     # inside S3
    s5 = Rect(300, 20, 360, 70)     # disjoint from everyone
    return [s1, s2, s3, s4, s5]


class TestConstruction:
    def test_single_rect(self):
        lattice = RegionLattice([Rect(0, 0, 10, 10)], UNIVERSE)
        assert len(lattice) == 3  # Top, the rect, Bottom
        parents = lattice.parents_of_bottom()
        assert len(parents) == 1
        assert parents[0].rect == Rect(0, 0, 10, 10)

    def test_empty_input(self):
        lattice = RegionLattice([], UNIVERSE)
        assert lattice.parents_of_bottom() == []

    def test_duplicate_rects_are_interned(self):
        r = Rect(0, 0, 10, 10)
        lattice = RegionLattice([r, r], UNIVERSE)
        node_ids = lattice.sensor_node_ids()
        assert node_ids[0] == node_ids[1]
        assert len(lattice) == 3

    def test_intersections_create_new_nodes(self):
        a = Rect(0, 0, 30, 30)
        b = Rect(20, 20, 50, 50)
        lattice = RegionLattice([a, b], UNIVERSE)
        intersection_ids = lattice.intersection_node_ids()
        assert len(intersection_ids) == 1
        node = lattice.node(intersection_ids[0])
        assert node.rect == Rect(20, 20, 30, 30)
        assert node.sources == frozenset({0, 1})

    def test_triple_intersection_closed(self):
        a = Rect(0, 0, 30, 30)
        b = Rect(10, 0, 40, 30)
        c = Rect(20, 0, 50, 30)
        lattice = RegionLattice([a, b, c], UNIVERSE)
        triple = Rect(20, 0, 30, 30)
        node = lattice.node_for_rect(triple)
        assert node is not None
        assert node.sources == frozenset({0, 1, 2})

    def test_rect_outside_universe_rejected(self):
        with pytest.raises(FusionError):
            RegionLattice([Rect(1000, 1000, 1001, 1001)], UNIVERSE)

    def test_node_cap_enforced(self):
        rects = [Rect(i, 0, i + 50, 50) for i in range(0, 40)]
        with pytest.raises(FusionError):
            RegionLattice(rects, UNIVERSE, max_nodes=20)

    def test_unknown_node_rejected(self):
        lattice = RegionLattice([], UNIVERSE)
        with pytest.raises(FusionError):
            lattice.node("R99")


class TestHasseStructure:
    def test_paper_figure6_shape(self):
        lattice = RegionLattice(paper_five_sensor_layout(), UNIVERSE)
        lattice.check_invariants()
        top = lattice.node(TOP)
        sensor_ids = lattice.sensor_node_ids()
        # S1, S2, S3 and S5 are maximal -> children of Top.  S4 sits
        # inside S3 so it is NOT a child of Top.
        assert set(sensor_ids[:3] + sensor_ids[4:]) <= top.children
        assert sensor_ids[3] not in top.children

    def test_s4_parent_is_s3(self):
        lattice = RegionLattice(paper_five_sensor_layout(), UNIVERSE)
        s3_id = lattice.sensor_node_ids()[2]
        s4_id = lattice.sensor_node_ids()[3]
        assert s3_id in lattice.node(s4_id).parents

    def test_bottom_parents_are_minimal_regions(self):
        lattice = RegionLattice(paper_five_sensor_layout(), UNIVERSE)
        minimal = lattice.parents_of_bottom()
        minimal_ids = {n.node_id for n in minimal}
        # Minimal regions contain no other region.
        for node in minimal:
            assert node.children == {BOTTOM}
        # S5 (disjoint, no intersections) must be minimal.
        assert lattice.sensor_node_ids()[4] in minimal_ids

    def test_sources_are_containing_rects(self):
        rects = paper_five_sensor_layout()
        lattice = RegionLattice(rects, UNIVERSE)
        for node in lattice.region_nodes():
            for i, rect in enumerate(rects):
                if i in node.sources:
                    assert rect.contains_rect(node.rect)
                else:
                    assert not rect.contains_rect(node.rect)

    def test_invariants_on_grids(self):
        rects = [Rect(10 * i, 10 * j, 10 * i + 15, 10 * j + 15)
                 for i in range(3) for j in range(3)]
        lattice = RegionLattice(rects, UNIVERSE)
        lattice.check_invariants()


class TestComponents:
    def test_single_component_when_chained(self):
        rects = paper_five_sensor_layout()[:4]
        lattice = RegionLattice(rects, UNIVERSE)
        assert lattice.components() == [{0, 1, 2, 3}]

    def test_disjoint_rect_is_its_own_component(self):
        lattice = RegionLattice(paper_five_sensor_layout(), UNIVERSE)
        components = lattice.components()
        assert len(components) == 2
        assert {4} in components

    def test_touching_rects_are_not_reinforcing(self):
        # Zero-area intersection does not connect components.
        a = Rect(0, 0, 10, 10)
        b = Rect(10, 0, 20, 10)
        lattice = RegionLattice([a, b], UNIVERSE)
        assert len(lattice.components()) == 2

    def test_empty_components(self):
        assert RegionLattice([], UNIVERSE).components() == []
