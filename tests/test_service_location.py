"""Tests for the Location Service (Section 4) over a deterministic feed."""

import pytest

from repro.core import ProbabilityBucket
from repro.errors import PrivacyError, ServiceError, UnknownObjectError
from repro.geometry import Point, Rect
from repro.sensors import (
    CardReaderAdapter,
    RfBadgeAdapter,
    UbisenseAdapter,
)
from repro.service import DEPTH_FLOOR, LocationService, PrivacyPolicy
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    """A service over the Siebel floor with three adapters, fed by hand."""
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-18", "SC/3/3105", frame="").attach(db)
    rf = RfBadgeAdapter("RF-12", "SC/3/3105", Point(170, 20),
                        frame="").attach(db)
    card = CardReaderAdapter("Card-3105", "SC/3/3105", frame="").attach(db)
    return world, db, clock, service, ubi, rf, card


class TestLocate:
    def test_unknown_object(self, rig):
        _, _, _, service, *_ = rig
        with pytest.raises(UnknownObjectError):
            service.locate("nobody")

    def test_single_sensor_locate(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        estimate = service.locate("alice")
        assert estimate.symbolic == "SC/3/3105"
        assert estimate.rect.contains_point(Point(150, 20))
        assert estimate.probability > 0.5

    def test_reinforcement_bumps_bucket(self, rig):
        _, _, clock, service, ubi, rf, card = rig
        rf.badge_sighting("alice", 0.0)
        clock.advance(1.0)
        weak = service.locate("alice")
        ubi.tag_sighting("alice", Point(165, 18), 1.0)
        card.swipe("alice", 1.0)
        strong = service.locate("alice")
        assert strong.probability > weak.probability
        assert set(strong.sources) == {"Ubi-18", "RF-12", "Card-3105"}

    def test_stale_readings_expire(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(10.0)  # past the 3 s Ubisense TTL
        with pytest.raises(UnknownObjectError):
            service.locate("alice")

    def test_temporal_degradation_lowers_confidence(self, rig):
        _, _, clock, service, _, rf, _ = rig
        rf.badge_sighting("alice", 0.0)
        clock.advance(1.0)
        fresh = service.locate("alice").probability
        clock.advance(45.0)  # within the 60 s TTL, but decayed
        stale = service.locate("alice").probability
        assert stale < fresh

    def test_explicit_timestamp_query(self, rig):
        _, _, _, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 5.0)
        estimate = service.locate("alice", now=6.0)
        assert estimate.time == 6.0

    def test_locate_symbolic(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        assert service.locate_symbolic("alice") == "SC/3/3105"


class TestPrivacy:
    def test_granularity_coarsens_symbolic_and_rect(self, rig):
        world, db, clock, service, ubi, _, _ = rig
        service.privacy.restrict("alice", DEPTH_FLOOR)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        estimate = service.locate("alice", requester="stranger")
        assert estimate.symbolic == "SC/3"
        assert estimate.rect == world.canonical_mbr("SC/3")

    def test_blocked_object(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        service.privacy.restrict("alice", 0)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        with pytest.raises(PrivacyError):
            service.locate("alice", requester="stranger")

    def test_trusted_requester_sees_room(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        service.privacy.restrict("alice", DEPTH_FLOOR)
        service.privacy.allow("alice", "bob", 99)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        assert service.locate("alice",
                              requester="bob").symbolic == "SC/3/3105"


class TestRegionQueries:
    def test_confidence_in_region(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        assert service.confidence_in_region("alice", "SC/3/3105") > 0.5
        assert service.confidence_in_region("alice", "SC/3/3110") == 0.0

    def test_probability_in_region(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        inside = service.probability_in_region("alice", "SC/3/3105")
        outside = service.probability_in_region("alice", "SC/3/3110")
        assert inside > outside

    def test_objects_in_region(self, rig):
        _, _, clock, service, ubi, _, card = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        card.swipe("bob", 0.0)
        clock.advance(1.0)
        found = service.objects_in_region("SC/3/3105")
        names = [object_id for object_id, _ in found]
        assert "alice" in names
        assert "bob" in names

    def test_objects_in_region_threshold(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        assert service.objects_in_region("SC/3/3105",
                                         min_confidence=0.999) == []

    def test_nearest_entities_with_properties(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        found = service.nearest_entities("alice", count=1,
                                         object_type="Workstation")
        assert found[0][0] == "SC/3/3105/workstation1"


class TestRelationsThroughService:
    def test_proximity(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        ubi.tag_sighting("bob", Point(152, 20), 0.0)
        ubi.tag_sighting("carol", Point(370, 90), 0.0)
        clock.advance(1.0)
        assert service.proximity("alice", "bob", threshold=10.0).holds
        assert not service.proximity("alice", "carol",
                                     threshold=10.0).holds

    def test_colocation(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        ubi.tag_sighting("bob", Point(180, 30), 0.0)
        clock.advance(1.0)
        assert service.colocation("alice", "bob",
                                  granularity_depth=3).holds

    def test_containment(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        clock.advance(1.0)
        assert service.containment("alice", "SC/3/3105").holds

    def test_distance_between(self, rig):
        _, _, clock, service, ubi, _, _ = rig
        ubi.tag_sighting("alice", Point(150, 20), 0.0)
        ubi.tag_sighting("bob", Point(160, 20), 0.0)
        clock.advance(1.0)
        assert service.distance_between("alice", "bob") == \
            pytest.approx(10.0, abs=0.5)


class TestClassifier:
    def test_classifier_built_from_deployed_sensors(self, rig):
        _, _, _, service, *_ = rig
        classifier = service.classifier()
        assert len(classifier.boundaries) == 3

    def test_no_sensors_rejected(self):
        db = SpatialDatabase(siebel_floor())
        service = LocationService(db)
        with pytest.raises(ServiceError):
            service.classifier()

    def test_grade(self, rig):
        _, _, _, service, *_ = rig
        assert service.grade(0.01) is ProbabilityBucket.LOW
        assert service.grade(1.0) is ProbabilityBucket.VERY_HIGH
