"""Tests for Anywhere Instant Messaging (Section 8.2)."""

import pytest

from repro.apps import AnywhereIM
from repro.core import ProbabilityBucket
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    im = AnywhereIM(service)
    return clock, service, ubi, im


class TestRouting:
    def test_delivered_to_nearest_display(self, rig):
        clock, service, ubi, im = rig
        im.add_buddy("bob", "alice")
        # bob is in the HCILab near its display.
        ubi.tag_sighting("bob", Point(290, 5), 0.0)
        clock.advance(1.0)
        delivery = im.send("alice", "bob", "lunch?")
        assert delivery.status == "delivered"
        assert delivery.display == "SC/3/HCILab/display1"
        inbox = im.displays_inboxes[delivery.display]
        assert inbox[0].text == "lunch?"

    def test_non_buddy_blocked(self, rig):
        clock, service, ubi, im = rig
        ubi.tag_sighting("bob", Point(290, 5), 0.0)
        clock.advance(1.0)
        delivery = im.send("stranger", "bob", "hi")
        assert delivery.status == "blocked"
        assert "buddy" in delivery.reason

    def test_unlocatable_recipient_queued(self, rig):
        _, _, _, im = rig
        im.add_buddy("bob", "alice")
        delivery = im.send("alice", "bob", "hello?")
        assert delivery.status == "queued"
        assert im.queued

    def test_flush_queue_after_recipient_appears(self, rig):
        clock, service, ubi, im = rig
        im.add_buddy("bob", "alice")
        im.send("alice", "bob", "hello?")
        ubi.tag_sighting("bob", Point(290, 5), 1.0)
        clock.advance(1.0)
        deliveries = im.flush_queue()
        assert [d.status for d in deliveries] == ["delivered"]
        assert not im.queued


class TestLocationBlocking:
    def test_sender_blocked_in_region(self, rig):
        clock, service, ubi, im = rig
        im.add_buddy("bob", "alice")
        # bob blocks alice's messages while he is in the conference room.
        im.block_at("bob", "alice", "SC/3/ConferenceRoom")
        ubi.tag_sighting("bob", Point(190, 80), 0.0)  # conference room
        clock.advance(1.0)
        delivery = im.send("alice", "bob", "psst")
        assert delivery.status == "blocked"
        assert "ConferenceRoom" in delivery.reason

    def test_block_lifts_outside_region(self, rig):
        clock, service, ubi, im = rig
        im.add_buddy("bob", "alice")
        im.block_at("bob", "alice", "SC/3/ConferenceRoom")
        ubi.tag_sighting("bob", Point(290, 5), 0.0)  # HCILab instead
        clock.advance(1.0)
        assert im.send("alice", "bob", "psst").status == "delivered"


class TestPrivateMessages:
    def test_private_needs_high_accuracy(self, rig):
        clock, service, ubi, im = rig
        im.add_buddy("bob", "alice")
        im.preferences("bob").private_min_bucket = \
            ProbabilityBucket.VERY_HIGH
        ubi.tag_sighting("bob", Point(290, 5), 0.0)
        clock.advance(1.0)
        estimate = service.locate("bob")
        delivery = im.send("alice", "bob", "secret", private=True)
        if estimate.bucket < ProbabilityBucket.VERY_HIGH:
            assert delivery.status == "queued"
            assert "accuracy" in delivery.reason

    def test_private_queued_when_others_nearby(self, rig):
        clock, service, ubi, im = rig
        im.add_buddy("bob", "alice")
        im.preferences("bob").private_min_bucket = ProbabilityBucket.LOW
        ubi.tag_sighting("bob", Point(290, 5), 0.0)
        ubi.tag_sighting("eve", Point(292, 6), 0.0)  # right next to bob
        clock.advance(1.0)
        delivery = im.send("alice", "bob", "secret", private=True)
        assert delivery.status == "queued"
        assert "eve" in delivery.reason

    def test_private_delivered_when_alone(self, rig):
        clock, service, ubi, im = rig
        im.add_buddy("bob", "alice")
        im.preferences("bob").private_min_bucket = ProbabilityBucket.LOW
        ubi.tag_sighting("bob", Point(290, 5), 0.0)
        clock.advance(1.0)
        delivery = im.send("alice", "bob", "secret", private=True)
        assert delivery.status == "delivered"

    def test_log_records_everything(self, rig):
        clock, service, ubi, im = rig
        im.add_buddy("bob", "alice")
        im.send("stranger", "bob", "x")
        im.send("alice", "bob", "y")
        assert len(im.log) == 2
