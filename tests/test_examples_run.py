"""Every shipped example must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("example", EXAMPLES,
                         ids=[e.stem for e in EXAMPLES])
def test_example_runs_clean(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True, text=True, timeout=240)
    assert completed.returncode == 0, completed.stderr[-2000:]
    # Every example narrates what it does.
    assert completed.stdout.strip()


@pytest.mark.parametrize("example", EXAMPLES,
                         ids=[e.stem for e in EXAMPLES])
def test_example_has_module_docstring(example):
    source = example.read_text(encoding="utf-8")
    assert source.lstrip().startswith('"""'), \
        f"{example.name} needs a docstring explaining itself"
    assert "Run:" in source, f"{example.name} should say how to run it"
