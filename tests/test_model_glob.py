"""Unit tests for repro.model.glob — the GLOB representation."""

import pytest

from repro.errors import GlobError
from repro.geometry import Point
from repro.model import Glob


class TestParsing:
    def test_symbolic_point_location(self):
        g = Glob.parse("SC/3/3216/lightswitch1")
        assert g.is_symbolic
        assert g.path == ("SC", "3", "3216", "lightswitch1")
        assert g.leaf == "lightswitch1"
        assert g.prefix == ("SC", "3", "3216")

    def test_coordinate_point_location(self):
        g = Glob.parse("SC/3/3216/(12,3,4)")
        assert g.is_coordinate
        assert g.kind == "point"
        assert g.coordinates == (Point(12, 3, 4),)
        assert g.prefix == ("SC", "3", "3216")

    def test_line_location_from_paper(self):
        g = Glob.parse("SC/3/3216/(1,3),(4,5)")
        assert g.kind == "line"
        assert g.coordinates == (Point(1, 3), Point(4, 5))

    def test_polygon_location_from_paper(self):
        g = Glob.parse("SC/3/(45,12), (45,40), (65,40), (65,12)")
        assert g.kind == "polygon"
        assert len(g.coordinates) == 4
        assert g.path == ("SC", "3")

    def test_negative_and_decimal_coordinates(self):
        g = Glob.parse("B/(-1.5,2.25)")
        assert g.coordinates[0] == Point(-1.5, 2.25)

    def test_two_dimensional_coordinate_gets_zero_height(self):
        assert Glob.parse("B/(3,4)").coordinates[0].z == 0.0

    def test_leading_and_trailing_slashes_tolerated(self):
        assert Glob.parse("/SC/3/") == Glob.parse("SC/3")

    def test_empty_string_rejected(self):
        with pytest.raises(GlobError):
            Glob.parse("")
        with pytest.raises(GlobError):
            Glob.parse("   ")

    def test_symbolic_after_coordinates_rejected(self):
        with pytest.raises(GlobError):
            Glob.parse("SC/(1,2)/room")

    def test_unbalanced_parentheses_rejected(self):
        with pytest.raises(GlobError):
            Glob.parse("SC/(1,2")

    def test_invalid_segment_characters_rejected(self):
        with pytest.raises(GlobError):
            Glob.parse("SC/ro om")


class TestFormatting:
    @pytest.mark.parametrize("text", [
        "SC/3/3216/lightswitch1",
        "SC/3/3216/(12,3,4)",
        "SC/3/3216",
        "CS/Floor3/NetLab",
    ])
    def test_roundtrip(self, text):
        assert Glob.parse(text).format() == text

    def test_polygon_roundtrip_canonicalizes_spacing(self):
        g = Glob.parse("SC/3/(45,12), (45,40)")
        assert g.format() == "SC/3/(45,12)/(45,40)"
        assert Glob.parse(g.format()) == g

    def test_integral_floats_render_without_decimal(self):
        g = Glob(("A",), (Point(1.0, 2.0),))
        assert g.format() == "A/(1,2)"

    def test_str_matches_format(self):
        g = Glob.parse("SC/3")
        assert str(g) == g.format()


class TestHierarchy:
    def test_parent_of_symbolic(self):
        assert Glob.parse("SC/3/3216").parent() == Glob.parse("SC/3")

    def test_parent_of_coordinate_drops_coordinates(self):
        assert Glob.parse("SC/3/(1,2)").parent() == Glob.parse("SC/3")

    def test_root_has_no_parent(self):
        with pytest.raises(GlobError):
            Glob.parse("SC").parent()

    def test_ancestors_outermost_first(self):
        ancestors = Glob.parse("SC/3/3216/light").ancestors()
        assert [str(a) for a in ancestors] == ["SC", "SC/3", "SC/3/3216"]

    def test_child(self):
        assert str(Glob.parse("SC/3").child("3216")) == "SC/3/3216"

    def test_child_of_coordinate_rejected(self):
        with pytest.raises(GlobError):
            Glob.parse("SC/(1,2)").child("x")

    def test_is_within(self):
        inner = Glob.parse("SC/3/3216/light1")
        assert inner.is_within(Glob.parse("SC"))
        assert inner.is_within(Glob.parse("SC/3"))
        assert inner.is_within(Glob.parse("SC/3/3216"))
        assert not inner.is_within(Glob.parse("SC/2"))
        assert not inner.is_within(Glob.parse("CS"))

    def test_depth(self):
        assert Glob.parse("SC/3/3216").depth == 3

    def test_with_coordinates(self):
        g = Glob.parse("SC/3").with_coordinates([Point(1, 1)])
        assert g.is_coordinate
        assert g.path == ("SC", "3")


class TestPrivacyTruncation:
    def test_truncate_room_to_floor(self):
        g = Glob.parse("SC/3/3216")
        assert str(g.truncated_to_depth(2)) == "SC/3"

    def test_truncate_beyond_depth_is_identity(self):
        g = Glob.parse("SC/3")
        assert g.truncated_to_depth(10) == g

    def test_truncate_coordinate_glob_drops_coordinates(self):
        g = Glob.parse("SC/3/3216/(1,2)")
        assert str(g.truncated_to_depth(3)) == "SC/3/3216"

    def test_zero_depth_rejected(self):
        with pytest.raises(GlobError):
            Glob.parse("SC/3").truncated_to_depth(0)
