"""Unit tests for repro.geometry.polygon."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Polygon, Rect


def square(size: float = 10.0, x0: float = 0.0, y0: float = 0.0) -> Polygon:
    return Polygon([Point(x0, y0), Point(x0 + size, y0),
                    Point(x0 + size, y0 + size), Point(x0, y0 + size)])


class TestConstruction:
    def test_too_few_vertices_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_collinear_vertices_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_from_rect(self):
        p = Polygon.from_rect(Rect(0, 0, 4, 3))
        assert p.area == 12.0

    def test_regular_polygon_area_converges_to_circle(self):
        p = Polygon.regular(Point(0, 0), 10.0, 64)
        assert math.isclose(p.area, math.pi * 100.0, rel_tol=0.01)

    def test_regular_needs_three_sides(self):
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), 1.0, 2)


class TestMeasures:
    def test_area_independent_of_winding(self):
        ccw = square()
        cw = Polygon(list(reversed(ccw.vertices)))
        assert ccw.area == cw.area == 100.0
        assert ccw.signed_area() == -cw.signed_area()

    def test_centroid_of_square(self):
        assert square().centroid.almost_equals(Point(5, 5))

    def test_mbr(self):
        p = Polygon([Point(0, 0), Point(10, 2), Point(4, 8)])
        assert p.mbr == Rect(0, 0, 10, 8)

    def test_l_shape_area(self):
        # An L: 10x10 square minus its 5x5 top-right quadrant.
        l_shape = Polygon([
            Point(0, 0), Point(10, 0), Point(10, 5), Point(5, 5),
            Point(5, 10), Point(0, 10),
        ])
        assert l_shape.area == 75.0


class TestContainsPoint:
    def test_interior(self):
        assert square().contains_point(Point(5, 5))

    def test_boundary_counts_as_inside(self):
        assert square().contains_point(Point(0, 5))
        assert square().contains_point(Point(10, 10))

    def test_outside(self):
        assert not square().contains_point(Point(11, 5))
        assert not square().contains_point(Point(-0.001, 5))

    def test_l_shape_notch_is_outside(self):
        l_shape = Polygon([
            Point(0, 0), Point(10, 0), Point(10, 5), Point(5, 5),
            Point(5, 10), Point(0, 10),
        ])
        assert not l_shape.contains_point(Point(8, 8))  # in the notch
        assert l_shape.contains_point(Point(2, 8))


class TestPolygonRelations:
    def test_contains_polygon(self):
        assert square(10).contains_polygon(square(4, 2, 2))
        assert not square(4, 2, 2).contains_polygon(square(10))

    def test_intersects_polygon_overlap(self):
        assert square(10).intersects_polygon(square(10, 5, 5))

    def test_intersects_polygon_disjoint(self):
        assert not square(2).intersects_polygon(square(2, 10, 10))

    def test_shares_edge_with_adjacent(self):
        left = square(10)
        right = square(10, 10, 0)
        assert left.shares_edge_with(right)

    def test_no_shared_edge_when_apart(self):
        assert not square(10).shares_edge_with(square(10, 11, 0))


class TestClipping:
    def test_clip_fully_inside_returns_same_area(self):
        clipped = square(4, 2, 2).clipped_to_rect(Rect(0, 0, 10, 10))
        assert clipped is not None
        assert math.isclose(clipped.area, 16.0)

    def test_clip_partial(self):
        clipped = square(10).clipped_to_rect(Rect(5, 5, 20, 20))
        assert clipped is not None
        assert math.isclose(clipped.area, 25.0)

    def test_clip_outside_returns_none(self):
        assert square(2).clipped_to_rect(Rect(10, 10, 20, 20)) is None

    def test_clip_triangle_fully_covering_window(self):
        # The hypotenuse x + y = 10 only grazes the window's far corner,
        # so the whole 5x5 window survives.
        tri = Polygon([Point(0, 0), Point(10, 0), Point(0, 10)])
        clipped = tri.clipped_to_rect(Rect(0, 0, 5, 5))
        assert clipped is not None
        assert math.isclose(clipped.area, 25.0, rel_tol=1e-9)

    def test_clip_triangle_cut_by_window(self):
        # A window pushed into the hypotenuse: the far corner triangle
        # (4,6)-(5,5)-(6,4) region outside x+y<=10 is cut away.
        tri = Polygon([Point(0, 0), Point(10, 0), Point(0, 10)])
        clipped = tri.clipped_to_rect(Rect(4, 4, 6, 6))
        assert clipped is not None
        assert math.isclose(clipped.area, 2.0, rel_tol=1e-9)

    def test_intersection_area_with_rect(self):
        assert math.isclose(
            square(10).intersection_area_with_rect(Rect(5, 0, 15, 10)),
            50.0)

    def test_mbr_area_at_least_polygon_area(self):
        tri = Polygon([Point(0, 0), Point(10, 0), Point(0, 10)])
        assert tri.mbr.area >= tri.area
