"""Tests for building construction (paper floor, Siebel floor, generator)."""

import pytest

from repro.errors import SimulationError
from repro.geometry import Rect
from repro.model import EntityType, PassageKind
from repro.sim import generate_office_floor, paper_floor, siebel_floor


class TestPaperFloor:
    def test_table1_coordinates_exact(self):
        world = paper_floor()
        assert world.canonical_mbr("CS/Floor3/3105") == \
            Rect(330, 0, 350, 30)
        assert world.canonical_mbr("CS/Floor3/NetLab") == \
            Rect(360, 0, 380, 30)
        assert world.canonical_mbr("CS/Floor3/LabCorridor") == \
            Rect(310, 0, 330, 30)

    def test_floor_is_500_by_100(self):
        world = paper_floor()
        assert world.canonical_mbr("CS/Floor3") == Rect(0, 0, 500, 100)

    def test_types(self):
        world = paper_floor()
        assert world.get("CS/Floor3").entity_type is EntityType.FLOOR
        assert world.get("CS/Floor3/3105").entity_type is EntityType.ROOM
        assert world.get(
            "CS/Floor3/LabCorridor").entity_type is EntityType.CORRIDOR

    def test_3105_door_is_restricted(self):
        world = paper_floor()
        doors = world.doors_between("CS/Floor3/3105",
                                    "CS/Floor3/Corridor3")
        assert doors[0].kind is PassageKind.RESTRICTED


class TestSiebelFloor:
    def test_rooms_have_own_frames(self):
        world = siebel_floor()
        assert world.frames.knows("SC/3/3105")
        assert world.frames.knows("SC/3/ConferenceRoom")

    def test_room_frame_origin_at_sw_corner(self):
        world = siebel_floor()
        from repro.geometry import Point
        canonical = world.frames.convert_point(Point(0, 0),
                                               "SC/3/3105", "")
        assert canonical.almost_equals(Point(140, 0))

    def test_static_objects_present(self):
        world = siebel_floor()
        displays = world.entities_of_type(EntityType.DISPLAY)
        workstations = world.entities_of_type(EntityType.WORKSTATION)
        assert len(displays) >= 3
        assert len(workstations) >= 2

    def test_every_room_has_a_door_to_the_corridor(self):
        world = siebel_floor()
        for room in world.entities_of_type(EntityType.ROOM):
            doors = world.doors_between(room.glob, "SC/3/Corridor")
            assert doors, str(room.glob)

    def test_restricted_rooms(self):
        world = siebel_floor()
        locked = world.doors_between("SC/3/3105", "SC/3/Corridor")[0]
        open_door = world.doors_between("SC/3/3102", "SC/3/Corridor")[0]
        assert locked.kind is PassageKind.RESTRICTED
        assert open_door.kind is PassageKind.FREE

    def test_usage_regions_attached(self):
        world = siebel_floor()
        entity = world.get("SC/3/3216/display1")
        assert isinstance(entity.properties["usage_region"], Rect)


class TestGenerator:
    def test_room_count(self):
        world = generate_office_floor(rooms_per_side=4)
        rooms = world.entities_of_type(EntityType.ROOM)
        assert len(rooms) == 8

    def test_dimensions_scale(self):
        world = generate_office_floor(rooms_per_side=10, room_width=20.0)
        assert world.canonical_mbr("GEN/1").width == 200.0

    def test_every_room_has_a_door(self):
        world = generate_office_floor(rooms_per_side=3)
        for room in world.entities_of_type(EntityType.ROOM):
            assert world.doors_of(room.glob)

    def test_invalid_count_rejected(self):
        with pytest.raises(SimulationError):
            generate_office_floor(rooms_per_side=0)

    def test_custom_prefix(self):
        world = generate_office_floor(rooms_per_side=2, prefix="X/9")
        assert world.has("X/9/Corridor")
