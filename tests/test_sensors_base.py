"""Tests for the adapter framework (Section 6)."""

import pytest

from repro.core import SensorSpec
from repro.errors import CalibrationError, SensorError
from repro.geometry import Point, Rect
from repro.sensors import AdapterRegistry, LocationAdapter, default_registry
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase


class ProbeAdapter(LocationAdapter):
    ADAPTER_TYPE = "Probe"

    def see(self, object_id: str, position: Point, time: float):
        return self._emit_circle(object_id, position, 5.0, time)


@pytest.fixture
def db() -> SpatialDatabase:
    return SpatialDatabase(siebel_floor())


@pytest.fixture
def spec() -> SensorSpec:
    return SensorSpec("Probe", 1.0, 0.9, 0.05, resolution=5.0,
                      time_to_live=30.0)


class TestAttachment:
    def test_attach_registers_metadata(self, db, spec):
        adapter = ProbeAdapter("P-1", "SC/3/3105", spec, frame="")
        adapter.attach(db)
        row = db.sensor_row("P-1")
        assert row["sensor_type"] == "Probe"
        assert row["time_to_live"] == 30.0
        assert row["confidence"] == pytest.approx(90.0)

    def test_double_attach_rejected(self, db, spec):
        adapter = ProbeAdapter("P-1", "SC/3/3105", spec, frame="")
        adapter.attach(db)
        with pytest.raises(SensorError):
            adapter.attach(db)

    def test_unknown_frame_rejected(self, db, spec):
        adapter = ProbeAdapter("P-1", "SC/3/9999", spec)  # frame = prefix
        with pytest.raises(CalibrationError):
            adapter.attach(db)

    def test_emit_before_attach_rejected(self, spec):
        adapter = ProbeAdapter("P-1", "SC/3/3105", spec, frame="")
        with pytest.raises(SensorError):
            adapter.see("tom", Point(0, 0), 0.0)

    def test_empty_id_rejected(self, spec):
        with pytest.raises(SensorError):
            ProbeAdapter("", "SC/3/3105", spec)


class TestEmission:
    def test_reading_lands_in_database(self, db, spec):
        adapter = ProbeAdapter("P-1", "SC/3/3105", spec, frame="")
        adapter.attach(db)
        adapter.see("tom", Point(150, 20), 1.0)
        rows = db.readings_for("tom", now=2.0)
        assert len(rows) == 1
        assert rows[0]["rect"] == Rect(145, 15, 155, 25)

    def test_frame_conversion_applied(self, db, spec):
        # Calibrated in room 3105's frame (origin at 140, 0).
        adapter = ProbeAdapter("P-1", "SC/3/3105", spec,
                               frame="SC/3/3105")
        adapter.attach(db)
        adapter.see("tom", Point(10, 20), 1.0)
        row = db.readings_for("tom", now=2.0)[0]
        assert row["location"].almost_equals(Point(150, 20))

    def test_event_filter_vetoes(self, db, spec):
        adapter = ProbeAdapter("P-1", "SC/3/3105", spec, frame="")
        adapter.attach(db)
        adapter.set_event_filter(lambda obj, rect, t: obj != "ghost")
        assert adapter.see("ghost", Point(150, 20), 1.0) is None
        assert adapter.see("tom", Point(150, 20), 1.0) is not None

    def test_rate_limit(self, db, spec):
        adapter = ProbeAdapter("P-1", "SC/3/3105", spec, frame="")
        adapter.attach(db)
        adapter.set_min_interval(5.0)
        assert adapter.see("tom", Point(150, 20), 0.0) is not None
        assert adapter.see("tom", Point(151, 20), 2.0) is None
        assert adapter.see("tom", Point(152, 20), 5.0) is not None

    def test_rate_limit_is_per_object(self, db, spec):
        adapter = ProbeAdapter("P-1", "SC/3/3105", spec, frame="")
        adapter.attach(db)
        adapter.set_min_interval(5.0)
        assert adapter.see("tom", Point(150, 20), 0.0) is not None
        assert adapter.see("ann", Point(150, 20), 1.0) is not None

    def test_negative_interval_rejected(self, db, spec):
        adapter = ProbeAdapter("P-1", "SC/3/3105", spec, frame="")
        with pytest.raises(SensorError):
            adapter.set_min_interval(-1.0)


class TestRegistry:
    def test_register_and_create(self, db):
        registry = AdapterRegistry()
        registry.register(ProbeAdapter)
        spec = SensorSpec("Probe", 1.0, 0.9, 0.05, resolution=5.0)
        adapter = registry.create("Probe", "P-9", "SC/3/3105", spec)
        assert isinstance(adapter, ProbeAdapter)
        assert adapter.adapter_id == "P-9"

    def test_duplicate_type_rejected(self):
        registry = AdapterRegistry()
        registry.register(ProbeAdapter)
        with pytest.raises(SensorError):
            registry.register(ProbeAdapter)

    def test_unknown_type_rejected(self):
        with pytest.raises(SensorError):
            AdapterRegistry().create("NoSuch")

    def test_default_registry_has_paper_technologies(self):
        types = default_registry().types()
        for expected in ("Ubisense", "RF", "Biometric", "CardReader",
                         "GPS", "Bluetooth", "DesktopLogin"):
            assert expected in types
