"""Tests for RCC-8 relations (Section 4.6.1)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Polygon, Rect
from repro.reasoning import RCC8, rcc8_polygons, rcc8_rects, relate


class TestRectRelations:
    @pytest.mark.parametrize("a,b,expected", [
        (Rect(0, 0, 10, 10), Rect(0, 0, 10, 10), RCC8.EQ),
        (Rect(0, 0, 10, 10), Rect(20, 0, 30, 10), RCC8.DC),
        (Rect(0, 0, 10, 10), Rect(10, 0, 20, 10), RCC8.EC),
        (Rect(0, 0, 10, 10), Rect(10, 10, 20, 20), RCC8.EC),  # corner
        (Rect(0, 0, 10, 10), Rect(5, 5, 15, 15), RCC8.PO),
        (Rect(2, 2, 8, 8), Rect(0, 0, 10, 10), RCC8.NTPP),
        (Rect(0, 2, 8, 8), Rect(0, 0, 10, 10), RCC8.TPP),
        (Rect(0, 0, 10, 10), Rect(2, 2, 8, 8), RCC8.NTPPI),
        (Rect(0, 0, 10, 10), Rect(0, 2, 8, 8), RCC8.TPPI),
    ])
    def test_cases(self, a, b, expected):
        assert rcc8_rects(a, b) is expected

    def test_inverse_consistency(self):
        pairs = [
            (Rect(0, 0, 10, 10), Rect(2, 2, 8, 8)),
            (Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)),
            (Rect(0, 0, 10, 10), Rect(10, 0, 20, 10)),
            (Rect(0, 0, 10, 10), Rect(50, 50, 60, 60)),
        ]
        for a, b in pairs:
            assert rcc8_rects(a, b).inverse is rcc8_rects(b, a)

    def test_relation_predicates(self):
        assert RCC8.NTPP.is_proper_part
        assert RCC8.TPP.is_proper_part
        assert not RCC8.NTPPI.is_proper_part
        assert RCC8.EC.is_connected
        assert not RCC8.DC.is_connected


rect_strategy = st.builds(
    lambda x, y, w, h: Rect(x, y, x + w, y + h),
    st.floats(0, 50, allow_nan=False), st.floats(0, 50, allow_nan=False),
    st.floats(1, 30, allow_nan=False), st.floats(1, 30, allow_nan=False),
)


class TestExactlyOneRelation:
    @settings(max_examples=100, deadline=None)
    @given(rect_strategy, rect_strategy)
    def test_jointly_exhaustive_pairwise_disjoint(self, a, b):
        """Any two regions are related by exactly one RCC-8 relation."""
        relation = rcc8_rects(a, b)
        assert relation in RCC8
        # The result is a function — recomputing gives the same answer,
        # and the inverse of the inverse is the original.
        assert rcc8_rects(a, b) is relation
        assert relation.inverse.inverse is relation


class TestPolygonRelations:
    def square(self, size=10.0, x0=0.0, y0=0.0):
        return Polygon([Point(x0, y0), Point(x0 + size, y0),
                        Point(x0 + size, y0 + size), Point(x0, y0 + size)])

    def test_identical_polygons_eq(self):
        assert rcc8_polygons(self.square(), self.square()) is RCC8.EQ

    def test_shared_wall_is_ec(self):
        assert rcc8_polygons(self.square(10),
                             self.square(10, 10, 0)) is RCC8.EC

    def test_overlap_is_po(self):
        assert rcc8_polygons(self.square(10),
                             self.square(10, 5, 5)) is RCC8.PO

    def test_nested_is_ntpp(self):
        assert rcc8_polygons(self.square(4, 3, 3),
                             self.square(10)) is RCC8.NTPP

    def test_far_apart_is_dc(self):
        assert rcc8_polygons(self.square(5),
                             self.square(5, 50, 50)) is RCC8.DC

    def test_room_sharing_wall_with_floor_is_tpp(self):
        # Regression: a room flush against its floor's boundary shares
        # collinear wall segments with it; that is containment-with-
        # boundary-contact (TPP), not partial overlap.
        floor = self.square(100)
        corner_room = self.square(20)          # shares two floor walls
        edge_room = Polygon([Point(40, 0), Point(60, 0),
                             Point(60, 20), Point(40, 20)])
        assert rcc8_polygons(corner_room, floor) is RCC8.TPP
        assert rcc8_polygons(edge_room, floor) is RCC8.TPP
        assert rcc8_polygons(floor, corner_room) is RCC8.TPPI

    def test_interior_room_is_ntpp_of_floor(self):
        floor = self.square(100)
        inner = self.square(20, 30, 30)
        assert rcc8_polygons(inner, floor) is RCC8.NTPP

    def test_world_model_room_floor_relation(self):
        from repro.reasoning import region_rcc8
        from repro.sim import siebel_floor
        world = siebel_floor()
        # Every Siebel room touches the floor's south/north boundary.
        assert region_rcc8(world, "SC/3/3105", "SC/3") is RCC8.TPP
        # The corridor is interior to the floor.
        assert region_rcc8(world, "SC/3/Corridor", "SC/3") is RCC8.TPP

    def test_l_shapes_with_overlapping_mbrs_are_dc(self):
        # The refine pass: MBRs overlap, actual regions don't touch.
        l1 = Polygon([Point(0, 0), Point(10, 0), Point(10, 2),
                      Point(2, 2), Point(2, 10), Point(0, 10)])
        l2 = Polygon([Point(4, 4), Point(12, 4), Point(12, 12),
                      Point(10, 12), Point(10, 6), Point(4, 6)])
        assert rcc8_rects(l1.mbr, l2.mbr) is not RCC8.DC
        assert rcc8_polygons(l1, l2) is RCC8.DC


class TestRelate:
    def test_mbr_only(self):
        assert relate(Rect(0, 0, 5, 5), Rect(10, 10, 20, 20)) is RCC8.DC

    def test_refinement_changes_coarse_answer(self):
        l1 = Polygon([Point(0, 0), Point(10, 0), Point(10, 2),
                      Point(2, 2), Point(2, 10), Point(0, 10)])
        l2 = Polygon([Point(4, 4), Point(12, 4), Point(12, 12),
                      Point(10, 12), Point(10, 6), Point(4, 6)])
        refined = relate(l1.mbr, l2.mbr, l1, l2)
        assert refined is RCC8.DC

    def test_dc_mbrs_skip_refinement(self):
        square = Polygon.from_rect(Rect(0, 0, 5, 5))
        other = Polygon.from_rect(Rect(50, 50, 60, 60))
        assert relate(square.mbr, other.mbr, square, other) is RCC8.DC
