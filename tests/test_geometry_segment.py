"""Unit tests for repro.geometry.segment."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Segment


class TestConstruction:
    def test_degenerate_segment_rejected(self):
        with pytest.raises(GeometryError):
            Segment(Point(1, 1), Point(1, 1))

    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == 5.0

    def test_midpoint(self):
        mid = Segment(Point(0, 0), Point(10, 0)).midpoint
        assert mid == Point(5, 0)

    def test_angle(self):
        assert math.isclose(
            Segment(Point(0, 0), Point(0, 5)).angle(), math.pi / 2)


class TestContainsPoint:
    def test_endpoint_is_on_segment(self):
        s = Segment(Point(0, 0), Point(10, 10))
        assert s.contains_point(Point(0, 0))
        assert s.contains_point(Point(10, 10))

    def test_interior_point(self):
        assert Segment(Point(0, 0), Point(10, 10)).contains_point(Point(5, 5))

    def test_collinear_but_beyond_is_out(self):
        assert not Segment(Point(0, 0), Point(10, 10)).contains_point(
            Point(11, 11))

    def test_off_line_point_is_out(self):
        assert not Segment(Point(0, 0), Point(10, 0)).contains_point(
            Point(5, 1))


class TestIntersection:
    def test_crossing_segments(self):
        a = Segment(Point(0, 0), Point(10, 10))
        b = Segment(Point(0, 10), Point(10, 0))
        assert a.intersects(b)
        crossing = a.intersection_point(b)
        assert crossing is not None
        assert crossing.almost_equals(Point(5, 5))

    def test_touching_at_endpoint(self):
        a = Segment(Point(0, 0), Point(5, 5))
        b = Segment(Point(5, 5), Point(10, 0))
        assert a.intersects(b)

    def test_parallel_disjoint(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(0, 1), Point(10, 1))
        assert not a.intersects(b)
        assert a.intersection_point(b) is None

    def test_collinear_overlap_has_no_unique_point(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(5, 0), Point(15, 0))
        assert a.intersects(b)
        assert a.intersection_point(b) is None

    def test_near_miss(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(5, 0.01), Point(5, 10))
        assert not a.intersects(b)


class TestDistance:
    def test_distance_to_point_perpendicular(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(5, 3)) == 3.0

    def test_distance_clamps_to_endpoints(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(13, 4)) == 5.0

    def test_distance_zero_on_segment(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(4, 0)) == 0.0

    def test_translated(self):
        s = Segment(Point(0, 0), Point(1, 1)).translated(5, 5)
        assert s.start == Point(5, 5)
        assert s.end == Point(6, 6)
