"""Tests for the fusion engine end to end (Sections 4.1-4.4)."""

import pytest

from repro.core import (
    FusionEngine,
    MODE_EQ7,
    MODE_EXACT,
    NormalizedReading,
    ProbabilityClassifier,
    SensorSpec,
    reading_from_coordinate,
    reading_from_region,
)
from repro.errors import FusionError
from repro.geometry import Point, Rect

UNIVERSE = Rect(0.0, 0.0, 500.0, 100.0)


@pytest.fixture
def engine() -> FusionEngine:
    return FusionEngine()


@pytest.fixture
def classifier() -> ProbabilityClassifier:
    return ProbabilityClassifier([0.75, 0.95, 0.99])


def ubi_reading(object_id="tom", x=100.0, y=50.0, t=0.0, moving=False):
    spec = SensorSpec("Ubisense", 0.9, 0.95, 0.05, z_area_scaled=True,
                      resolution=0.5, time_to_live=3.0)
    return reading_from_coordinate("Ubi-1", object_id, spec,
                                   Point(x, y), t, moving=moving)


def rf_reading(object_id="tom", x=100.0, y=50.0, t=0.0, sensor="RF-1",
               moving=False):
    spec = SensorSpec("RF", 0.85, 0.75, 0.25, z_area_scaled=True,
                      resolution=15.0, time_to_live=60.0)
    return reading_from_coordinate(sensor, object_id, spec,
                                   Point(x, y), t, moving=moving)


def room_reading(object_id="tom", t=0.0):
    spec = SensorSpec("Card", 1.0, 0.98, 0.02, time_to_live=10.0)
    return reading_from_region("Card-1", object_id, spec,
                               Rect(90, 40, 140, 90), t)


class TestFuse:
    def test_no_fresh_readings_rejected(self, engine):
        with pytest.raises(FusionError):
            engine.fuse("tom", [], UNIVERSE, 0.0)

    def test_expired_readings_dropped(self, engine):
        reading = ubi_reading(t=0.0)  # TTL 3 s
        with pytest.raises(FusionError):
            engine.fuse("tom", [reading], UNIVERSE, 10.0)

    def test_wrong_object_rejected(self, engine):
        with pytest.raises(FusionError):
            engine.fuse("alice", [ubi_reading(object_id="tom")],
                        UNIVERSE, 0.0)

    def test_single_reading_distribution(self, engine):
        result = engine.fuse("tom", [ubi_reading()], UNIVERSE, 0.0)
        assert result.winning_component == {0}
        assert result.discarded == set()
        minimal = result.minimal_regions()
        assert len(minimal) == 1
        assert 0.0 <= minimal[0].probability <= 1.0
        assert minimal[0].confidence > 0.8

    def test_reinforcing_sensors_share_component(self, engine):
        result = engine.fuse(
            "tom", [ubi_reading(), rf_reading(), room_reading()],
            UNIVERSE, 0.0)
        assert result.winning_component == {0, 1, 2}

    def test_confidence_rises_with_reinforcement(self, engine,
                                                 classifier):
        single = engine.fuse("tom", [rf_reading()], UNIVERSE, 0.0)
        both = engine.fuse("tom", [rf_reading(), ubi_reading()],
                           UNIVERSE, 0.0)
        est_single = engine.point_estimate(single, classifier)
        est_both = engine.point_estimate(both, classifier)
        assert est_both.probability > est_single.probability

    def test_conflict_discards_losing_component(self, engine):
        far = rf_reading(x=400.0, y=50.0, sensor="RF-2")
        result = engine.fuse("tom", [ubi_reading(), rf_reading(), far],
                             UNIVERSE, 0.0)
        assert result.discarded == {2}

    def test_moving_rectangle_wins_conflict(self, engine, classifier):
        stationary = rf_reading(x=100.0)
        moving = rf_reading(x=400.0, sensor="RF-2", moving=True)
        result = engine.fuse("tom", [stationary, moving], UNIVERSE, 0.0)
        estimate = engine.point_estimate(result, classifier)
        assert estimate.rect.contains_point(Point(400, 50))
        assert estimate.moving


class TestPointEstimate:
    def test_estimate_fields(self, engine, classifier):
        result = engine.fuse("tom", [ubi_reading(), rf_reading()],
                             UNIVERSE, 1.0)
        estimate = engine.point_estimate(result, classifier)
        assert estimate.object_id == "tom"
        assert estimate.time == 1.0
        assert set(estimate.sources) == {"Ubi-1", "RF-1"}
        assert 0.0 <= estimate.probability <= 1.0
        assert 0.0 <= estimate.posterior <= 1.0
        assert estimate.bucket is classifier.classify(estimate.probability)

    def test_estimate_picks_intersection_region(self, engine, classifier):
        result = engine.fuse("tom", [ubi_reading(), rf_reading()],
                             UNIVERSE, 0.0)
        estimate = engine.point_estimate(result, classifier)
        # The most-supported minimal region is the Ubisense rect (it
        # lies inside the RF rect, supported by both sensors).
        assert estimate.rect.width == pytest.approx(1.0)

    def test_center_property(self, engine, classifier):
        result = engine.fuse("tom", [ubi_reading(x=100, y=50)],
                             UNIVERSE, 0.0)
        estimate = engine.point_estimate(result, classifier)
        assert estimate.center.almost_equals(Point(100, 50), 1e-9)


class TestRegionQueries:
    def test_confidence_in_containing_region(self, engine):
        result = engine.fuse("tom", [ubi_reading(x=100, y=50)],
                             UNIVERSE, 0.0)
        room = Rect(90, 40, 140, 90)
        elsewhere = Rect(300, 0, 400, 100)
        assert result.confidence_in_region(room) > 0.8
        assert result.confidence_in_region(elsewhere) == 0.0

    def test_partial_overlap_scales_confidence(self, engine):
        result = engine.fuse("tom", [rf_reading(x=100, y=50)],
                             UNIVERSE, 0.0)
        # RF rect spans x in [85, 115]; this region covers the right
        # half only.
        half = Rect(100, 0, 200, 100)
        full = Rect(0, 0, 200, 100)
        assert 0.0 < result.confidence_in_region(half) \
            < result.confidence_in_region(full)

    def test_probability_of_region_modes_agree_on_single_sensor(self):
        reading = room_reading()
        region = Rect(90, 40, 140, 90)
        exact = FusionEngine(mode=MODE_EXACT).fuse(
            "tom", [reading], UNIVERSE, 0.0)
        # Eq. (7) and exact differ only by aU vs (aU - aR) in the
        # denominator for one sensor; both must be sane and close.
        eq7 = FusionEngine(mode=MODE_EQ7).fuse(
            "tom", [reading], UNIVERSE, 0.0)
        p_exact = exact.probability_of_region(region)
        p_eq7 = eq7.probability_of_region(region)
        assert 0.0 < p_eq7 <= p_exact <= 1.0

    def test_region_outside_universe_is_zero(self, engine):
        result = engine.fuse("tom", [ubi_reading()], UNIVERSE, 0.0)
        assert result.probability_of_region(
            Rect(10000, 10000, 10010, 10010)) == 0.0

    def test_normalized_minimal_distribution_sums_to_one(self, engine):
        result = engine.fuse(
            "tom", [ubi_reading(), rf_reading(),
                    rf_reading(x=130, sensor="RF-2")],
            UNIVERSE, 0.0)
        distribution = result.normalized_minimal_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(FusionError):
            FusionEngine(mode="magic")

    def test_exact_is_default(self, engine):
        assert engine.mode == MODE_EXACT
