"""Tests for the mini logic engine (the XSB Prolog stand-in)."""

import pytest

from repro.errors import ReasoningError
from repro.reasoning import (
    SPATIAL_RULES,
    Atom,
    KnowledgeBase,
    Struct,
    Var,
    build_knowledge_base,
    parse_clause,
    parse_query,
    reachable_regions,
    unify,
)
from repro.sim import siebel_floor


class TestParsing:
    def test_fact(self):
        rule = parse_clause("room(r1)")
        assert rule.head == Struct("room", (Atom("r1"),))
        assert rule.body == ()

    def test_rule(self):
        rule = parse_clause("reachable(X, Y) :- ecfp(X, Y)")
        assert rule.head.functor == "reachable"
        assert rule.head.args == (Var("X"), Var("Y"))
        assert len(rule.body) == 1

    def test_rule_with_multiple_goals(self):
        rule = parse_clause("r(X, Y) :- a(X, Z), b(Z, Y)")
        assert len(rule.body) == 2

    def test_quoted_atoms_preserve_slashes(self):
        rule = parse_clause("room('SC/3/3105')")
        assert rule.head.args == (Atom("SC/3/3105"),)

    def test_trailing_period_tolerated(self):
        assert parse_clause("room(r1).").head.functor == "room"

    def test_variables_start_uppercase_or_underscore(self):
        rule = parse_clause("p(X, _y, atom)")
        assert isinstance(rule.head.args[0], Var)
        assert isinstance(rule.head.args[1], Var)
        assert isinstance(rule.head.args[2], Atom)

    def test_nested_structures(self):
        rule = parse_clause("p(f(a, X), b)")
        inner = rule.head.args[0]
        assert isinstance(inner, Struct)
        assert inner.functor == "f"

    def test_bad_syntax_rejected(self):
        with pytest.raises(ReasoningError):
            parse_clause("p(a,,b)")
        with pytest.raises(ReasoningError):
            parse_clause("p(a")
        with pytest.raises(ReasoningError):
            parse_query("p(a), q(b)")


class TestUnification:
    def test_atom_with_atom(self):
        assert unify(Atom("a"), Atom("a"), {}) == {}
        assert unify(Atom("a"), Atom("b"), {}) is None

    def test_var_binds_atom(self):
        bindings = unify(Var("X"), Atom("a"), {})
        assert bindings == {"X": Atom("a")}

    def test_struct_unification_propagates(self):
        a = Struct("p", (Var("X"), Atom("b")))
        b = Struct("p", (Atom("a"), Var("Y")))
        bindings = unify(a, b, {})
        assert bindings["X"] == Atom("a")
        assert bindings["Y"] == Atom("b")

    def test_functor_mismatch(self):
        assert unify(Struct("p", (Atom("a"),)),
                     Struct("q", (Atom("a"),)), {}) is None

    def test_arity_mismatch(self):
        assert unify(Struct("p", (Atom("a"),)),
                     Struct("p", (Atom("a"), Atom("b"))), {}) is None

    def test_bound_variable_consistency(self):
        a = Struct("p", (Var("X"), Var("X")))
        b = Struct("p", (Atom("a"), Atom("b")))
        assert unify(a, b, {}) is None


class TestSolving:
    def test_fact_query(self):
        kb = KnowledgeBase()
        kb.add("room(r1)")
        kb.add("room(r2)")
        answers = sorted(a["X"] for a in kb.query("room(X)"))
        assert answers == ["r1", "r2"]

    def test_ground_query(self):
        kb = KnowledgeBase()
        kb.add("room(r1)")
        assert kb.ask("room(r1)")
        assert not kb.ask("room(r9)")

    def test_conjunction_join(self):
        kb = KnowledgeBase()
        kb.add("in(tom, r1)")
        kb.add("in(ann, r1)")
        kb.add("in(bob, r2)")
        kb.add("together(A, B) :- in(A, R), in(B, R)")
        answers = {a["B"] for a in kb.query("together(tom, B)")
                   if a["B"] != "tom"}
        assert answers == {"ann"}

    def test_recursive_transitive_closure(self):
        kb = KnowledgeBase()
        for a, b in [("a", "b"), ("b", "c"), ("c", "d")]:
            kb.add_fact("edge", a, b)
        kb.add("path(X, Y) :- edge(X, Y)")
        kb.add("path(X, Y) :- edge(X, Z), path(Z, Y)")
        answers = sorted(a["Y"] for a in kb.query("path(a, Y)"))
        assert answers == ["b", "c", "d"]

    def test_cyclic_graph_terminates(self):
        kb = KnowledgeBase()
        for a, b in [("a", "b"), ("b", "c"), ("c", "a")]:
            kb.add_fact("edge", a, b)
        kb.add("path(X, Y) :- edge(X, Y)")
        kb.add("path(X, Y) :- edge(X, Z), path(Z, Y)")
        answers = sorted(a["Y"] for a in kb.query("path(a, Y)"))
        assert answers == ["a", "b", "c"]

    def test_duplicate_answers_collapsed(self):
        kb = KnowledgeBase()
        kb.add("p(a)")
        kb.add("q(X) :- p(X)")
        kb.add("q(X) :- p(X)")  # second proof, same answer
        assert len(list(kb.query("q(X)"))) == 1

    def test_depth_limit_raises_on_runaway(self):
        kb = KnowledgeBase(max_depth=10)
        kb.add("loop(X) :- loop(f(X))")  # grows forever, never repeats
        with pytest.raises(ReasoningError):
            kb.ask("loop(a)")

    def test_distinct_builtin(self):
        kb = KnowledgeBase()
        kb.add("in(tom, r1)")
        kb.add("in(ann, r1)")
        kb.add("pair(A, B) :- in(A, R), in(B, R), distinct(A, B)")
        answers = {(a["A"], a["B"]) for a in kb.query("pair(A, B)")}
        assert answers == {("tom", "ann"), ("ann", "tom")}
        assert not kb.ask("distinct(a, a)")
        assert kb.ask("distinct(a, b)")

    def test_remove_fact(self):
        kb = KnowledgeBase()
        kb.add_fact("at", "tom", "r1")
        assert kb.ask("at(tom, r1)")
        assert kb.remove_fact("at", "tom", "r1")
        assert not kb.ask("at(tom, r1)")
        assert not kb.remove_fact("at", "tom", "r1")

    def test_remove_fact_leaves_rules_alone(self):
        kb = KnowledgeBase()
        kb.add("p(a)")
        kb.add("q(X) :- p(X)")
        assert not kb.remove_fact("q", "a")  # derived, not a fact
        assert kb.ask("q(a)")

    def test_add_fact_helper(self):
        kb = KnowledgeBase()
        kb.add_fact("ecfp", "SC/3/3105", "SC/3/Corridor")
        assert kb.ask("ecfp('SC/3/3105', 'SC/3/Corridor')")

    def test_clause_count(self):
        kb = KnowledgeBase()
        kb.add("p(a)")
        kb.add("q(X) :- p(X)")
        assert kb.clause_count() == 2


class TestTermination:
    """Regressions for the SLD engine's termination guards.

    The ``reachable``/``accessible`` rules are recursive; a cyclic
    passage graph (two ``ecfp`` facts forming a loop) must terminate
    through the variant-ancestor tabling check, and rule sets that
    genuinely diverge must raise instead of silently truncating.
    """

    def test_cyclic_ecfp_loop_terminates(self):
        kb = KnowledgeBase()
        for rule in SPATIAL_RULES:
            kb.add(rule)
        # Two ecfp facts forming a loop, plus a spur.
        kb.add_fact("ecfp", "a", "b")
        kb.add_fact("ecfp", "b", "a")
        kb.add_fact("ecfp", "b", "c")
        answers = sorted({a["W"] for a in kb.query("reachable(a, W)")})
        assert answers == ["a", "b", "c"]
        assert kb.ask("reachable('c', 'a')")
        assert not kb.ask("reachable('a', 'z')")
        assert kb.ask("accessible('a', 'c')")

    def test_cyclic_world_reachability_terminates(self):
        # Real floor plans have passage cycles (room <-> corridor both
        # directions via the symmetry rules, corridor loops).
        world = siebel_floor()
        kb = build_knowledge_base(world)
        regions = reachable_regions(kb, "SC/3/3102")
        assert "SC/3/Corridor" in regions
        assert len(regions) > 2
        # 3105 is behind a restricted (ecrp) door: unreachable freely,
        # reachable with credentials — and both queries terminate.
        assert "SC/3/3105" not in regions
        assert kb.ask("accessible('SC/3/3102', 'SC/3/3105')")

    def test_fresh_variable_recursion_is_tabled(self):
        # The recursive call introduces a fresh variable each renaming;
        # an exact-repr ancestor check never matches and the engine
        # used to spin to the depth limit.  The variant check prunes it
        # after one expansion.
        kb = KnowledgeBase()
        kb.add("spin(X) :- spin(Y)")
        assert not kb.ask("spin(a)")
        kb.add("spin(base)")
        assert kb.ask("spin(a)")

    def test_runaway_recursion_raises_not_truncates(self):
        kb = KnowledgeBase(max_depth=32)
        kb.add("grow(X) :- grow(f(X))")
        with pytest.raises(ReasoningError, match="max_depth"):
            list(kb.query("grow(seed)"))
