"""Tests for the concrete adapters and their paper calibrations."""

import pytest

from repro.geometry import Point, Rect
from repro.sensors import (
    BiometricAdapter,
    BluetoothAdapter,
    CardReaderAdapter,
    DesktopLoginAdapter,
    RfBadgeAdapter,
    UbisenseAdapter,
    rf_badge_spec,
    ubisense_spec,
)
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture
def db() -> SpatialDatabase:
    return SpatialDatabase(siebel_floor())


class TestUbisense:
    def test_paper_calibration(self):
        spec = ubisense_spec()
        assert spec.detection_probability == 0.95   # "95% of the time"
        assert spec.misident_probability == 0.05    # z0 = 0.05
        assert spec.z_area_scaled
        assert spec.resolution == 0.5               # 6 inches in feet
        assert spec.time_to_live == 3.0             # Table 2

    def test_tag_sighting_is_six_inch_square(self, db):
        adapter = UbisenseAdapter("Ubi-18", "SC/3/3105", frame="")
        adapter.attach(db)
        adapter.tag_sighting("ralph-badge", Point(150, 20), 1.0)
        row = db.readings_for("ralph-badge", now=2.0)[0]
        assert row["rect"] == Rect(149.5, 19.5, 150.5, 20.5)
        assert row["detection_radius"] == 0.5

    def test_reading_expires_after_three_seconds(self, db):
        adapter = UbisenseAdapter("Ubi-18", "SC/3/3105", frame="")
        adapter.attach(db)
        adapter.tag_sighting("ralph-badge", Point(150, 20), 0.0)
        assert db.readings_for("ralph-badge", now=2.9)
        assert not db.readings_for("ralph-badge", now=3.1)


class TestRfBadge:
    def test_paper_calibration(self):
        spec = rf_badge_spec()
        assert spec.detection_probability == 0.75   # "y = 0.75"
        assert spec.misident_probability == 0.25    # z0 = 0.25
        assert spec.z_area_scaled
        assert spec.resolution == 15.0              # "approx. 15 ft"

    def test_sighting_covers_area_of_interest(self, db):
        adapter = RfBadgeAdapter("RF-12", "SC/3/3102", Point(50, 20),
                                 frame="")
        adapter.attach(db)
        adapter.badge_sighting("tom-pda", 1.0)
        row = db.readings_for("tom-pda", now=2.0)[0]
        assert row["rect"] == adapter.area_of_interest()
        assert row["rect"].width == 30.0

    def test_station_frame_conversion(self, db):
        # Station position given in the room's own frame.
        adapter = RfBadgeAdapter("RF-12", "SC/3/3102", Point(30, 20),
                                 frame="SC/3/3102")
        adapter.attach(db)
        # Room 3102 origin is (20, 0): canonical center (50, 20).
        assert adapter.area_of_interest().center.almost_equals(
            Point(50, 20))


class TestCardReader:
    def test_symbolic_reading_covers_room(self, db):
        adapter = CardReaderAdapter("Card-3105", "SC/3/3105", frame="")
        adapter.attach(db)
        adapter.swipe("tom", 1.0)
        row = db.readings_for("tom", now=2.0)[0]
        assert row["rect"] == db.world.canonical_mbr("SC/3/3105")

    def test_ten_second_ttl(self, db):
        adapter = CardReaderAdapter("Card-3105", "SC/3/3105", frame="")
        adapter.attach(db)
        adapter.swipe("tom", 0.0)
        assert db.readings_for("tom", now=9.9)
        assert not db.readings_for("tom", now=10.1)


class TestBiometric:
    @pytest.fixture
    def adapter(self, db) -> BiometricAdapter:
        a = BiometricAdapter("Finger-1", "SC/3/3105", Point(150, 10),
                             frame="")
        a.attach(db)
        return a

    def test_authentication_emits_short_and_long(self, db, adapter):
        adapter.authentication("alice", 0.0)
        rows = db.readings_for("alice", now=1.0)
        sensors = {row["sensor_id"] for row in rows}
        assert sensors == {"Finger-1", "Finger-1-room"}
        by_sensor = {row["sensor_id"]: row for row in rows}
        # Short: 2 ft circle; long: the whole room.
        assert by_sensor["Finger-1"]["rect"].width == 4.0
        assert by_sensor["Finger-1-room"]["rect"] == \
            db.world.canonical_mbr("SC/3/3105")

    def test_short_reading_expires_at_30s(self, db, adapter):
        adapter.authentication("alice", 0.0)
        sensors = {row["sensor_id"]
                   for row in db.readings_for("alice", now=31.0)}
        assert sensors == {"Finger-1-room"}

    def test_long_reading_expires_at_15min(self, db, adapter):
        adapter.authentication("alice", 0.0)
        assert db.readings_for("alice", now=899.0)
        assert not db.readings_for("alice", now=901.0)

    def test_logout_expires_and_emits_short_reading(self, db, adapter):
        adapter.authentication("alice", 0.0)
        adapter.logout("alice", 60.0)
        rows = db.readings_for("alice", now=61.0)
        assert {row["sensor_id"] for row in rows} == {"Finger-1-logout"}
        # The logout reading itself dies after 15 seconds.
        assert not db.readings_for("alice", now=76.0)

    def test_three_sensor_rows_registered(self, db, adapter):
        for sensor_id in ("Finger-1", "Finger-1-room", "Finger-1-logout"):
            assert db.sensor_row(sensor_id)


class TestBluetoothAndDesktop:
    def test_bluetooth_inquiry_batches(self, db):
        adapter = BluetoothAdapter("BT-1", "SC/3/ConferenceRoom",
                                   Point(190, 80), frame="")
        adapter.attach(db)
        ids = adapter.inquiry_result(["phone-a", "phone-b"], 0.0)
        assert len(ids) == 2
        assert db.readings_for("phone-a", now=1.0)
        assert db.readings_for("phone-b", now=1.0)

    def test_desktop_login_and_logout(self, db):
        adapter = DesktopLoginAdapter("WS-1", "SC/3/3102",
                                      Point(26, 4), frame="")
        adapter.attach(db)
        adapter.login("carol", 0.0)
        assert db.readings_for("carol", now=1.0)
        adapter.logout("carol", 100.0)
        assert not db.readings_for("carol", now=101.0)

    def test_desktop_activity_refreshes(self, db):
        adapter = DesktopLoginAdapter("WS-1", "SC/3/3102",
                                      Point(26, 4), frame="")
        adapter.attach(db)
        adapter.login("carol", 0.0)
        adapter.activity("carol", 500.0)
        rows = db.readings_for("carol", now=501.0)
        assert rows[0]["detection_time"] == 500.0
