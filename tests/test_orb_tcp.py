"""Tests for the TCP transport: a real request path across sockets."""

import threading

import pytest

from repro.errors import RemoteInvocationError, TransportError
from repro.geometry import Rect
from repro.orb import Orb, TcpTransport


class Counter:
    def __init__(self):
        self.lock = threading.Lock()
        self.value = 0

    def increment(self, by=1):
        with self.lock:
            self.value += by
            return self.value

    def snapshot(self):
        return {"value": self.value, "rect": Rect(0, 0, 1, 1)}

    def fail(self):
        raise KeyError("kaboom")


@pytest.fixture
def server_orb():
    orb = Orb("server")
    orb.register("counter", Counter())
    orb.listen()
    yield orb
    orb.shutdown()


@pytest.fixture
def client_orb():
    orb = Orb("client")
    yield orb
    orb.shutdown()


class TestTcpInvocation:
    def test_reference_names_tcp_endpoint(self, server_orb):
        ref = server_orb.reference_for("counter")
        assert ref.startswith("tcp://127.0.0.1:")

    def test_roundtrip(self, server_orb, client_orb):
        proxy = client_orb.resolve(server_orb.reference_for("counter"))
        assert proxy.increment() == 1
        assert proxy.increment(by=5) == 6
        snap = proxy.snapshot()
        assert snap["value"] == 6
        assert snap["rect"] == Rect(0, 0, 1, 1)

    def test_remote_exception(self, server_orb, client_orb):
        proxy = client_orb.resolve(server_orb.reference_for("counter"))
        with pytest.raises(RemoteInvocationError) as exc_info:
            proxy.fail()
        assert exc_info.value.remote_type == "KeyError"

    def test_many_sequential_requests_one_connection(self, server_orb,
                                                     client_orb):
        proxy = client_orb.resolve(server_orb.reference_for("counter"))
        for expected in range(1, 101):
            assert proxy.increment() == expected

    def test_concurrent_clients(self, server_orb):
        ref = server_orb.reference_for("counter")
        errors = []

        def worker():
            orb = Orb()
            try:
                proxy = orb.resolve(ref)
                for _ in range(20):
                    proxy.increment()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                orb.shutdown()

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        local = server_orb.resolve("inproc://counter")
        assert local.increment() == 101

    def test_double_listen_rejected(self, server_orb):
        from repro.errors import OrbError
        with pytest.raises(OrbError):
            server_orb.listen()


class TestTransportFailures:
    def test_connect_refused(self):
        transport = TcpTransport("127.0.0.1", 1)  # nothing listens there
        with pytest.raises(TransportError):
            transport.invoke({"object": "x", "method": "y"})

    def test_reconnect_after_server_restart(self, client_orb):
        server = Orb("restartable")
        server.register("counter", Counter())
        host, port = server.listen()
        ref = f"tcp://{host}:{port}/counter"
        proxy = client_orb.resolve(ref)
        assert proxy.increment() == 1
        server.shutdown()

        # Bring a fresh server up on the same port.
        server2 = Orb("reborn")
        server2.register("counter", Counter())
        server2.listen(host=host, port=port)
        try:
            # The client's cached connection is dead; invoke() must
            # transparently reconnect.
            assert proxy.increment() == 1
        finally:
            server2.shutdown()

    def test_pool_retries_stale_connection_once(self, client_orb):
        """A connection that went stale in the pool is retried on a
        fresh socket, and the retry is counted."""
        server = Orb("stale")
        server.register("counter", Counter())
        host, port = server.listen()
        proxy = client_orb.resolve(f"tcp://{host}:{port}/counter")
        assert proxy.increment() == 1
        server.shutdown()
        server2 = Orb("stale-2")
        server2.register("counter", Counter())
        server2.listen(host=host, port=port)
        try:
            assert proxy.increment() == 1
            transport = client_orb._transports[(host, port)]
            assert transport.pool_stats()["retries"] >= 1
        finally:
            server2.shutdown()

    def test_call_after_shutdown_fails(self, client_orb):
        server = Orb()
        server.register("counter", Counter())
        ref = server.reference_for("counter")
        host, port = server.listen()
        tcp_ref = server.reference_for("counter")
        proxy = client_orb.resolve(tcp_ref)
        proxy.increment()
        server.shutdown()
        with pytest.raises(TransportError):
            proxy.increment()


class Sleeper:
    """A servant whose method holds its worker thread for a while."""

    def __init__(self, delay=0.25):
        self.delay = delay

    def nap(self):
        import time
        time.sleep(self.delay)
        return "rested"


class TestRouterStyleStress:
    """One client orb hammering a fleet of endpoints concurrently —
    the shard router's exact access pattern.  The old single-socket
    transport serialized every caller behind one lock (and a request
    racing a reconnect could read another request's reply frame); the
    pooled transport gives each in-flight request its own socket."""

    NUM_SERVERS = 4
    NUM_THREADS = 8
    CALLS_PER_THREAD = 25

    def test_concurrent_fanout_across_endpoints(self, client_orb):
        servers = []
        counters = []
        try:
            for i in range(self.NUM_SERVERS):
                orb = Orb(f"shard-{i}")
                counter = Counter()
                orb.register("counter", counter)
                orb.listen()
                servers.append(orb)
                counters.append(counter)
            proxies = [client_orb.resolve(orb.reference_for("counter"))
                       for orb in servers]
            errors = []

            def worker(worker_id):
                try:
                    for call in range(self.CALLS_PER_THREAD):
                        # Interleave endpoints so every thread keeps
                        # several transports hot at once.
                        proxy = proxies[(worker_id + call)
                                        % self.NUM_SERVERS]
                        proxy.increment()
                        snap = proxy.snapshot()
                        assert snap["rect"] == Rect(0, 0, 1, 1)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(self.NUM_THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            total = self.NUM_THREADS * self.CALLS_PER_THREAD
            assert sum(c.value for c in counters) == total
            # Every response must have reached its own caller: each
            # counter saw exactly the increments routed to it.
            per_server = total // self.NUM_SERVERS
            assert [c.value for c in counters] \
                == [per_server] * self.NUM_SERVERS
            # The pool recycled sockets instead of reconnecting per
            # call, and nothing needed a retry.
            for orb in servers:
                host, port = orb._tcp_server.address
                stats = client_orb._transports[(host, port)].pool_stats()
                assert stats["reused"] > 0
                assert stats["retries"] == 0
                assert stats["opened"] <= self.NUM_THREADS
        finally:
            for orb in servers:
                orb.shutdown()

    def test_slow_call_does_not_block_the_endpoint(self, client_orb):
        """Head-of-line: with one pooled transport, a slow request
        must not serialize the fast ones behind it."""
        import time
        server = Orb("sleepy")
        server.register("sleeper", Sleeper(delay=0.4))
        server.register("counter", Counter())
        server.listen()
        try:
            sleeper = client_orb.resolve(server.reference_for("sleeper"))
            counter = client_orb.resolve(server.reference_for("counter"))
            done = []

            def nap():
                done.append(sleeper.nap())

            napper = threading.Thread(target=nap)
            start = time.monotonic()
            napper.start()
            time.sleep(0.05)  # let the nap request get on the wire
            for _ in range(10):
                counter.increment()
            fast_elapsed = time.monotonic() - start
            napper.join()
            assert done == ["rested"]
            # The fast calls finished while the nap was still held:
            # far under the 0.4 s the serialized transport would take.
            assert fast_elapsed < 0.4
        finally:
            server.shutdown()


class TestMultiplexedTransport:
    """The negotiated fast lane: one socket, many in-flight requests,
    responses out of order."""

    def test_single_connection_carries_concurrency(self, client_orb):
        server = Orb("muxed")
        server.register("sleeper", Sleeper(delay=0.3))
        server.register("counter", Counter())
        server.listen()
        try:
            sleeper = client_orb.resolve(server.reference_for("sleeper"))
            counter = client_orb.resolve(server.reference_for("counter"))
            nap = sleeper.orb_invoke_async("nap")
            # These are submitted after the nap but answered first —
            # the server dispatches out of order on one connection.
            for expected in range(1, 11):
                assert counter.increment() == expected
            assert not nap.done() or True  # nap may still be napping
            assert nap.result() == "rested"
            host, port = server._tcp_server.address
            transport = client_orb._transports[(host, port)]
            stats = transport.transport_stats()
            assert stats["mode"] == "mux"
            assert stats["codec"] == "binary"
            assert stats["opened"] == 1  # the one upgraded connection
            assert stats["multiplexed_inflight_max"] >= 2
        finally:
            server.shutdown()

    def test_invoke_many_pipelines(self, server_orb, client_orb):
        ref = server_orb.reference_for("counter")
        proxy = client_orb.resolve(ref)
        proxy.increment()  # negotiate
        host, port = server_orb._tcp_server.address
        transport = client_orb._transports[(host, port)]
        requests = [{"object": "counter", "method": "increment",
                     "args": [], "kwargs": {}} for _ in range(20)]
        responses = transport.invoke_many(requests)
        values = sorted(r["result"] for r in responses)
        assert values == list(range(2, 22))
        assert transport.pool_stats()["retries"] == 0

    def test_async_remote_error_raised_at_result(self, server_orb,
                                                 client_orb):
        proxy = client_orb.resolve(server_orb.reference_for("counter"))
        handle = proxy.orb_invoke_async("fail")
        with pytest.raises(RemoteInvocationError) as exc_info:
            handle.result()
        assert exc_info.value.remote_type == "KeyError"


class _ScriptedLegacyServer:
    """A raw socket server speaking legacy framing from a script of
    per-connection behaviours: "serve", "close_before_response",
    "partial_response"."""

    def __init__(self, behaviours):
        import socket as socket_module
        self.behaviours = list(behaviours)
        self.sock = socket_module.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.address = self.sock.getsockname()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        import struct
        from repro.orb import serialization
        for behaviour in self.behaviours:
            conn, _ = self.sock.accept()
            try:
                header = b""
                while len(header) < 4:
                    header += conn.recv(4 - len(header))
                (length,) = struct.unpack(">I", header)
                body = b""
                while len(body) < length:
                    body += conn.recv(length - len(body))
                if behaviour == "close_before_response":
                    pass  # just close: no response bytes at all
                elif behaviour == "partial_response":
                    conn.sendall(b"\x00\x00")  # half a header, then die
                else:
                    payload = serialization.dumps({"result": "ok"})
                    conn.sendall(struct.pack(">I", len(payload)) + payload)
            finally:
                conn.close()
        self.sock.close()


class TestRetrySemantics:
    """The reconnect-retry fires once, and ONLY when the connection
    died before any response byte arrived.  Retried requests may have
    executed server-side, so everything invoked through the transport
    must be idempotent — see the TcpTransport docstring."""

    REQUEST = {"object": "x", "method": "y", "args": [], "kwargs": {}}

    def test_retries_when_no_response_bytes(self):
        server = _ScriptedLegacyServer(["close_before_response", "serve"])
        host, port = server.address
        transport = TcpTransport(host, port, timeout=5.0, negotiate=False)
        try:
            response = transport.invoke(dict(self.REQUEST))
            assert response == {"result": "ok"}
            assert transport.pool_stats()["retries"] == 1
        finally:
            transport.close()

    def test_no_retry_after_partial_response(self):
        server = _ScriptedLegacyServer(["partial_response", "serve"])
        host, port = server.address
        transport = TcpTransport(host, port, timeout=5.0, negotiate=False)
        try:
            with pytest.raises(TransportError) as exc_info:
                transport.invoke(dict(self.REQUEST))
            # Died mid-response: NOT retried (the request may have
            # executed; a retry could double-execute and the partial
            # bytes prove the server took it).
            assert "mid-response" in str(exc_info.value)
            assert transport.pool_stats()["retries"] == 0
        finally:
            transport.close()

    def test_retry_happens_at_most_once(self):
        server = _ScriptedLegacyServer(["close_before_response",
                                        "close_before_response"])
        host, port = server.address
        transport = TcpTransport(host, port, timeout=5.0, negotiate=False)
        try:
            with pytest.raises(TransportError):
                transport.invoke(dict(self.REQUEST))
            assert transport.pool_stats()["retries"] == 1
        finally:
            transport.close()


class TestSendSideFrameGuard:
    def test_oversized_request_raises_locally(self, server_orb,
                                              client_orb):
        """An oversized payload must fail client-side with a clear
        error, not by the peer killing the connection mid-frame."""
        proxy = client_orb.resolve(server_orb.reference_for("counter"))
        proxy.increment()  # establish the connection first
        blob = "x" * (65 * 1024 * 1024)
        with pytest.raises(TransportError) as exc_info:
            proxy.increment(by=blob)
        assert "exceeds" in str(exc_info.value)
        # The connection survives: the frame was never sent.
        assert proxy.increment() == 2
