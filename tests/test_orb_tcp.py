"""Tests for the TCP transport: a real request path across sockets."""

import threading

import pytest

from repro.errors import RemoteInvocationError, TransportError
from repro.geometry import Rect
from repro.orb import Orb, TcpTransport


class Counter:
    def __init__(self):
        self.lock = threading.Lock()
        self.value = 0

    def increment(self, by=1):
        with self.lock:
            self.value += by
            return self.value

    def snapshot(self):
        return {"value": self.value, "rect": Rect(0, 0, 1, 1)}

    def fail(self):
        raise KeyError("kaboom")


@pytest.fixture
def server_orb():
    orb = Orb("server")
    orb.register("counter", Counter())
    orb.listen()
    yield orb
    orb.shutdown()


@pytest.fixture
def client_orb():
    orb = Orb("client")
    yield orb
    orb.shutdown()


class TestTcpInvocation:
    def test_reference_names_tcp_endpoint(self, server_orb):
        ref = server_orb.reference_for("counter")
        assert ref.startswith("tcp://127.0.0.1:")

    def test_roundtrip(self, server_orb, client_orb):
        proxy = client_orb.resolve(server_orb.reference_for("counter"))
        assert proxy.increment() == 1
        assert proxy.increment(by=5) == 6
        snap = proxy.snapshot()
        assert snap["value"] == 6
        assert snap["rect"] == Rect(0, 0, 1, 1)

    def test_remote_exception(self, server_orb, client_orb):
        proxy = client_orb.resolve(server_orb.reference_for("counter"))
        with pytest.raises(RemoteInvocationError) as exc_info:
            proxy.fail()
        assert exc_info.value.remote_type == "KeyError"

    def test_many_sequential_requests_one_connection(self, server_orb,
                                                     client_orb):
        proxy = client_orb.resolve(server_orb.reference_for("counter"))
        for expected in range(1, 101):
            assert proxy.increment() == expected

    def test_concurrent_clients(self, server_orb):
        ref = server_orb.reference_for("counter")
        errors = []

        def worker():
            orb = Orb()
            try:
                proxy = orb.resolve(ref)
                for _ in range(20):
                    proxy.increment()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                orb.shutdown()

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        local = server_orb.resolve("inproc://counter")
        assert local.increment() == 101

    def test_double_listen_rejected(self, server_orb):
        from repro.errors import OrbError
        with pytest.raises(OrbError):
            server_orb.listen()


class TestTransportFailures:
    def test_connect_refused(self):
        transport = TcpTransport("127.0.0.1", 1)  # nothing listens there
        with pytest.raises(TransportError):
            transport.invoke({"object": "x", "method": "y"})

    def test_reconnect_after_server_restart(self, client_orb):
        server = Orb("restartable")
        server.register("counter", Counter())
        host, port = server.listen()
        ref = f"tcp://{host}:{port}/counter"
        proxy = client_orb.resolve(ref)
        assert proxy.increment() == 1
        server.shutdown()

        # Bring a fresh server up on the same port.
        server2 = Orb("reborn")
        server2.register("counter", Counter())
        server2.listen(host=host, port=port)
        try:
            # The client's cached connection is dead; invoke() must
            # transparently reconnect.
            assert proxy.increment() == 1
        finally:
            server2.shutdown()

    def test_call_after_shutdown_fails(self, client_orb):
        server = Orb()
        server.register("counter", Counter())
        ref = server.reference_for("counter")
        host, port = server.listen()
        tcp_ref = server.reference_for("counter")
        proxy = client_orb.resolve(tcp_ref)
        proxy.increment()
        server.shutdown()
        with pytest.raises(TransportError):
            proxy.increment()
