"""Edge-case tests across modules (small gaps the big suites skip)."""

import pytest

from repro.core import (
    FusionEngine,
    LocationEstimate,
    NormalizedReading,
    ProbabilityBucket,
    SensorSpec,
)
from repro.errors import (
    FusionError,
    GeometryError,
    MiddleWhereError,
    OrbError,
    PrivacyError,
    ReasoningError,
    SensorError,
    ServiceError,
    UnknownObjectError,
)
from repro.geometry import Point, Rect
from repro.model import WorldModel
from repro.sim import AccuracyTrace, siebel_floor


class TestErrorHierarchy:
    @pytest.mark.parametrize("error_class", [
        FusionError, GeometryError, OrbError, PrivacyError,
        ReasoningError, SensorError, ServiceError, UnknownObjectError,
    ])
    def test_all_errors_are_middlewhere_errors(self, error_class):
        with pytest.raises(MiddleWhereError):
            raise error_class("boom")

    def test_privacy_error_is_service_error(self):
        with pytest.raises(ServiceError):
            raise PrivacyError("hidden")

    def test_unknown_object_is_service_error(self):
        with pytest.raises(ServiceError):
            raise UnknownObjectError("who?")


class TestEstimateRendering:
    def test_str_with_symbolic(self):
        estimate = LocationEstimate(
            "alice", Rect(0, 0, 1, 1), 0.91, ProbabilityBucket.HIGH,
            1.0, symbolic="SC/3/3105")
        text = str(estimate)
        assert "alice" in text
        assert "SC/3/3105" in text
        assert "0.910" in text
        assert "high" in text

    def test_str_without_symbolic_shows_rect(self):
        estimate = LocationEstimate(
            "alice", Rect(0, 0, 1, 1), 0.5, ProbabilityBucket.LOW, 1.0)
        assert "Rect" in str(estimate)


class TestAccuracyTraceEdges:
    def test_empty_trace_summary(self):
        trace = AccuracyTrace(siebel_floor())
        summary = trace.summary()
        assert summary.samples == 0
        assert summary.misses == 0
        assert summary.room_accuracy == 0.0

    def test_misses_counted_without_samples(self):
        from repro.sim.movement import PersonState
        trace = AccuracyTrace(siebel_floor())
        person = PersonState("ghost", Point(0, 0), "SC/3")
        trace.record_miss(person, 1.0)
        trace.record_miss(person, 2.0)
        assert trace.summary().misses == 2


class TestEngineEdges:
    def test_zero_area_reading_fuses(self):
        # A degenerate (point) reading must not divide by zero.
        spec = SensorSpec("T", 1.0, 0.9, 0.1, resolution=1.0,
                          time_to_live=1e9)
        reading = NormalizedReading("S", "tom", Rect(5, 5, 5, 5), 0.0,
                                    spec)
        engine = FusionEngine()
        result = engine.fuse("tom", [reading], Rect(0, 0, 100, 100), 0.0)
        node = result.minimal_regions()[0]
        assert node.probability == 0.0  # zero-area region: no mass
        assert 0.0 <= node.confidence <= 1.0

    def test_reading_covering_whole_universe(self):
        spec = SensorSpec("T", 1.0, 0.9, 0.1, resolution=1.0,
                          time_to_live=1e9)
        universe = Rect(0, 0, 100, 100)
        reading = NormalizedReading("S", "tom", universe, 0.0, spec)
        result = FusionEngine().fuse("tom", [reading], universe, 0.0)
        assert result.probability_of_region(universe) == \
            pytest.approx(1.0)

    def test_confidence_in_degenerate_region(self):
        spec = SensorSpec("T", 1.0, 0.9, 0.1, resolution=1.0,
                          time_to_live=1e9)
        reading = NormalizedReading("S", "tom", Rect(0, 0, 10, 10), 0.0,
                                    spec)
        result = FusionEngine().fuse("tom", [reading],
                                     Rect(0, 0, 100, 100), 0.0)
        probe = Rect(5, 5, 5, 5)  # zero-area query region
        assert result.confidence_in_region(probe) == 0.0


class TestWorldModelEdges:
    def test_empty_world_entities(self):
        world = WorldModel()
        assert world.entities() == []
        assert world.doors() == []

    def test_smallest_region_prefers_smaller(self):
        world = siebel_floor()
        entity = world.smallest_region_containing(Point(150, 20))
        assert entity.identifier == "3105"  # not the floor
