"""Fuzz tests: the query and clause parsers never crash unexpectedly."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError, ReasoningError
from repro.reasoning import parse_clause
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase, parse_query


class TestQueryParserFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.text(max_size=80))
    def test_arbitrary_text_never_crashes(self, text):
        """Garbage in -> QueryError (or a parse), never another error."""
        try:
            parse_query(text)
        except QueryError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet=string.printable, max_size=120))
    def test_printable_garbage(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(["object_type", "glob_prefix",
                         "properties.power_outlets",
                         "properties.capacity"]),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.one_of(st.integers(-100, 100),
                  st.sampled_from(["'Room'", "'Floor'", "true",
                                   "false", "null"])),
        st.integers(0, 5),
    )
    def test_generated_valid_queries_execute(self, column, op, literal,
                                             limit):
        db = SpatialDatabase(siebel_floor())
        text = (f"SELECT glob FROM spatial_objects "
                f"WHERE {column} {op} {literal} LIMIT {limit}")
        rows = db.query(text)
        assert len(rows) <= limit


class TestClauseParserFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.text(max_size=60))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_clause(text)
        except ReasoningError:
            pass


class TestLatticeDot:
    def test_dot_export_shape(self):
        from repro.core import FusionEngine, NormalizedReading, SensorSpec
        from repro.geometry import Rect

        spec = SensorSpec("T", 1.0, 0.9, 0.1, resolution=5.0,
                          time_to_live=1e9)
        readings = [
            NormalizedReading("S1", "tom", Rect(0, 0, 30, 30), 0.0, spec),
            NormalizedReading("S2", "tom", Rect(20, 20, 50, 50), 0.0,
                              spec),
        ]
        result = FusionEngine().fuse("tom", readings,
                                     Rect(0, 0, 500, 100), 0.0)
        dot = result.lattice.to_dot()
        assert dot.startswith("digraph lattice {")
        assert dot.rstrip().endswith("}")
        assert '"Top"' in dot and '"Bottom"' in dot
        # Every Hasse edge appears exactly once as an arrow.
        arrow_count = dot.count("->")
        edge_count = sum(len(n.children)
                         for n in result.lattice.nodes())
        assert arrow_count == edge_count
