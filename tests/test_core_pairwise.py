"""Tests for the paper's two-sensor formulas (Equations 4-6).

These reproduce the analytic behaviour shown in the paper's Figures
2-4: reinforcement under containment, intersection sharpening, and
consistency between the equations.
"""

import pytest

from repro.core import (
    eq4_containment,
    eq4_from_rects,
    eq5_single_sensor,
    eq6_corrected,
    eq6_from_rects,
    eq6_intersection,
    exact_region_probability,
)
from repro.errors import FusionError
from repro.geometry import Rect

AREA_U = 50000.0  # the paper's building floor area scale


class TestEq5:
    def test_value_in_unit_interval(self):
        p = eq5_single_sensor(600.0, AREA_U, 0.95, 0.05)
        assert 0.0 <= p <= 1.0

    def test_better_sensor_gives_higher_probability(self):
        weak = eq5_single_sensor(600.0, AREA_U, 0.75, 0.25)
        strong = eq5_single_sensor(600.0, AREA_U, 0.99, 0.01)
        assert strong > weak

    def test_whole_universe_is_certain(self):
        assert eq5_single_sensor(AREA_U, AREA_U, 0.9, 0.1) == 1.0

    def test_zero_area_region_is_impossible(self):
        assert eq5_single_sensor(0.0, AREA_U, 0.9, 0.1) == 0.0

    def test_matches_exact_bayes(self):
        # Eq. (5) is exact Bayes with a uniform prior.
        region = Rect(0, 0, 30, 20)
        universe_area = AREA_U
        expected = exact_region_probability(
            region, [(region, 0.9, 0.1)], universe_area)
        got = eq5_single_sensor(region.area, universe_area, 0.9, 0.1)
        assert got == pytest.approx(expected)

    def test_area_out_of_range_rejected(self):
        with pytest.raises(FusionError):
            eq5_single_sensor(100.0, 50.0, 0.9, 0.1)


class TestEq4:
    def test_reinforcement_property(self):
        """The paper: P(B | s1, s2) > P(B | s2) whenever p1 > q1."""
        area_a, area_b = 100.0, 900.0
        p1, q1, p2, q2 = 0.9, 0.05, 0.8, 0.1
        both = eq4_containment(area_a, area_b, AREA_U, p1, q1, p2, q2)
        single = eq5_single_sensor(area_b, AREA_U, p2, q2)
        assert both > single

    def test_no_reinforcement_when_p_equals_q(self):
        # An uninformative inner sensor must not change the answer.
        area_a, area_b = 100.0, 900.0
        both = eq4_containment(area_a, area_b, AREA_U, 0.5, 0.5, 0.8, 0.1)
        single = eq5_single_sensor(area_b, AREA_U, 0.8, 0.1)
        assert both == pytest.approx(single)

    def test_matches_exact_bayes(self):
        # Eq. (4) is derived exactly in the paper; our exact engine
        # must agree with the printed closed form.
        inner = Rect(100, 10, 110, 20)
        outer = Rect(90, 0, 140, 50)
        universe = Rect(0, 0, 500, 100)
        p1, q1, p2, q2 = 0.9, 0.05, 0.8, 0.1
        printed = eq4_from_rects(inner, outer, universe, p1, q1, p2, q2)
        exact = exact_region_probability(
            outer, [(inner, p1, q1), (outer, p2, q2)], universe.area)
        assert printed == pytest.approx(exact, rel=1e-9)

    def test_rect_variant_requires_containment(self):
        with pytest.raises(FusionError):
            eq4_from_rects(Rect(0, 0, 10, 10), Rect(5, 5, 8, 8),
                           Rect(0, 0, 100, 100), 0.9, 0.1, 0.9, 0.1)

    def test_inconsistent_areas_rejected(self):
        with pytest.raises(FusionError):
            eq4_containment(900.0, 100.0, AREA_U, 0.9, 0.1, 0.9, 0.1)


class TestEq6:
    def test_corrected_intersection_beats_prior(self):
        # Two agreeing sensors concentrate probability in C = A ∩ B.
        area_a = area_b = 400.0
        area_c = 100.0
        value = eq6_corrected(area_a, area_b, area_c, AREA_U,
                              0.9, 0.05, 0.9, 0.05)
        prior = area_c / AREA_U
        assert value > prior

    def test_printed_form_underestimates_by_outside_area(self):
        # The printed Eq. (6) omits a 1/(aU - aC) normalization; at
        # building scale it is therefore smaller than the corrected
        # posterior by almost exactly that factor.
        area_a = area_b = 400.0
        area_c = 100.0
        printed = eq6_intersection(area_a, area_b, area_c, AREA_U,
                                   0.9, 0.05, 0.9, 0.05)
        corrected = eq6_corrected(area_a, area_b, area_c, AREA_U,
                                  0.9, 0.05, 0.9, 0.05)
        assert printed < corrected
        # Odds ratio between the two equals (aU - aC).
        printed_odds = printed / (1.0 - printed)
        corrected_odds = corrected / (1.0 - corrected)
        assert corrected_odds / printed_odds == \
            pytest.approx(AREA_U - area_c)

    def test_corrected_matches_exact_bayes(self):
        a = Rect(0, 0, 20, 20)
        b = Rect(10, 10, 30, 30)
        universe = Rect(0, 0, 500, 100)
        c_area = a.intersection_area(b)
        corrected = eq6_corrected(a.area, b.area, c_area, universe.area,
                                  0.9, 0.05, 0.8, 0.1)
        exact = exact_region_probability(
            a.intersection(b), [(a, 0.9, 0.05), (b, 0.8, 0.1)],
            universe.area)
        assert corrected == pytest.approx(exact, rel=1e-9)

    def test_larger_overlap_means_higher_probability(self):
        small = eq6_intersection(400.0, 400.0, 50.0, AREA_U,
                                 0.9, 0.05, 0.9, 0.05)
        large = eq6_intersection(400.0, 400.0, 300.0, AREA_U,
                                 0.9, 0.05, 0.9, 0.05)
        assert large > small

    def test_rect_variant(self):
        a = Rect(0, 0, 20, 20)
        b = Rect(10, 10, 30, 30)
        universe = Rect(0, 0, 500, 100)
        value = eq6_from_rects(a, b, universe, 0.9, 0.05, 0.9, 0.05)
        assert 0.0 < value < 1.0

    def test_rect_variant_requires_overlap(self):
        with pytest.raises(FusionError):
            eq6_from_rects(Rect(0, 0, 1, 1), Rect(5, 5, 6, 6),
                           Rect(0, 0, 100, 100), 0.9, 0.1, 0.9, 0.1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(FusionError):
            eq6_intersection(10, 10, 5, 100, 1.2, 0.1, 0.9, 0.1)
