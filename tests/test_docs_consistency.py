"""The documentation must match the repository it describes."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDoc:
    def test_exists_and_confirms_paper(self):
        text = read("DESIGN.md")
        assert "MiddleWhere" in text
        assert "No title collision" in text

    def test_every_bench_target_exists(self):
        text = read("DESIGN.md")
        targets = set(re.findall(r"`(benchmarks/[\w/]+\.py)", text))
        assert targets
        for target in targets:
            assert (ROOT / target).exists(), target

    def test_module_inventory_paths_exist(self):
        text = read("DESIGN.md")
        for package in ("geometry", "model", "spatialdb", "core",
                        "reasoning", "orb", "sensors", "service", "sim",
                        "apps"):
            assert f"{package}/" in text
            assert (ROOT / "src" / "repro" / package).is_dir()


class TestExperimentsDoc:
    def test_covers_every_evaluation_artifact(self):
        text = read("EXPERIMENTS.md")
        for artifact in ("Figure 9", "Table 1", "Table 2",
                         "Equation 4", "Equation 6", "Equation 7"):
            assert artifact in text, artifact

    def test_referenced_result_files_are_generated_by_benches(self):
        text = read("EXPERIMENTS.md")
        mentioned = set(re.findall(r"results/([\w.]+)\.txt", text))
        assert mentioned
        bench_source = "".join(
            p.read_text() for p in (ROOT / "benchmarks").glob("*.py"))
        for name in mentioned:
            # Tolerate the wildcard shorthand "ablation_a9_*".
            stem = name.rstrip("*_")
            assert stem in bench_source, name


class TestReadme:
    def test_quickstart_code_runs(self):
        text = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README needs a python quickstart"
        # Execute the first block; it must run as documented.
        namespace: dict = {}
        exec(blocks[0], namespace)  # noqa: S102 — our own docs

    def test_example_commands_reference_real_files(self):
        text = read("README.md")
        for example in re.findall(r"python (examples/[\w.]+\.py)", text):
            assert (ROOT / example).exists(), example

    def test_cli_commands_exist(self):
        from repro.cli import _COMMANDS
        text = read("README.md")
        for command in re.findall(r"python -m repro (\w+)", text):
            assert command in _COMMANDS, command

    def test_math_doc_linked_and_present(self):
        assert "docs/MATH.md" in read("README.md")
        assert (ROOT / "docs" / "MATH.md").exists()
