"""Unit tests for the ingestion pipeline's building blocks."""

import random
import threading

import pytest

from repro.errors import (
    IntakeOverflowError,
    OrbError,
    PipelineError,
    SensorError,
)
from repro.geometry import Rect
from repro.pipeline import (
    OVERFLOW_BLOCK,
    OVERFLOW_DROP_OLDEST,
    OVERFLOW_REJECT,
    Batcher,
    DeadLetterQueue,
    IntakeQueue,
    LatencyHistogram,
    PipelineReading,
    PipelineStats,
    PipelineStatsRecorder,
    RetryPolicy,
    call_with_retry,
)


def reading(object_id: str = "alice", t: float = 0.0) -> PipelineReading:
    return PipelineReading(
        sensor_id="S-1", glob_prefix="SC/3", sensor_type="test",
        object_id=object_id, rect=Rect(0, 0, 1, 1), detection_time=t)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


class TestIntakeQueue:
    def test_fifo_per_object(self):
        intake = IntakeQueue(capacity=10)
        for i in range(3):
            intake.put(reading("alice", float(i)))
        intake.put(reading("bob", 9.0))
        taken = intake.take("alice", limit=10)
        assert [q.reading.detection_time for q in taken] == [0.0, 1.0, 2.0]
        assert intake.total_pending() == 1  # bob's

    def test_capacity_is_per_object(self):
        intake = IntakeQueue(capacity=2, policy=OVERFLOW_REJECT)
        intake.put(reading("alice", 0.0))
        intake.put(reading("alice", 1.0))
        intake.put(reading("bob", 0.0))  # separate queue: fine
        with pytest.raises(IntakeOverflowError):
            intake.put(reading("alice", 2.0))

    def test_drop_oldest_evicts_and_counts(self):
        intake = IntakeQueue(capacity=2, policy=OVERFLOW_DROP_OLDEST)
        intake.put(reading("alice", 0.0))
        intake.put(reading("alice", 1.0))
        assert intake.put(reading("alice", 2.0)) == 1
        assert intake.dropped_total == 1
        taken = intake.take("alice", limit=10)
        assert [q.reading.detection_time for q in taken] == [1.0, 2.0]

    def test_block_timeout_raises(self):
        intake = IntakeQueue(capacity=1, policy=OVERFLOW_BLOCK)
        intake.put(reading("alice", 0.0))
        with pytest.raises(IntakeOverflowError):
            intake.put(reading("alice", 1.0), timeout=0.02)

    def test_blocked_producer_wakes_on_take(self):
        intake = IntakeQueue(capacity=1, policy=OVERFLOW_BLOCK)
        intake.put(reading("alice", 0.0))
        done = threading.Event()

        def producer():
            intake.put(reading("alice", 1.0), timeout=5.0)
            done.set()

        thread = threading.Thread(target=producer)
        thread.start()
        intake.take("alice", limit=1)
        assert done.wait(timeout=2.0)
        thread.join()
        assert intake.total_pending() == 1

    def test_closed_intake_refuses_puts(self):
        intake = IntakeQueue(capacity=4)
        intake.close()
        with pytest.raises(PipelineError):
            intake.put(reading())

    def test_invalid_configuration(self):
        with pytest.raises(PipelineError):
            IntakeQueue(capacity=0)
        with pytest.raises(PipelineError):
            IntakeQueue(policy="explode")


class TestDeadLetterQueue:
    def test_eviction_keeps_total_exact(self):
        dlq = DeadLetterQueue(capacity=3)
        for i in range(5):
            dlq.add(reading(t=float(i)), f"reason-{i % 2}", float(i))
        assert dlq.total == 5
        assert len(dlq) == 3  # only the 3 most recent retained
        kept = [letter.time for letter in dlq.items()]
        assert kept == [2.0, 3.0, 4.0]

    def test_reasons_grouped(self):
        dlq = DeadLetterQueue()
        dlq.add(reading(), "bad rect", 0.0)
        dlq.add(reading(), "bad rect", 1.0)
        dlq.add(reading(), "unknown sensor", 2.0)
        assert dlq.reasons() == {"bad rect": 2, "unknown sensor": 1}


class TestBatcher:
    def test_count_window_releases_full_batch(self):
        clock = FakeClock()
        intake = IntakeQueue(capacity=32, clock=clock)
        batcher = Batcher(intake, max_batch=3, max_wait=100.0, clock=clock)
        for i in range(3):
            intake.put(reading("alice", float(i)))
        batch = batcher.next_batch(timeout=0.0)
        assert batch is not None
        assert batch.object_id == "alice"
        assert len(batch) == 3
        assert batch.detection_time == 2.0

    def test_time_window_releases_partial_batch(self):
        clock = FakeClock()
        intake = IntakeQueue(capacity=32, clock=clock)
        batcher = Batcher(intake, max_batch=10, max_wait=5.0, clock=clock)
        intake.put(reading("alice", 0.0))
        assert batcher.next_batch(timeout=0.0) is None  # still waiting
        clock.advance(5.0)
        batch = batcher.next_batch(timeout=0.0)
        assert batch is not None and len(batch) == 1

    def test_one_batch_in_flight_per_object(self):
        clock = FakeClock()
        intake = IntakeQueue(capacity=32, clock=clock)
        batcher = Batcher(intake, max_batch=2, max_wait=0.0, clock=clock)
        for i in range(4):
            intake.put(reading("alice", float(i)))
        first = batcher.next_batch(timeout=0.0)
        assert first is not None
        # Alice is in flight: her remaining readings stay queued.
        assert batcher.next_batch(timeout=0.0) is None
        assert intake.total_pending() == 2
        batcher.complete("alice")
        second = batcher.next_batch(timeout=0.0)
        assert second is not None
        assert [q.reading.detection_time
                for q in second.entries] == [2.0, 3.0]

    def test_oldest_object_served_first(self):
        clock = FakeClock()
        intake = IntakeQueue(capacity=32, clock=clock)
        batcher = Batcher(intake, max_batch=10, max_wait=0.0, clock=clock)
        intake.put(reading("late", 0.0))
        clock.advance(1.0)
        intake.put(reading("later", 1.0))
        batch = batcher.next_batch(timeout=0.0)
        assert batch is not None and batch.object_id == "late"

    def test_force_flush_releases_everything(self):
        clock = FakeClock()
        intake = IntakeQueue(capacity=32, clock=clock)
        batcher = Batcher(intake, max_batch=100, max_wait=100.0,
                          clock=clock)
        intake.put(reading("alice", 0.0))
        assert batcher.next_batch(timeout=0.0) is None
        batcher.force_flush(True)
        assert batcher.next_batch(timeout=0.0) is not None

    def test_invalid_configuration(self):
        intake = IntakeQueue()
        with pytest.raises(PipelineError):
            Batcher(intake, max_batch=0)
        with pytest.raises(PipelineError):
            Batcher(intake, max_wait=-1.0)


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []
        retried = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise SensorError("transient")
            return "done"

        result = call_with_retry(
            flaky, RetryPolicy(max_attempts=5, base_delay=0.0),
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: retried.append(attempt))
        assert result == "done"
        assert len(calls) == 3
        assert retried == [1, 2]

    def test_exhausted_attempts_reraise(self):
        def always_fails():
            raise OrbError("down")

        with pytest.raises(OrbError):
            call_with_retry(
                always_fails, RetryPolicy(max_attempts=3, base_delay=0.0),
                sleep=lambda _: None)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def bug():
            calls.append(1)
            raise ValueError("programming error")

        with pytest.raises(ValueError):
            call_with_retry(bug, RetryPolicy(max_attempts=5),
                            sleep=lambda _: None)
        assert len(calls) == 1

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=10, base_delay=0.01,
                             max_delay=0.05, multiplier=2.0, jitter=0.0)
        delays = [policy.delay_for(a) for a in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_bounds(self):
        policy = RetryPolicy(jitter=0.25)
        rng = random.Random(7)
        for attempt in range(1, 4):
            raw = policy.delay_for(attempt)
            for _ in range(50):
                jittered = policy.delay_for(attempt, rng)
                assert raw * 0.75 <= jittered <= raw * 1.25

    def test_invalid_policy(self):
        with pytest.raises(PipelineError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PipelineError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(PipelineError):
            RetryPolicy(multiplier=0.5)


class TestStats:
    def test_histogram_percentiles(self):
        hist = LatencyHistogram()
        for ms in (1, 1, 1, 1, 1, 1, 1, 1, 1, 100):
            hist.record(ms / 1000.0)
        snap = hist.snapshot()
        assert snap.count == 10
        assert snap.p50 <= snap.p95 <= snap.max
        assert snap.max == pytest.approx(0.1)
        assert snap.p50 < 0.01  # dominated by the 1ms samples
        assert snap.mean == pytest.approx(0.0109)

    def test_percentile_clamped_to_observed_max(self):
        hist = LatencyHistogram()
        hist.record(0.003)
        snap = hist.snapshot()
        assert snap.p95 <= snap.max

    def test_empty_histogram(self):
        snap = LatencyHistogram().snapshot()
        assert snap.count == 0
        assert snap.mean == 0.0
        assert snap.p95 == 0.0

    def test_invalid_histogram_arguments(self):
        with pytest.raises(PipelineError):
            LatencyHistogram(bounds=())
        with pytest.raises(PipelineError):
            LatencyHistogram(bounds=(0.2, 0.1))
        with pytest.raises(PipelineError):
            LatencyHistogram().percentile(0.0)

    def test_recorder_snapshot_and_reconciliation(self):
        recorder = PipelineStatsRecorder()
        recorder.incr("enqueued", 10)
        recorder.incr("fused", 7)
        recorder.incr("dropped", 2)
        recorder.incr("dead_lettered", 1)
        stats = recorder.snapshot()
        assert isinstance(stats, PipelineStats)
        assert stats.reconciles()
        recorder.incr("enqueued")
        assert not recorder.snapshot().reconciles()

    def test_unknown_counter_rejected(self):
        with pytest.raises(PipelineError):
            PipelineStatsRecorder().incr("nope")

    def test_summary_mentions_every_counter(self):
        recorder = PipelineStatsRecorder()
        text = recorder.snapshot().summary()
        for name in ("enqueued", "fused", "dropped", "dead_lettered",
                     "rejected", "batches", "notifications", "retries",
                     "fusion_failures", "notify_failures", "reconciles"):
            assert name in text


class TestErrorNarrowing:
    """Only SensorError/OrbError are transient; anything else must not
    be retried — it surfaces to the dead-letter queue as "unexpected".
    """

    def _rig(self):
        from repro.pipeline import LocationPipeline, PipelineConfig
        from repro.sensors import UbisenseAdapter
        from repro.service import LocationService
        from repro.sim import siebel_floor
        from repro.spatialdb import SpatialDatabase

        world = siebel_floor()
        db = SpatialDatabase(world)
        service = LocationService(db)
        UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        pipeline = LocationPipeline(service, PipelineConfig(workers=1))
        good = PipelineReading(
            sensor_id="Ubi-1", glob_prefix="SC/3", sensor_type="Ubisense",
            object_id="alice", rect=Rect(149, 19, 151, 21),
            detection_time=1.0)
        return service, pipeline, good

    def _run_one(self, pipeline, reading):
        pipeline.start()
        try:
            pipeline.submit(reading)
            assert pipeline.drain(timeout=10.0)
        finally:
            pipeline.stop()

    def test_unexpected_notify_error_goes_to_dlq_not_retry(self):
        service, pipeline, good = self._rig()

        def boom(result, channel=None):
            raise ValueError("consumer bug")

        service.apply_fusion_result = boom
        self._run_one(pipeline, good)
        stats = pipeline.stats()
        assert stats.retries == 0               # never retried
        assert stats.notify_failures == 1       # surfaced and counted
        assert stats.fused == 1                 # the reading is persisted
        assert stats.reconciles()
        assert pipeline.workers.errors == []    # worker loop survived
        reasons = list(pipeline.dead_letters.reasons())
        assert any(r.startswith("unexpected:") for r in reasons)

    def test_transient_notify_error_is_still_retried(self):
        service, pipeline, good = self._rig()
        calls = []
        original = service.apply_fusion_result

        def flaky(result, channel=None):
            calls.append(1)
            if len(calls) < 3:
                raise OrbError("transient broker hiccup")
            return original(result, channel=channel)

        service.apply_fusion_result = flaky
        self._run_one(pipeline, good)
        stats = pipeline.stats()
        assert stats.retries == 2
        assert stats.notify_failures == 0
        assert len(pipeline.dead_letters) == 0
        assert stats.reconciles()

    def test_unexpected_flush_error_dead_letters_without_retry(self):
        service, pipeline, good = self._rig()

        def broken_insert(*args, **kwargs):
            raise ValueError("poisoned row")

        service.db.insert_reading = broken_insert
        self._run_one(pipeline, good)
        stats = pipeline.stats()
        assert stats.retries == 0
        assert stats.dead_lettered == 1
        assert stats.fused == 0
        assert stats.reconciles()
        (letter,) = pipeline.dead_letters.items()
        assert letter.reason.startswith("unexpected:")

    def test_flush_fault_hook_exercises_transient_retry(self):
        service, pipeline, good = self._rig()

        def hook(reading, attempt):
            if attempt == 1:
                raise SensorError("injected transient flush fault")

        pipeline.flush_fault = hook
        self._run_one(pipeline, good)
        stats = pipeline.stats()
        assert stats.retries == 1
        assert stats.fused == 1
        assert stats.dead_lettered == 0
        assert stats.reconciles()
