"""Unit tests for conflict resolution (Section 4.1.2, case 3)."""

import pytest

from repro.core import (
    ConflictResolver,
    FreshestReadingRule,
    HighestProbabilityRule,
    MovingRectangleRule,
    NormalizedReading,
    SensorSpec,
)
from repro.errors import ConflictError
from repro.geometry import Rect

UNIVERSE_AREA = 50000.0


def reading(rect: Rect, p_like: float = 0.9, time: float = 0.0,
            moving: bool = False, sensor: str = "S") -> NormalizedReading:
    spec = SensorSpec("T", 1.0, p_like, 1.0 - p_like, resolution=5.0,
                      time_to_live=1e9)
    return NormalizedReading(sensor, "tom", rect, time, spec, moving)


class TestMovingRule:
    def test_moving_component_wins(self):
        readings = [reading(Rect(0, 0, 10, 10), moving=False),
                    reading(Rect(100, 0, 110, 10), moving=True)]
        components = [{0}, {1}]
        rule = MovingRectangleRule()
        assert rule.filter(components, readings, [0, 1], 0.0,
                           UNIVERSE_AREA) == [1]

    def test_no_moving_passes_through(self):
        readings = [reading(Rect(0, 0, 10, 10)),
                    reading(Rect(100, 0, 110, 10))]
        rule = MovingRectangleRule()
        assert rule.filter([{0}, {1}], readings, [0, 1], 0.0,
                           UNIVERSE_AREA) == [0, 1]

    def test_both_moving_passes_both(self):
        readings = [reading(Rect(0, 0, 10, 10), moving=True),
                    reading(Rect(100, 0, 110, 10), moving=True)]
        rule = MovingRectangleRule()
        assert rule.filter([{0}, {1}], readings, [0, 1], 0.0,
                           UNIVERSE_AREA) == [0, 1]


class TestHighestProbabilityRule:
    def test_stronger_sensor_wins(self):
        readings = [reading(Rect(0, 0, 10, 10), p_like=0.99),
                    reading(Rect(100, 0, 110, 10), p_like=0.6)]
        rule = HighestProbabilityRule()
        assert rule.filter([{0}, {1}], readings, [0, 1], 0.0,
                           UNIVERSE_AREA) == [0]

    def test_bigger_region_can_beat_better_sensor(self):
        # Equation (5) weighs area: a room-sized claim from a modest
        # sensor can outscore a pinpoint claim from a great one.
        readings = [reading(Rect(0, 0, 1, 1), p_like=0.99),
                    reading(Rect(100, 0, 200, 100), p_like=0.9)]
        rule = HighestProbabilityRule()
        assert rule.filter([{0}, {1}], readings, [0, 1], 0.0,
                           UNIVERSE_AREA) == [1]


class TestFreshestRule:
    def test_newest_wins(self):
        readings = [reading(Rect(0, 0, 10, 10), time=0.0),
                    reading(Rect(100, 0, 110, 10), time=5.0)]
        rule = FreshestReadingRule()
        assert rule.filter([{0}, {1}], readings, [0, 1], 10.0,
                           UNIVERSE_AREA) == [1]


class TestResolver:
    def test_single_component_short_circuits(self):
        readings = [reading(Rect(0, 0, 10, 10))]
        assert ConflictResolver().resolve([{0}], readings, 0.0,
                                          UNIVERSE_AREA) == 0

    def test_paper_rule_order_moving_first(self):
        # Rule 1 beats rule 2: a moving weak reading wins over a
        # stationary strong one.
        readings = [reading(Rect(0, 0, 10, 10), p_like=0.99, moving=False),
                    reading(Rect(100, 0, 110, 10), p_like=0.6,
                            moving=True)]
        winner = ConflictResolver().resolve([{0}, {1}], readings, 0.0,
                                            UNIVERSE_AREA)
        assert winner == 1

    def test_probability_rule_when_nothing_moves(self):
        readings = [reading(Rect(0, 0, 10, 10), p_like=0.99),
                    reading(Rect(100, 0, 110, 10), p_like=0.6)]
        winner = ConflictResolver().resolve([{0}, {1}], readings, 0.0,
                                            UNIVERSE_AREA)
        assert winner == 0

    def test_freshness_tiebreak(self):
        readings = [reading(Rect(0, 0, 10, 10), time=0.0),
                    reading(Rect(100, 0, 110, 10), time=9.0)]
        winner = ConflictResolver().resolve([{0}, {1}], readings, 10.0,
                                            UNIVERSE_AREA)
        assert winner == 1

    def test_empty_components_rejected(self):
        with pytest.raises(ConflictError):
            ConflictResolver().resolve([], [], 0.0, UNIVERSE_AREA)

    def test_three_way_conflict(self):
        readings = [
            reading(Rect(0, 0, 10, 10), p_like=0.7),
            reading(Rect(100, 0, 110, 10), p_like=0.9),
            reading(Rect(200, 0, 210, 10), p_like=0.8),
        ]
        winner = ConflictResolver().resolve([{0}, {1}, {2}], readings,
                                            0.0, UNIVERSE_AREA)
        assert winner == 1
