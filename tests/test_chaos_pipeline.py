"""Chaos suite: randomized multi-object scenarios under fault plans.

Every run drives the paper's standard deployment through the ingestion
pipeline with a seeded :class:`repro.faults.FaultPlan` and asserts the
docs/FAULTS.md invariants, then proves reproducibility: the same seed
must yield a byte-identical FaultReport and final location estimates.

Seeds: the three fixed CI seeds plus any extras from the
``CHAOS_SEED`` environment variable (comma-separated), which the CI
chaos job uses to fan out.
"""

import os

import pytest

from repro.faults import LEVELS, FaultPlan, run_chaos

FIXED_SEEDS = (101, 202, 303)


def _seeds():
    extra = os.environ.get("CHAOS_SEED", "")
    env = [int(s) for s in extra.split(",") if s.strip()]
    return sorted(set(FIXED_SEEDS) | set(env))


SEEDS = _seeds()


class TestInvariantsUnderEscalation:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_invariants_hold(self, seed, level):
        out = run_chaos(seed, level=level, people=4, seconds=60)
        assert out.drained
        assert out.violations == []
        # The accounting invariant, spelled out.
        s = out.stats
        assert s.enqueued == s.fused + s.dropped + s.dead_lettered
        # Chaos must actually have happened (the plans are not inert).
        if level != "mild":
            assert out.report.total() > 0

    def test_drop_oldest_policy_also_reconciles(self):
        from repro.pipeline import OVERFLOW_DROP_OLDEST, PipelineConfig

        config = PipelineConfig(queue_capacity=4, workers=2,
                                overflow_policy=OVERFLOW_DROP_OLDEST)
        out = run_chaos(101, level="severe", people=4, seconds=60,
                        config=config)
        assert out.violations == []
        s = out.stats
        assert s.enqueued == s.fused + s.dropped + s.dead_lettered


class TestReproducibility:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_byte_identical(self, seed):
        a = run_chaos(seed, level="severe", people=4, seconds=60)
        b = run_chaos(seed, level="severe", people=4, seconds=60)
        assert a.report == b.report
        assert a.report_text == b.report_text
        assert a.estimates_text == b.estimates_text
        assert a.stats.enqueued == b.stats.enqueued
        assert a.stats.fused == b.stats.fused
        assert a.stats.dead_lettered == b.stats.dead_lettered

    def test_different_seeds_diverge(self):
        a = run_chaos(101, level="severe", people=4, seconds=60)
        b = run_chaos(202, level="severe", people=4, seconds=60)
        # Identical injection traffic for different seeds would mean
        # the plan is not actually consuming its seed.
        assert (a.report_text != b.report_text
                or a.estimates_text != b.estimates_text)


class TestCoverage:
    def test_severe_plan_exercises_at_least_six_injector_types(self):
        fired = set()
        for seed in SEEDS:
            out = run_chaos(seed, level="severe", people=5, seconds=90)
            assert out.violations == []
            fired |= {name.split("-")[0] for name in
                      out.report.injectors_fired()}
        # drop / duplicate / delay / flapping / clock-skew / reorder /
        # corrupt / flush-fault minus whatever a particular traffic
        # pattern left cold — at least six distinct types must fire.
        assert len(fired) >= 6, sorted(fired)

    def test_flapping_and_skew_fire_with_targeted_traffic(self):
        """Scoped injectors verifiably bite when their sensors report."""
        from repro.sim import Scenario

        scenario = Scenario(seed=11).standard_deployment()
        plan = FaultPlan(11, clock=scenario.clock)
        plan.flapping(4.0, 4.0, sensors=["RF-12"])
        plan.clock_skew(-2.0, sensors=["Ubi-18"])
        pipeline = scenario.use_pipeline(fault_plan=plan)
        try:
            adapters = {a.adapter_id: a
                        for a in scenario.deployment.adapters()}
            for t in range(16):
                scenario.clock.advance(1.0)
                adapters["RF-12"].badge_sighting("alice", float(t))
                from repro.geometry import Point
                adapters["Ubi-18"].tag_sighting("alice", Point(150, 20),
                                                float(t))
            plan.flush()
            assert pipeline.drain(timeout=30.0)
        finally:
            pipeline.stop()
        counts = plan.report().as_dict()
        assert counts["flapping"].get("suppressed", 0) > 0
        assert counts["clock-skew"].get("skewed", 0) == 16


@pytest.mark.slow
class TestRandomizedSweep:
    """Long randomized sweep — excluded from tier-1 (needs --runslow)."""

    def test_many_seeds_never_violate_invariants(self):
        for seed in range(9000, 9012):
            out = run_chaos(seed, level="severe", people=4, seconds=60)
            assert out.violations == [], (seed, out.violations)
            assert out.drained, seed

    def test_custom_plans_with_windows_and_scopes(self):
        from repro.sim import Scenario

        for seed in (5, 6, 7):
            scenario = Scenario(seed=seed).standard_deployment()
            scenario.add_people(3)
            plan = FaultPlan(seed * 31 + 1, clock=scenario.clock)
            plan.drop(0.3, window=(5.0, 20.0))
            plan.duplicate(0.2, copies=2, objects=["person-1"])
            plan.delay(0.2, 3.0, sensors=["RF-12", "RF-13", "RF-14"])
            plan.reorder(3)
            plan.flush_faults(0.2)
            pipeline = scenario.use_pipeline(fault_plan=plan)
            try:
                scenario.run(45)
                plan.flush()
                assert pipeline.drain(timeout=60.0)
                stats = pipeline.stats()
                assert stats.enqueued == (stats.fused + stats.dropped
                                          + stats.dead_lettered)
            finally:
                pipeline.stop()
