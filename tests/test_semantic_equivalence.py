"""Incremental-vs-oracle equivalence for the semantic trigger engine.

The incremental engine re-derives only the rules whose body atoms
could have changed; :data:`MODE_REFERENCE` rebuilds the knowledge base
and re-evaluates every rule on every epoch.  For ANY interleaving of
location updates, subscribes, unsubscribes, fact declarations and
clock ticks, the two must emit *identical* event streams — same
events, same order, same payloads.  Hypothesis drives both engines
through random programs and diffs the streams; the deterministic
tests pin the edges randomness finds slowly (dwell windows crossing
exactly at their boundary, mid-stream unsubscribe, near thresholds
flipping both directions).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model import Glob
from repro.reasoning.incremental import (
    MODE_INCREMENTAL,
    MODE_REFERENCE,
    LocationUpdate,
    SemanticTriggerEngine,
)
from repro.sim import siebel_floor

WORLD = siebel_floor()

OBJECTS = ("o0", "o1", "o2", "o3")

# Spots the movement strategy teleports objects between: a handful of
# rooms plus the corridor, each with two distinct standing positions
# so near/3 can flip without a region change.
_SPOT_REGIONS = ("SC/3/3104", "SC/3/3105", "SC/3/3102", "SC/3/Corridor")


def _spots():
    spots = []
    for name in _SPOT_REGIONS:
        rect = WORLD.resolve_symbolic(Glob.parse(name))
        for dx, dy in ((0.25, 0.25), (0.75, 0.75)):
            x = rect.min_x + dx * (rect.max_x - rect.min_x)
            y = rect.min_y + dy * (rect.max_y - rect.min_y)
            spots.append((name, (x, y)))
    # One position outside every symbolic region (region=None path).
    spots.append((None, (-50.0, -50.0)))
    return tuple(spots)


SPOTS = _spots()

RULES = (
    "in_room(P) :- located_within(P, 'SC/3/3104')",
    "at_fine(P) :- at(P, 'SC/3/3105')",
    "on_floor(P) :- located_within(P, 'SC/3')",
    "together(P, Q) :- colocated_at(P, Q, 'SC/3/3104'), distinct(P, Q)",
    "anywhere_pair(P, Q) :- colocated_at(P, Q, 'SC/3'), distinct(P, Q)",
    "close(P, Q) :- near(P, Q, 15.0), distinct(P, Q)",
    "tail(P) :- near(P, 'o0', 25.0), distinct(P, 'o0')",
    "camped(P) :- dwell(P, 'SC/3/3104', 2)",
    "lingering(P) :- dwell(P, 'SC/3/Corridor', 5)",
    "briefing(P, Q) :- colocated_at(P, Q, 'SC/3/3105'), "
    "team(P, 'blue'), distinct(P, Q)",
)

TEAMS = ("blue", "red")

# One program step: (dt, op).  Time advances monotonically; the dt
# choices straddle the dwell durations above so windows open and close
# at varied offsets (including 0.0 — several ops in one epoch).
_ops = st.one_of(
    st.tuples(st.just("move"),
              st.integers(0, len(OBJECTS) - 1),
              st.integers(0, len(SPOTS) - 1)),
    st.tuples(st.just("sub"), st.integers(0, len(RULES) - 1)),
    st.tuples(st.just("unsub"), st.integers(0, 7)),
    st.tuples(st.just("fact"),
              st.integers(0, len(OBJECTS) - 1),
              st.integers(0, len(TEAMS) - 1)),
    st.tuples(st.just("retract"),
              st.integers(0, len(OBJECTS) - 1),
              st.integers(0, len(TEAMS) - 1)),
    st.tuples(st.just("tick")),
)

programs = st.lists(
    st.tuples(st.sampled_from([0.0, 0.5, 1.0, 2.0, 3.0, 7.0]), _ops),
    min_size=1, max_size=24)


def run_program(mode, program):
    """Execute one generated program; return its full event stream."""
    engine = SemanticTriggerEngine(WORLD, mode=mode)
    events = []
    active = []
    now = 0.0
    for step, (dt, op) in enumerate(program):
        now += dt
        kind = op[0]
        if kind == "move":
            _, obj, spot = op
            region, center = SPOTS[spot]
            events.extend(engine.on_update(LocationUpdate(
                object_id=OBJECTS[obj], region=region, center=center,
                time=now)))
        elif kind == "sub":
            sid = f"s{step}"
            events.extend(engine.subscribe(sid, RULES[op[1]], now=now))
            active.append(sid)
        elif kind == "unsub":
            if active:
                sid = active.pop(op[1] % len(active))
                engine.unsubscribe(sid)
        elif kind == "fact":
            events.extend(engine.declare_fact(
                "team", OBJECTS[op[1]], TEAMS[op[2]], now=now))
        elif kind == "retract":
            events.extend(engine.retract_fact(
                "team", OBJECTS[op[1]], TEAMS[op[2]], now=now))
        else:
            events.extend(engine.tick(now))
    return events


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=programs)
def test_incremental_matches_reference(program):
    """The whole point: identical streams under any program."""
    assert run_program(MODE_INCREMENTAL, program) \
        == run_program(MODE_REFERENCE, program)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=programs)
def test_incremental_state_matches_oracle_snapshot(program):
    """After any program, a naive full re-evaluation of the
    incremental engine's final state finds no missed transition:
    the standing solution sets are exactly what the oracle derives."""
    engine = SemanticTriggerEngine(WORLD, mode=MODE_INCREMENTAL)
    active = []
    now = 0.0
    for step, (dt, op) in enumerate(program):
        now += dt
        kind = op[0]
        if kind == "move":
            _, obj, spot = op
            region, center = SPOTS[spot]
            engine.on_update(LocationUpdate(
                object_id=OBJECTS[obj], region=region, center=center,
                time=now))
        elif kind == "sub":
            sid = f"s{step}"
            engine.subscribe(sid, RULES[op[1]], now=now)
            active.append(sid)
        elif kind == "unsub":
            if active:
                engine.unsubscribe(active.pop(op[1] % len(active)))
        elif kind == "fact":
            engine.declare_fact("team", OBJECTS[op[1]], TEAMS[op[2]],
                                now=now)
        elif kind == "retract":
            engine.retract_fact("team", OBJECTS[op[1]], TEAMS[op[2]],
                                now=now)
        else:
            engine.tick(now)
    assert engine.evaluate_reference(now) == []


def _pair():
    return (SemanticTriggerEngine(WORLD, mode=MODE_INCREMENTAL),
            SemanticTriggerEngine(WORLD, mode=MODE_REFERENCE))


def _both(results):
    """Diff one epoch across the two engines; return the stream."""
    incremental, reference = results
    assert incremental == reference
    return incremental


class TestDwellBoundaries:
    """Dwell windows must cross at exactly entry + duration."""

    RULE = "camped(P) :- dwell(P, 'SC/3/3104', 2)"
    SPOT = SPOTS[0]

    def _enter(self, engines, now):
        region, center = self.SPOT
        return [engine.on_update(LocationUpdate(
            object_id="o0", region=region, center=center, time=now))
            for engine in engines]

    def test_fires_exactly_at_boundary(self):
        engines = _pair()
        for engine in engines:
            engine.subscribe("s1", self.RULE, now=0.0)
        self._enter(engines, 10.0)
        assert _both([e.tick(11.9) for e in engines]) == []
        fired = _both([e.tick(12.0) for e in engines])
        assert [(e["transition"], e["bindings"]) for e in fired] \
            == [("enter", {"P": "o0"})]

    def test_reentry_restarts_the_window(self):
        engines = _pair()
        for engine in engines:
            engine.subscribe("s1", self.RULE, now=0.0)
        self._enter(engines, 0.0)
        corridor = SPOTS[6]
        for engine in engines:  # leave at 1.0: window cancelled
            engine.on_update(LocationUpdate(
                object_id="o0", region=corridor[0],
                center=corridor[1], time=1.0))
        self._enter(engines, 1.5)
        assert _both([e.tick(3.0) for e in engines]) == []
        fired = _both([e.tick(3.5) for e in engines])
        assert [e["transition"] for e in fired] == ["enter"]

    def test_subscribe_after_entry_counts_existing_dwell(self):
        """A rule subscribed mid-stay sees dwell from the entry time."""
        engines = _pair()
        self._enter(engines, 0.0)
        fired = _both([engine.subscribe("s1", self.RULE, now=5.0)
                       for engine in engines])
        assert [e["transition"] for e in fired] == ["enter"]

    def test_dwell_fires_during_unrelated_update(self):
        """Another object's movement settles an expired window."""
        engines = _pair()
        for engine in engines:
            engine.subscribe("s1", self.RULE, now=0.0)
        self._enter(engines, 0.0)
        region, center = SPOTS[2]
        fired = _both([engine.on_update(LocationUpdate(
            object_id="o1", region=region, center=center, time=6.0))
            for engine in engines])
        assert [(e["transition"], e["bindings"]) for e in fired] \
            == [("enter", {"P": "o0"})]


class TestMidStreamChurn:
    """Subscribe/unsubscribe while solutions are standing."""

    def test_unsubscribe_silences_only_that_rule(self):
        engines = _pair()
        for engine in engines:
            engine.subscribe("s1", RULES[0], now=0.0)
            engine.subscribe("s2", RULES[2], now=0.0)
        region, center = SPOTS[0]
        enters = _both([engine.on_update(LocationUpdate(
            object_id="o0", region=region, center=center, time=1.0))
            for engine in engines])
        assert sorted(e["subscription_id"] for e in enters) \
            == ["s1", "s2"]
        for engine in engines:
            assert engine.unsubscribe("s1")
        off = SPOTS[-1]
        leaves = _both([engine.on_update(LocationUpdate(
            object_id="o0", region=off[0], center=off[1], time=2.0))
            for engine in engines])
        assert [e["subscription_id"] for e in leaves] == ["s2"]
        assert all(e["transition"] == "leave" for e in leaves)

    def test_resubscribing_replays_initial_activation(self):
        engines = _pair()
        region, center = SPOTS[0]
        for engine in engines:
            engine.on_update(LocationUpdate(
                object_id="o0", region=region, center=center, time=0.0))
        first = _both([engine.subscribe("s1", RULES[0], now=1.0)
                       for engine in engines])
        assert [e["transition"] for e in first] == ["enter"]
        for engine in engines:
            engine.unsubscribe("s1")
        again = _both([engine.subscribe("s1b", RULES[0], now=2.0)
                       for engine in engines])
        assert [e["transition"] for e in again] == ["enter"]


class TestNearFlips:
    def test_pair_flips_both_directions(self):
        engines = _pair()
        rule = "close(P, Q) :- near(P, Q, 15.0), distinct(P, Q)"
        for engine in engines:
            engine.subscribe("s1", rule, now=0.0)
        region, _ = SPOTS[0]
        for engine in engines:
            engine.on_update(LocationUpdate(
                object_id="o0", region=region, center=(10.0, 10.0),
                time=1.0))
        enters = _both([engine.on_update(LocationUpdate(
            object_id="o1", region=region, center=(12.0, 10.0),
            time=2.0)) for engine in engines])
        assert sorted(tuple(sorted(e["bindings"].items()))
                      for e in enters) == [
            (("P", "o0"), ("Q", "o1")), (("P", "o1"), ("Q", "o0"))]
        leaves = _both([engine.on_update(LocationUpdate(
            object_id="o1", region=region, center=(40.0, 10.0),
            time=3.0)) for engine in engines])
        assert all(e["transition"] == "leave" for e in leaves)
        assert len(leaves) == 2

    def test_threshold_is_strict(self):
        """distance == threshold is NOT near (matches proximity())."""
        engines = _pair()
        rule = "close(P, Q) :- near(P, Q, 10.0), distinct(P, Q)"
        for engine in engines:
            engine.subscribe("s1", rule, now=0.0)
        region, _ = SPOTS[0]
        for engine in engines:
            engine.on_update(LocationUpdate(
                object_id="o0", region=region, center=(0.0, 0.0),
                time=1.0))
        at_threshold = _both([engine.on_update(LocationUpdate(
            object_id="o1", region=region, center=(10.0, 0.0),
            time=2.0)) for engine in engines])
        assert at_threshold == []
        inside = _both([engine.on_update(LocationUpdate(
            object_id="o1", region=region, center=(9.9, 0.0),
            time=3.0)) for engine in engines])
        assert len(inside) == 2


def test_incremental_prunes_while_reference_rebuilds():
    """Sanity on the stats the benchmark gate relies on."""
    incremental, reference = _pair()
    for i, rule in enumerate(RULES[:6]):
        incremental.subscribe(f"s{i}", rule, now=0.0)
        reference.subscribe(f"s{i}", rule, now=0.0)
    region, center = SPOTS[2]
    for t in range(1, 9):
        update = LocationUpdate(object_id="o0", region=region,
                                center=center, time=float(t))
        assert incremental.on_update(update) \
            == reference.on_update(update)
    assert incremental.stats()["kb_rebuilds"] == 1
    assert reference.stats()["kb_rebuilds"] > 1
    assert incremental.stats()["pruned"] > 0
    assert incremental.stats()["evaluated"] \
        < reference.stats()["evaluated"]


def test_invalid_rules_are_rejected():
    from repro.errors import ReasoningError
    engine = SemanticTriggerEngine(WORLD, mode=MODE_INCREMENTAL)
    for bad in (
        "just_a_fact(P)",                       # no body
        "r(P) :- near(P, Q, X)",                # non-numeric threshold
        "r(P) :- dwell(P, 'SC/3/3104', -2)",    # negative duration
        "r(P, P) :- located_within(P, 'SC/3')",  # repeated head var
        "r('alice') :- located_within('alice', 'SC/3')",  # ground head
    ):
        with pytest.raises(ReasoningError):
            engine.subscribe("bad", bad, now=0.0)
        assert not engine.unsubscribe("bad")
