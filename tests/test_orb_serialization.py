"""Tests for the ORB wire codec."""

import pytest

from repro.core import LocationEstimate, ProbabilityBucket
from repro.errors import OrbError
from repro.geometry import Point, Rect, Segment
from repro.model import Glob
from repro.orb import dumps, loads


def roundtrip(value):
    return loads(dumps(value))


class TestPrimitives:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -17, 3.25, "hello", "",
        [1, 2, 3], {"a": 1, "b": [True, None]},
    ])
    def test_json_values(self, value):
        assert roundtrip(value) == value

    def test_tuples_become_lists(self):
        assert roundtrip((1, 2)) == [1, 2]

    def test_nested_structures(self):
        value = {"rects": [Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)],
                 "meta": {"point": Point(1, 2, 3)}}
        back = roundtrip(value)
        assert back["rects"][1] == Rect(2, 2, 3, 3)
        assert back["meta"]["point"] == Point(1, 2, 3)


class TestValueTypes:
    def test_point(self):
        assert roundtrip(Point(1.5, -2.5, 3.0)) == Point(1.5, -2.5, 3.0)

    def test_rect(self):
        assert roundtrip(Rect(0, 1, 2, 3)) == Rect(0, 1, 2, 3)

    def test_segment(self):
        seg = Segment(Point(0, 0), Point(1, 1))
        assert roundtrip(seg) == seg

    def test_glob(self):
        glob = Glob.parse("SC/3/3216/(12,3,4)")
        assert roundtrip(glob) == glob

    def test_bucket(self):
        assert roundtrip(ProbabilityBucket.HIGH) is ProbabilityBucket.HIGH

    def test_location_estimate(self):
        estimate = LocationEstimate(
            object_id="tom", rect=Rect(0, 0, 1, 1), probability=0.9,
            bucket=ProbabilityBucket.HIGH, time=12.5,
            sources=("Ubi-1", "RF-2"), moving=True,
            symbolic="SC/3/3105", posterior=0.1)
        back = roundtrip(estimate)
        assert back == estimate
        assert back.sources == ("Ubi-1", "RF-2")


class TestErrors:
    def test_unknown_type_rejected(self):
        class Mystery:
            pass
        with pytest.raises(OrbError):
            dumps(Mystery())

    def test_non_string_keys_rejected(self):
        with pytest.raises(OrbError):
            dumps({1: "a"})

    def test_reserved_key_rejected(self):
        with pytest.raises(OrbError):
            dumps({"__type__": "sneaky"})

    def test_unknown_wire_type_rejected(self):
        with pytest.raises(OrbError):
            loads(b'{"__type__": "NoSuchThing"}')

    def test_garbage_bytes_rejected(self):
        with pytest.raises(OrbError):
            loads(b"not json at all {")

    def test_non_finite_floats_rejected_at_encode(self):
        # NaN/Infinity are not JSON; letting them through would
        # produce frames a strict peer cannot parse.  Reject at the
        # encode boundary so the caller gets a local, actionable
        # error instead of a remote decode failure.
        import math
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(OrbError):
                dumps({"x": bad})
            with pytest.raises(OrbError):
                dumps([1.0, bad])
