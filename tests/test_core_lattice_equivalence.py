"""Naive-vs-optimized equivalence for the fusion hot path.

The optimized builders (sweep closure, area-sorted Hasse, memoized
overlaps, incremental evolution, batched probabilities) must be
indistinguishable from the original quadratic reference — identical
node rect-sets, Hasse edges, sources, components and bit-for-bit
identical probabilities.  ``RegionLattice.build_reference`` keeps the
pre-optimization algorithm alive purely for these tests.
"""

from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CellDecomposition,
    FusionEngine,
    NormalizedReading,
    RegionLattice,
    SensorSpec,
    batch_region_probabilities,
    eq7_region_probability,
    exact_region_probability,
)
from repro.geometry import Rect

UNIVERSE = Rect(0.0, 0.0, 200.0, 100.0)

SPEC = SensorSpec("Test", carry_probability=0.95,
                  detection_probability=0.9, misident_probability=0.05,
                  time_to_live=30.0)

# Coarse coordinates on purpose: snapping to a small grid makes rects
# share edges, duplicate, nest and tie on area — the cases where the
# closure, Hasse linking and source assignment can actually diverge.
coords = st.integers(min_value=0, max_value=19)


@st.composite
def grid_rects(draw):
    x = draw(coords) * 10.0
    y = draw(coords) * 5.0
    w = draw(st.integers(min_value=1, max_value=8)) * 10.0
    h = draw(st.integers(min_value=1, max_value=8)) * 5.0
    return Rect(x, y, min(UNIVERSE.max_x, x + w),
                min(UNIVERSE.max_y, y + h))


def lattice_fingerprint(lattice):
    """Everything observable about a lattice, keyed by rectangle (node
    ids are creation-order dependent and deliberately excluded)."""
    def rect_key(node_id):
        node = lattice.node(node_id)
        if node.is_top:
            return "TOP"
        if node.is_bottom:
            return "BOTTOM"
        r = node.rect
        return (r.min_x, r.min_y, r.max_x, r.max_y)

    nodes = {}
    for node in lattice.region_nodes():
        r = node.rect
        nodes[(r.min_x, r.min_y, r.max_x, r.max_y)] = \
            tuple(sorted(node.sources))
    edges = set()
    for node in lattice.nodes():
        for child in node.children:
            edges.add((rect_key(node.node_id), rect_key(child)))
    components = sorted(tuple(sorted(c)) for c in lattice.components())
    return nodes, frozenset(edges), components


class TestLatticeEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(grid_rects(), min_size=0, max_size=7))
    def test_optimized_matches_reference(self, rects):
        fast = RegionLattice(rects, UNIVERSE)
        naive = RegionLattice.build_reference(rects, UNIVERSE)
        assert lattice_fingerprint(fast) == lattice_fingerprint(naive)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(grid_rects(), min_size=0, max_size=7))
    def test_invariants_hold(self, rects):
        RegionLattice(rects, UNIVERSE).check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(grid_rects(), min_size=1, max_size=6),
           grid_rects())
    def test_closure_with_added_matches_full_build(self, rects, extra):
        before = RegionLattice(rects, UNIVERSE)
        evolved = RegionLattice.closure_with_added(
            before.closure_boxes(),
            (extra.min_x, extra.min_y, extra.max_x, extra.max_y))
        seeded = RegionLattice(rects + [extra], UNIVERSE,
                               seed_boxes=evolved)
        full = RegionLattice(rects + [extra], UNIVERSE)
        assert lattice_fingerprint(seeded) == lattice_fingerprint(full)
        seeded.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(grid_rects(), min_size=2, max_size=6),
           st.integers(min_value=0, max_value=5))
    def test_closure_with_removed_matches_full_build(self, rects, drop):
        drop = drop % len(rects)
        removed = rects[drop]
        survivors = rects[:drop] + rects[drop + 1:]
        # Remove every duplicate of the dropped rectangle, the same
        # granularity the engine's box-set diff operates at.
        removed_box = (removed.min_x, removed.min_y,
                       removed.max_x, removed.max_y)
        survivors = [r for r in survivors
                     if (r.min_x, r.min_y, r.max_x, r.max_y)
                     != removed_box]
        before = RegionLattice(rects, UNIVERSE)
        new_inputs = {(r.min_x, r.min_y, r.max_x, r.max_y)
                      for r in survivors}
        evolved = before.closure_with_removed(removed_box, new_inputs)
        seeded = RegionLattice(survivors, UNIVERSE, seed_boxes=evolved)
        full = RegionLattice(survivors, UNIVERSE)
        assert lattice_fingerprint(seeded) == lattice_fingerprint(full)
        seeded.check_invariants()


class TestIntersectionMemo:
    def test_components_and_sources_recompute_nothing(self):
        """The satellite's call-count check: pairwise overlaps are
        discovered once during construction; ``components()`` and
        source assignment reuse the memo instead of calling
        ``Rect.intersection_area`` again."""
        rects = [Rect(0, 0, 40, 30), Rect(20, 10, 60, 40),
                 Rect(100, 50, 140, 80), Rect(110, 55, 130, 70)]
        lattice = RegionLattice(rects, UNIVERSE)
        with mock.patch.object(
                Rect, "intersection_area",
                side_effect=AssertionError(
                    "components()/sources must reuse the memo")) as patched:
            components = lattice.components()
            assert patched.call_count == 0
        assert sorted(tuple(sorted(c)) for c in components) == \
            [(0, 1), (2, 3)]


class TestProbabilityEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(grid_rects(), min_size=0, max_size=5),
           st.lists(st.tuples(
               st.floats(0.05, 0.99), st.floats(0.01, 0.5)),
               min_size=0, max_size=5),
           st.lists(grid_rects(), min_size=1, max_size=6))
    def test_batch_bitwise_equal_to_scalar(self, rects, pqs, regions):
        readings = [(r, p, q)
                    for r, (p, q) in zip(rects, pqs)]
        for exact, scalar in ((True, exact_region_probability),
                              (False, eq7_region_probability)):
            batch = batch_region_probabilities(
                regions, readings, UNIVERSE.area, exact=exact)
            for region, got in zip(regions, batch):
                assert got == scalar(region, readings, UNIVERSE.area)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(grid_rects(),
                              st.floats(0.5, 0.99),
                              st.floats(0.01, 0.4)),
                    min_size=0, max_size=4),
           grid_rects())
    def test_probability_in_rect_matches_augmented_reference(
            self, readings, query):
        cells = CellDecomposition(readings, UNIVERSE)
        augmented = CellDecomposition(
            list(readings) + [(query, 1.0, 1.0)], UNIVERSE)
        reference = augmented.probability_in_reading(len(readings))
        assert abs(cells.probability_in_rect(query) - reference) <= 1e-9


def _reading(i, rect, t):
    return NormalizedReading(sensor_id=f"S-{i}", object_id="walker",
                             rect=rect, time=t, spec=SPEC)


class TestIncrementalEngineEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(grid_rects(), min_size=3, max_size=9),
           st.lists(st.integers(min_value=0, max_value=2),
                    min_size=4, max_size=8))
    def test_incremental_fuse_equals_full_fuse(self, rects, ops):
        """Random add/expire/swap sequences: the incremental engine's
        distributions are bit-for-bit those of a from-scratch engine."""
        incremental = FusionEngine(incremental=True)
        full = FusionEngine(incremental=False)
        pool = list(rects)
        active = [pool.pop()]
        t = 0.0
        counter = 0
        for op in ops:
            t += 1.0
            if op == 0 and pool:
                active.append(pool.pop())
            elif op == 1 and len(active) > 1:
                active.pop(0)
            elif op == 2 and pool and len(active) > 1:
                active.pop(0)
                active.append(pool.pop())
            readings = []
            for rect in active:
                readings.append(_reading(counter, rect, t))
                counter += 1
            a = incremental.fuse("walker", readings, UNIVERSE, t)
            b = full.fuse("walker", readings, UNIVERSE, t)
            assert lattice_fingerprint(a.lattice) == \
                lattice_fingerprint(b.lattice)
            probs_a = {(n.rect.min_x, n.rect.min_y, n.rect.max_x,
                        n.rect.max_y): (n.probability, n.confidence)
                       for n in a.lattice.region_nodes()}
            probs_b = {(n.rect.min_x, n.rect.min_y, n.rect.max_x,
                        n.rect.max_y): (n.probability, n.confidence)
                       for n in b.lattice.region_nodes()}
            assert probs_a == probs_b
            assert a.winning_component == b.winning_component
            a.lattice.check_invariants()
        stats = incremental.stats()
        assert stats["incremental_reuses"] + stats["full_builds"] == \
            len(ops)
