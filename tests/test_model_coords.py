"""Unit tests for repro.model.coords — hierarchical coordinate frames."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CoordinateFrameError
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model import FrameRegistry, FrameTransform


@pytest.fixture
def building() -> FrameRegistry:
    """SC building at (100, 50) world; floor 3 at z=30; room 3216 at
    (20, 60) on the floor."""
    registry = FrameRegistry()
    registry.register("SC", "", FrameTransform(dx=100.0, dy=50.0))
    registry.register("SC/3", "SC", FrameTransform(dz=30.0))
    registry.register("SC/3/3216", "SC/3", FrameTransform(dx=20.0, dy=60.0))
    registry.register("SC/3/3105", "SC/3", FrameTransform(dx=140.0))
    return registry


class TestTransform:
    def test_apply_translation(self):
        t = FrameTransform(dx=10, dy=-5, dz=2)
        assert t.apply(Point(1, 1, 1)) == Point(11, -4, 3)

    def test_invert_undoes_apply(self):
        t = FrameTransform(dx=3, dy=4, dz=5, rotation=0.7)
        p = Point(1.5, -2.5, 3.0)
        assert t.invert(t.apply(p)).almost_equals(p, 1e-9)

    def test_rotation_quarter_turn(self):
        t = FrameTransform(rotation=math.pi / 2)
        assert t.apply(Point(1, 0)).almost_equals(Point(0, 1), 1e-12)


class TestRegistry:
    def test_register_duplicate_rejected(self, building):
        with pytest.raises(CoordinateFrameError):
            building.register("SC", "", FrameTransform())

    def test_register_under_unknown_parent_rejected(self):
        registry = FrameRegistry()
        with pytest.raises(CoordinateFrameError):
            registry.register("SC/3", "SC", FrameTransform())

    def test_cannot_register_root(self):
        with pytest.raises(CoordinateFrameError):
            FrameRegistry().register("", "", FrameTransform())

    def test_knows(self, building):
        assert building.knows("")
        assert building.knows("SC/3/3216")
        assert not building.knows("XX")

    def test_parent_of(self, building):
        assert building.parent_of("SC/3/3216") == "SC/3"
        with pytest.raises(CoordinateFrameError):
            building.parent_of("")

    def test_frames_listing(self, building):
        assert "SC/3" in building.frames()


class TestConversion:
    def test_room_to_world(self, building):
        # Room origin -> floor (20, 60, 0) -> building (20, 60, 30)
        # -> world (120, 110, 30).
        world = building.convert_point(Point(0, 0), "SC/3/3216", "")
        assert world == Point(120.0, 110.0, 30.0)

    def test_world_back_to_room(self, building):
        room = building.convert_point(Point(120, 110, 30), "", "SC/3/3216")
        assert room.almost_equals(Point(0, 0, 0))

    def test_room_to_sibling_room(self, building):
        # The paper: "coordinates can be easily converted from one
        # system to another" — here 3216-frame to 3105-frame.
        p = building.convert_point(Point(5, 5), "SC/3/3216", "SC/3/3105")
        assert p.almost_equals(Point(5 + 20 - 140, 5 + 60, 0))

    def test_same_frame_is_identity(self, building):
        p = Point(3, 4, 5)
        assert building.convert_point(p, "SC/3", "SC/3") is p

    def test_unknown_frames_rejected(self, building):
        with pytest.raises(CoordinateFrameError):
            building.convert_point(Point(0, 0), "nope", "")
        with pytest.raises(CoordinateFrameError):
            building.convert_point(Point(0, 0), "", "nope")

    def test_convert_rect(self, building):
        rect = building.convert_rect(Rect(0, 0, 10, 10), "SC/3/3216", "SC/3")
        assert rect == Rect(20, 60, 30, 70)

    def test_convert_rect_with_rotation_returns_mbr(self):
        registry = FrameRegistry()
        registry.register("R", "", FrameTransform(rotation=math.pi / 4))
        rect = registry.convert_rect(Rect(0, 0, 10, 10), "R", "")
        # A rotated unit square's MBR is larger than the square.
        assert rect.area > 100.0

    def test_convert_polygon(self, building):
        poly = Polygon([Point(0, 0), Point(10, 0), Point(0, 10)])
        moved = building.convert_polygon(poly, "SC/3/3216", "SC/3")
        assert moved.vertices[0] == Point(20, 60)
        assert math.isclose(moved.area, poly.area)

    def test_convert_segment(self, building):
        seg = building.convert_segment(
            Segment(Point(0, 0), Point(1, 0)), "SC", "")
        assert seg.start == Point(100, 50)


class TestConversionProperties:
    @given(st.floats(-100, 100), st.floats(-100, 100))
    def test_roundtrip_through_room(self, x, y):
        registry = FrameRegistry()
        registry.register("B", "", FrameTransform(dx=7, dy=-3, rotation=0.3))
        registry.register("B/r", "B", FrameTransform(dx=1, dy=2,
                                                     rotation=-1.1))
        p = Point(x, y)
        there = registry.convert_point(p, "B/r", "")
        back = registry.convert_point(there, "", "B/r")
        assert back.almost_equals(p, 1e-6)

    @given(st.floats(-100, 100), st.floats(-100, 100))
    def test_sibling_conversion_composes(self, x, y):
        registry = FrameRegistry()
        registry.register("B", "", FrameTransform(dx=5))
        registry.register("B/a", "B", FrameTransform(dx=10, dy=10))
        registry.register("B/b", "B", FrameTransform(dx=-10, dy=4))
        p = Point(x, y)
        direct = registry.convert_point(p, "B/a", "B/b")
        via_root = registry.convert_point(
            registry.convert_point(p, "B/a", ""), "", "B/b")
        assert direct.almost_equals(via_root, 1e-6)
