"""Tests for the navigation graph and path distance."""

import pytest

from repro.errors import ReasoningError
from repro.geometry import Point
from repro.reasoning import Graph, NavigationGraph
from repro.sim import generate_office_floor, paper_floor, siebel_floor


class TestGraph:
    def test_add_and_query(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        assert g.nodes() == ["a", "b", "c"]
        assert g.edge_count() == 2
        assert {e.target for e in g.neighbors("b")} == {"a", "c"}

    def test_negative_weight_rejected(self):
        with pytest.raises(ReasoningError):
            Graph().add_edge("a", "b", -1.0)

    def test_shortest_path_simple(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 1.0)
        g.add_edge("a", "c", 5.0)
        distance, path = g.shortest_path("a", "c")
        assert distance == 2.0
        assert path == ["a", "b", "c"]

    def test_same_node(self):
        g = Graph()
        g.add_node("a")
        assert g.shortest_path("a", "a") == (0.0, ["a"])

    def test_unreachable(self):
        g = Graph()
        g.add_node("a")
        g.add_node("z")
        assert g.shortest_path("a", "z") is None

    def test_unknown_node_rejected(self):
        g = Graph()
        g.add_node("a")
        with pytest.raises(ReasoningError):
            g.shortest_path("a", "zzz")
        with pytest.raises(ReasoningError):
            g.neighbors("zzz")

    def test_restricted_edges_excluded_by_default(self):
        g = Graph()
        g.add_edge("a", "b", 1.0, restricted=True)
        assert g.shortest_path("a", "b") is None
        assert g.shortest_path("a", "b", allow_restricted=True) == \
            (1.0, ["a", "b"])

    def test_restricted_edge_avoided_when_detour_exists(self):
        g = Graph()
        g.add_edge("a", "b", 1.0, restricted=True)
        g.add_edge("a", "c", 2.0)
        g.add_edge("c", "b", 2.0)
        distance, path = g.shortest_path("a", "b")
        assert path == ["a", "c", "b"]
        assert distance == 4.0

    def test_reachable_from(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 1.0, restricted=True)
        g.add_node("z")
        assert g.reachable_from("a") == {"a", "b"}
        assert g.reachable_from("a", allow_restricted=True) == \
            {"a", "b", "c"}


class TestNavigationGraph:
    def test_paper_floor_connectivity(self):
        nav = NavigationGraph(paper_floor())
        # 3105 is behind restricted doors.
        assert nav.path_distance("CS/Floor3/NetLab",
                                 "CS/Floor3/3105") is None
        assert nav.path_distance("CS/Floor3/NetLab", "CS/Floor3/3105",
                                 allow_restricted=True) is not None

    def test_route_lists_doors(self):
        nav = NavigationGraph(paper_floor())
        route = nav.route("CS/Floor3/NetLab", "CS/Floor3/HCILab")
        assert route is not None
        assert route.regions[0] == "CS/Floor3/NetLab"
        assert route.regions[-1] == "CS/Floor3/HCILab"
        assert "CS/Floor3/Door-NetLab" in route.doors
        assert "CS/Floor3/Door-HCILab" in route.doors

    def test_path_distance_at_least_euclidean(self):
        nav = NavigationGraph(siebel_floor())
        pairs = [("SC/3/3102", "SC/3/3110"),
                 ("SC/3/3216", "SC/3/3226"),
                 ("SC/3/3104", "SC/3/ConferenceRoom")]
        for a, b in pairs:
            path = nav.path_distance(a, b, allow_restricted=True)
            euclid = nav.euclidean_distance(a, b)
            assert path is not None
            assert path >= euclid - 1e-9

    def test_point_to_point_same_room_is_straight_line(self):
        nav = NavigationGraph(siebel_floor())
        a = Point(150, 10)
        b = Point(160, 20)
        assert nav.path_distance_between_points(
            a, b, allow_restricted=True) == pytest.approx(
                a.distance_to(b))

    def test_point_to_point_across_rooms(self):
        nav = NavigationGraph(siebel_floor())
        a = Point(50, 20)     # room 3102
        b = Point(350, 20)    # room 3110
        distance = nav.path_distance_between_points(a, b)
        assert distance is not None
        assert distance > a.distance_to(b)

    def test_generated_floor_fully_connected(self):
        world = generate_office_floor(rooms_per_side=5)
        nav = NavigationGraph(world)
        rooms = [n for n in nav.graph.nodes() if n != "GEN/1"]
        start = rooms[0]
        reachable = nav.graph.reachable_from(start)
        assert set(rooms) <= reachable
