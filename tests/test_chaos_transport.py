"""Transport partition/reconnect chaos: the ORB seam.

``Orb.resolve(reference, wrap=plan.wrap_transport)`` decorates one
proxy's transport with the plan's partition injectors: inside a
partition window every invocation raises
:class:`~repro.errors.TransportError`; when the window closes the same
proxy works again (the "reconnect" — no state to rebuild, exactly like
the paper's CORBA stubs).  RF badge readings (TTL 60 s) are used so
locations survive across the outage.
"""

import pytest

from repro.errors import TransportError
from repro.faults import FaultPlan
from repro.sim import Scenario


def _scenario():
    scenario = Scenario(seed=13).standard_deployment()
    adapters = {a.adapter_id: a for a in scenario.deployment.adapters()}
    return scenario, adapters["RF-12"]


class TestInprocPartition:
    def test_partition_blocks_then_heals(self):
        scenario, rf = _scenario()
        rf.badge_sighting("alice", 0.0)
        plan = FaultPlan(7, clock=scenario.clock)
        plan.partition([(10.0, 20.0)])
        reference = scenario.publish()
        proxy = scenario.orb.resolve(reference,
                                     wrap=plan.wrap_transport)

        # Before the window: traffic flows.
        estimate = proxy.locate("alice")
        assert "RF-12" in estimate.sources

        scenario.clock.advance(15.0)  # now 15.0: inside the partition
        with pytest.raises(TransportError):
            proxy.locate("alice")
        with pytest.raises(TransportError):
            proxy.tracked_objects()

        scenario.clock.advance(10.0)  # now 25.0: healed
        estimate = proxy.locate("alice")
        assert "RF-12" in estimate.sources

        counts = plan.report().as_dict()["partition"]
        assert counts["blocked"] == 2
        assert counts["invocations"] >= 4

    def test_unwrapped_proxy_is_unaffected(self):
        """The wrap decorates one proxy only — no shared-cache bleed."""
        scenario, rf = _scenario()
        rf.badge_sighting("alice", 0.0)
        plan = FaultPlan(7, clock=scenario.clock)
        plan.partition([(0.0, 1000.0)])
        reference = scenario.publish()
        faulty = scenario.orb.resolve(reference,
                                      wrap=plan.wrap_transport)
        clean = scenario.orb.resolve(reference)
        with pytest.raises(TransportError):
            faulty.locate("alice")
        assert "RF-12" in clean.locate("alice").sources

    def test_report_is_deterministic(self):
        def run():
            scenario, rf = _scenario()
            plan = FaultPlan(3, clock=scenario.clock)
            plan.partition([(5.0, 10.0), (15.0, 20.0)])
            reference = scenario.publish()
            proxy = scenario.orb.resolve(reference,
                                         wrap=plan.wrap_transport)
            for t in range(0, 24, 2):
                rf.badge_sighting("bob", float(t))
                try:
                    proxy.locate("bob")
                except TransportError:
                    pass
                scenario.clock.advance(2.0)
            return plan.report().as_text()

        assert run() == run()


class TestTcpPartition:
    def test_partition_over_tcp(self):
        scenario, rf = _scenario()
        rf.badge_sighting("alice", 0.0)
        plan = FaultPlan(7, clock=scenario.clock)
        plan.partition([(10.0, 20.0)])
        reference = scenario.publish(listen_tcp=True)
        assert reference.startswith("tcp://")
        try:
            proxy = scenario.orb.resolve(reference,
                                         wrap=plan.wrap_transport)
            estimate = proxy.locate("alice")
            assert "RF-12" in estimate.sources

            scenario.clock.advance(15.0)
            with pytest.raises(TransportError):
                proxy.locate("alice")

            scenario.clock.advance(10.0)
            estimate = proxy.locate("alice")
            assert "RF-12" in estimate.sources
            assert plan.report().as_dict()["partition"]["blocked"] == 1
        finally:
            scenario.orb.shutdown()
