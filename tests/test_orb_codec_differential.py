"""Differential suite: binary wire codec vs tagged JSON.

The binary codec's contract is value-for-value identity with the JSON
codec: for every message both accept,
``wire.loads(wire.dumps(x)) == serialization.loads(serialization.dumps(x))``.
Randomized messages over the full JSON value model and every
registered wire type pin that here, plus the fallback rules (a
registered-but-unpacked type raises :class:`BinaryUnsupported`, never
a wrong answer) and mixed-codec fleet interop via negotiation.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import ProbabilityBucket
from repro.core.estimate import LocationEstimate
from repro.errors import OrbError
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model import Glob
from repro.orb import Orb, serialization, wire
from repro.orb.transport import TcpServer, TcpTransport
from repro.pipeline import PipelineReading

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
coord = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
# Wire strings: the JSON codec reserves the __type__ dict key, but any
# text is fine as a value.
texts = st.text(max_size=40)

points = st.builds(Point, coord, coord, coord)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


@st.composite
def segments(draw):
    start = draw(points)
    dx = draw(st.floats(min_value=0.25, max_value=100.0))
    dy = draw(st.floats(min_value=-100.0, max_value=100.0))
    return Segment(start, Point(start.x + dx, start.y + dy, start.z))


@st.composite
def polygons(draw):
    # Regular polygons are never degenerate or collinear.
    cx = draw(st.floats(min_value=-1e4, max_value=1e4))
    cy = draw(st.floats(min_value=-1e4, max_value=1e4))
    sides = draw(st.integers(min_value=3, max_value=8))
    radius = draw(st.floats(min_value=1.0, max_value=100.0))
    return Polygon([
        Point(cx + radius * math.cos(2 * math.pi * i / sides),
              cy + radius * math.sin(2 * math.pi * i / sides))
        for i in range(sides)])

glob_atom = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABC0123456789", min_size=1,
    max_size=8)
# GLOB coordinate leaves render as plain decimals (no exponents), so
# stick to dyadic values that repr() cleanly: n/8 is exact in binary.
glob_coord = st.integers(min_value=-80000, max_value=80000) \
    .map(lambda n: n / 8.0)
glob_points = st.lists(
    st.builds(Point, glob_coord, glob_coord, glob_coord),
    min_size=1, max_size=3).map(tuple)
globs = st.builds(
    lambda path, coords: Glob(tuple(path), coords),
    st.lists(glob_atom, min_size=1, max_size=4),
    st.one_of(st.none(), glob_points))

buckets = st.sampled_from(list(ProbabilityBucket))

estimates = st.builds(
    LocationEstimate,
    object_id=texts,
    rect=rects(),
    probability=st.floats(min_value=0.0, max_value=1.0),
    bucket=buckets,
    time=coord,
    sources=st.lists(texts, max_size=4).map(tuple),
    moving=st.booleans(),
    symbolic=st.one_of(st.none(), texts),
    posterior=st.floats(min_value=0.0, max_value=1.0),
)

readings = st.builds(
    PipelineReading,
    sensor_id=texts,
    glob_prefix=texts,
    sensor_type=texts,
    object_id=texts,
    rect=rects(),
    detection_time=coord,
    location=st.one_of(st.none(), points),
    detection_radius=st.floats(min_value=0.0, max_value=100.0),
)

wire_values = st.sampled_from([points, rects(), segments(), polygons(),
                               globs, buckets, estimates, readings])

scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    finite, texts)

leaves = st.one_of(scalars, points, rects(), segments(), polygons(),
                   globs, buckets, estimates, readings)

dict_keys = texts.filter(lambda k: k != "__type__")

messages = st.recursive(
    leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(dict_keys, children, max_size=5),
    ),
    max_leaves=12,
)


def json_roundtrip(message):
    return serialization.loads(serialization.dumps(message))


def binary_roundtrip(message):
    return wire.loads(wire.dumps(message))


# ----------------------------------------------------------------------
# Differential identity
# ----------------------------------------------------------------------


class TestDifferentialIdentity:
    @settings(max_examples=300, deadline=None)
    @given(messages)
    def test_binary_equals_json_on_random_messages(self, message):
        assert binary_roundtrip(message) == json_roundtrip(message)

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_every_registered_wire_type(self, data):
        value = data.draw(data.draw(wire_values))
        via_binary = binary_roundtrip(value)
        via_json = json_roundtrip(value)
        assert via_binary == via_json
        assert type(via_binary) is type(via_json)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(readings, max_size=8))
    def test_submit_batch_request_shape(self, batch):
        request = {"object": "shard", "method": "submit_batch",
                   "args": [batch], "kwargs": {}}
        assert binary_roundtrip(request) == json_roundtrip(request)

    def test_int_float_equality_contract(self):
        # Packed bodies store numbers as f64; the contract is value
        # equality, which Python's numeric tower guarantees.
        rect = Rect(0, 1, 2, 3)
        assert binary_roundtrip(rect) == json_roundtrip(rect)

    def test_bigint_survives(self):
        huge = 2 ** 200
        assert binary_roundtrip(huge) == json_roundtrip(huge) == huge
        assert binary_roundtrip(-huge) == -huge


# ----------------------------------------------------------------------
# Fallback rules
# ----------------------------------------------------------------------


class _Opaque:
    pass


class TestFallbackRules:
    def test_registered_but_unpacked_type_falls_back(self):
        class OnlyJson:
            def __init__(self, n):
                self.n = n

            def __eq__(self, other):
                return isinstance(other, OnlyJson) and other.n == self.n

        serialization.register_type(
            "OnlyJsonDiffTest", OnlyJson,
            lambda v: {"n": v.n}, lambda d: OnlyJson(d["n"]))
        value = OnlyJson(7)
        with pytest.raises(wire.BinaryUnsupported):
            wire.dumps(value)
        assert json_roundtrip(value) == value  # the fallback lane works

    def test_primitive_subclass_falls_back(self):
        class MyInt(int):
            pass

        with pytest.raises(wire.BinaryUnsupported):
            wire.dumps({"n": MyInt(3)})

    def test_unknown_type_raises_same_as_json(self):
        with pytest.raises(OrbError):
            wire.dumps(_Opaque())
        with pytest.raises(OrbError):
            serialization.dumps(_Opaque())

    def test_non_finite_floats_rejected_by_both(self):
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(OrbError):
                wire.dumps({"x": bad})
            with pytest.raises(OrbError):
                serialization.dumps({"x": bad})

    def test_reserved_key_rejected_by_both(self):
        for codec_dumps in (wire.dumps, serialization.dumps):
            with pytest.raises(OrbError):
                codec_dumps({"__type__": "sneaky"})

    def test_non_string_key_rejected_by_both(self):
        for codec_dumps in (wire.dumps, serialization.dumps):
            with pytest.raises(OrbError):
                codec_dumps({3: "x"})

    def test_trailing_bytes_rejected(self):
        with pytest.raises(OrbError):
            wire.loads(wire.dumps([1, 2]) + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(OrbError):
            wire.loads(b"\xfe")


# ----------------------------------------------------------------------
# Mixed-codec fleets interoperate via negotiation
# ----------------------------------------------------------------------


class EchoServant:
    def echo(self, value):
        return value

    def locate_stub(self):
        return LocationEstimate(
            object_id="alice", rect=Rect(0, 0, 1, 1), probability=0.9,
            bucket=list(ProbabilityBucket)[0], time=1.0,
            sources=("s1",), moving=False, symbolic="SC/3/3105",
            posterior=0.5)


PAYLOAD = {
    "rect": Rect(1, 2, 3, 4),
    "point": Point(1, 2, 3),
    "nested": [Glob(("SC", "3")), {"deep": [1, 2.5, None, True]}],
}


def _serve(codecs=None, enable_upgrade=True):
    orb = Orb("interop-server")
    orb.register("echo", EchoServant())
    adapter_dispatch = orb.adapter.dispatch
    server = TcpServer(adapter_dispatch, codecs=codecs,
                       enable_upgrade=enable_upgrade).start()
    return orb, server


class TestMixedCodecFleet:
    @pytest.mark.parametrize(
        "server_codecs,server_upgrade,client_codec,client_negotiate,"
        "expect_mode,expect_codec",
        [
            (("binary", "json"), True, "binary", True, "mux", "binary"),
            (("binary", "json"), True, "json", True, "mux", "json"),
            (("json",), True, "binary", True, "mux", "json"),
            (("binary", "json"), False, "binary", True, "legacy", "json"),
            (("binary", "json"), True, "binary", False, "legacy", "json"),
        ])
    def test_negotiation_matrix(self, server_codecs, server_upgrade,
                                client_codec, client_negotiate,
                                expect_mode, expect_codec):
        """Every old/new pairing lands on a working common protocol."""
        orb, server = _serve(codecs=server_codecs,
                             enable_upgrade=server_upgrade)
        host, port = server.address
        transport = TcpTransport(host, port, codec=client_codec,
                                 negotiate=client_negotiate)
        try:
            response = transport.invoke({
                "object": "echo", "method": "echo",
                "args": [PAYLOAD], "kwargs": {}})
            assert response["result"] == PAYLOAD
            assert type(response["result"]["rect"]) is Rect
            stats = transport.transport_stats()
            assert stats["mode"] == expect_mode
            assert stats["codec"] == expect_codec
        finally:
            transport.close()
            server.stop()
            orb.shutdown()

    def test_estimate_identical_across_codecs(self):
        """The same servant answer decodes identically whether the
        connection negotiated binary or JSON."""
        orb, server = _serve()
        host, port = server.address
        binary = TcpTransport(host, port, codec="binary")
        json_only = TcpTransport(host, port, codec="json")
        try:
            request = {"object": "echo", "method": "locate_stub",
                       "args": [], "kwargs": {}}
            via_binary = binary.invoke(request)["result"]
            via_json = json_only.invoke(request)["result"]
            assert via_binary == via_json
            assert type(via_binary) is LocationEstimate
        finally:
            binary.close()
            json_only.close()
            server.stop()
            orb.shutdown()

    def test_binary_connection_falls_back_per_message(self):
        """A message the binary codec cannot pack still crosses a
        binary-negotiated connection (as a tagged-JSON frame)."""
        class JsonOnly:
            def __init__(self, n):
                self.n = n

            def __eq__(self, other):
                return isinstance(other, JsonOnly) and other.n == self.n

        serialization.register_type(
            "JsonOnlyInteropTest", JsonOnly,
            lambda v: {"n": v.n}, lambda d: JsonOnly(d["n"]))
        orb, server = _serve()
        host, port = server.address
        transport = TcpTransport(host, port, codec="binary")
        try:
            response = transport.invoke({
                "object": "echo", "method": "echo",
                "args": [JsonOnly(42)], "kwargs": {}})
            assert response["result"] == JsonOnly(42)
            assert transport.transport_stats()["codec"] == "binary"
        finally:
            transport.close()
            server.stop()
            orb.shutdown()
