"""Tests for RCC-8 composition and the relation network."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReasoningError
from repro.geometry import Rect
from repro.reasoning import RCC8, rcc8_rects
from repro.reasoning.composition import (
    ALL,
    RelationNetwork,
    compose,
    invert,
)


def random_rect(rng: random.Random) -> Rect:
    # Integer-ish coordinates make EC/TPP cases actually occur.
    x = rng.randint(0, 20)
    y = rng.randint(0, 20)
    w = rng.randint(1, 12)
    h = rng.randint(1, 12)
    return Rect(float(x), float(y), float(x + w), float(y + h))


class TestComposeBasics:
    def test_eq_is_identity(self):
        for relation in RCC8:
            assert compose(RCC8.EQ, relation) == {relation}
            assert compose(relation, RCC8.EQ) == {relation}

    def test_ntpp_chains(self):
        # part-of composes transitively.
        assert compose(RCC8.NTPP, RCC8.NTPP) == {RCC8.NTPP}
        assert compose(RCC8.TPP, RCC8.NTPP) == {RCC8.NTPP}

    def test_inside_disjoint_is_disjoint(self):
        # a inside b, b disconnected from c => a disconnected from c.
        assert compose(RCC8.NTPP, RCC8.DC) == {RCC8.DC}
        assert compose(RCC8.TPP, RCC8.DC) == {RCC8.DC}

    def test_dc_dc_is_uninformative(self):
        assert compose(RCC8.DC, RCC8.DC) == ALL

    def test_invert(self):
        assert invert({RCC8.TPP, RCC8.DC}) == {RCC8.TPPI, RCC8.DC}


class TestCompositionSoundness:
    def test_exhaustive_random_triples(self):
        """For every random triple of rectangles, the actual relation
        R(a, c) must be in compose(R(a, b), R(b, c)) — soundness of
        every table entry that random geometry can exercise."""
        rng = random.Random(12345)
        seen_pairs = set()
        for _ in range(30000):
            a, b, c = (random_rect(rng) for _ in range(3))
            r_ab = rcc8_rects(a, b)
            r_bc = rcc8_rects(b, c)
            r_ac = rcc8_rects(a, c)
            seen_pairs.add((r_ab, r_bc))
            allowed = compose(r_ab, r_bc)
            assert r_ac in allowed, (
                f"R(a,b)={r_ab.value}, R(b,c)={r_bc.value} gave "
                f"R(a,c)={r_ac.value} not in "
                f"{{{', '.join(r.value for r in allowed)}}} "
                f"for a={a}, b={b}, c={c}")
        # Random rectangles should exercise a good share of the table.
        assert len(seen_pairs) > 40


class TestRelationNetwork:
    def test_transitive_containment_inferred(self):
        network = RelationNetwork(["room", "floor", "building"])
        network.set_relation("room", "floor", [RCC8.NTPP])
        network.set_relation("floor", "building", [RCC8.NTPP])
        assert network.propagate()
        assert network.relation("room", "building") == {RCC8.NTPP}
        assert network.is_determined("room", "building")

    def test_disjointness_inferred(self):
        network = RelationNetwork(["desk", "office", "other_office"])
        network.set_relation("desk", "office", [RCC8.NTPP])
        network.set_relation("office", "other_office", [RCC8.DC])
        assert network.propagate()
        assert network.relation("desk", "other_office") == {RCC8.DC}

    def test_inconsistency_detected(self):
        network = RelationNetwork(["a", "b", "c"])
        network.set_relation("a", "b", [RCC8.NTPP])
        network.set_relation("b", "c", [RCC8.NTPP])
        # a strictly inside b inside c, yet a allegedly contains c.
        with pytest.raises(ReasoningError):
            network.set_relation("a", "c", [RCC8.NTPPI])
            if not network.propagate():
                raise ReasoningError("inconsistent")

    def test_propagate_flags_inconsistency(self):
        network = RelationNetwork(["a", "b", "c", "d"])
        network.set_relation("a", "b", [RCC8.NTPP])
        network.set_relation("b", "c", [RCC8.NTPP])
        network.set_relation("c", "d", [RCC8.NTPP])
        network.set_relation("a", "d", [RCC8.DC, RCC8.NTPP])
        assert network.propagate()
        # Only NTPP survives for (a, d).
        assert network.relation("a", "d") == {RCC8.NTPP}

    def test_converse_maintained(self):
        network = RelationNetwork(["a", "b"])
        network.set_relation("a", "b", [RCC8.TPP])
        assert network.relation("b", "a") == {RCC8.TPPI}

    def test_disjunctive_constraints(self):
        network = RelationNetwork(["a", "b"])
        network.set_relation("a", "b", [RCC8.EC, RCC8.PO])
        network.set_relation("a", "b", [RCC8.PO, RCC8.TPP])
        assert network.relation("a", "b") == {RCC8.PO}

    def test_empty_constraint_rejected(self):
        network = RelationNetwork(["a", "b"])
        with pytest.raises(ReasoningError):
            network.set_relation("a", "b", [])

    def test_unknown_region_rejected(self):
        network = RelationNetwork(["a", "b"])
        with pytest.raises(ReasoningError):
            network.set_relation("a", "zzz", [RCC8.DC])

    def test_needs_two_regions(self):
        with pytest.raises(ReasoningError):
            RelationNetwork(["only"])

    def test_self_relation_is_eq(self):
        network = RelationNetwork(["a", "b"])
        assert network.relation("a", "a") == {RCC8.EQ}

    def test_world_model_relations_consistent(self, siebel_world):
        """Feed measured relations from the real floor into the
        network: they must be path-consistent."""
        from repro.reasoning import region_rcc8
        regions = ["SC/3", "SC/3/3105", "SC/3/NetLab", "SC/3/Corridor"]
        network = RelationNetwork(regions)
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                network.set_relation(a, b,
                                     [region_rcc8(siebel_world, a, b)])
        assert network.propagate()
