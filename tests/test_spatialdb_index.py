"""Tests for secondary hash indexes on tables."""

import random

import pytest

from repro.errors import QueryError
from repro.spatialdb import Column, Schema, Table


@pytest.fixture
def readings() -> Table:
    schema = Schema([
        Column("reading_id", int),
        Column("object_id", str),
        Column("value", float),
    ], primary_key=("reading_id",))
    table = Table("readings", schema)
    table.create_index("object_id")
    return table


def _fill(table: Table, count: int = 60) -> None:
    rng = random.Random(9)
    for i in range(count):
        table.insert({"reading_id": i,
                      "object_id": f"obj-{rng.randint(0, 5)}",
                      "value": float(i)})


class TestIndexMaintenance:
    def test_select_eq_matches_scan(self, readings):
        _fill(readings)
        for key in (f"obj-{i}" for i in range(6)):
            indexed = readings.select_eq("object_id", key)
            scanned = readings.select(Table.equals(object_id=key))
            assert indexed == scanned

    def test_select_eq_with_extra_predicate(self, readings):
        _fill(readings)
        rows = readings.select_eq("object_id", "obj-1",
                                  where=lambda r: r["value"] >= 30.0)
        assert all(r["object_id"] == "obj-1" and r["value"] >= 30.0
                   for r in rows)

    def test_missing_value_returns_empty(self, readings):
        _fill(readings)
        assert readings.select_eq("object_id", "ghost") == []

    def test_delete_updates_index(self, readings):
        _fill(readings)
        readings.delete(Table.equals(object_id="obj-2"))
        assert readings.select_eq("object_id", "obj-2") == []

    def test_update_moves_index_entry(self, readings):
        readings.insert({"reading_id": 1000, "object_id": "before",
                         "value": 1.0})
        readings.update(Table.equals(reading_id=1000),
                        {"object_id": "after"})
        assert readings.select_eq("object_id", "before") == []
        assert len(readings.select_eq("object_id", "after")) == 1

    def test_clear_empties_index(self, readings):
        _fill(readings)
        readings.clear()
        assert readings.select_eq("object_id", "obj-0") == []

    def test_backfill_on_late_creation(self):
        schema = Schema([Column("k", str), Column("v", int)])
        table = Table("t", schema)
        table.insert({"k": "a", "v": 1})
        table.insert({"k": "b", "v": 2})
        table.create_index("k")
        assert [r["v"] for r in table.select_eq("k", "a")] == [1]

    def test_unindexed_select_eq_falls_back_to_scan(self):
        schema = Schema([Column("k", str), Column("v", int)])
        table = Table("t", schema)
        table.insert({"k": "a", "v": 1})
        assert table.select_eq("k", "a")[0]["v"] == 1
        assert not table.has_index("k")

    def test_unknown_column_rejected(self, readings):
        with pytest.raises(QueryError):
            readings.create_index("nope")

    def test_create_index_idempotent(self, readings):
        readings.create_index("object_id")
        _fill(readings, 10)
        assert readings.select_eq("object_id", "obj-0") == \
            readings.select(Table.equals(object_id="obj-0"))

    def test_rows_from_index_are_copies(self, readings):
        _fill(readings, 10)
        row = readings.select_eq("object_id", "obj-0")[0]
        row["value"] = -1.0
        again = readings.select_eq("object_id", "obj-0")[0]
        assert again["value"] != -1.0
