"""Unit tests for probability-space classification (Section 4.4)."""

import pytest

from repro.core import ProbabilityBucket, ProbabilityClassifier
from repro.errors import FusionError


class TestBoundaries:
    def test_boundaries_are_min_median_max(self):
        classifier = ProbabilityClassifier([0.75, 0.95, 0.99])
        assert classifier.boundaries == [0.75, 0.95, 0.99]

    def test_even_count_uses_median(self):
        classifier = ProbabilityClassifier([0.6, 0.8])
        assert classifier.medium_bound == pytest.approx(0.7)

    def test_empty_sensors_rejected(self):
        with pytest.raises(FusionError):
            ProbabilityClassifier([])

    def test_invalid_p_rejected(self):
        with pytest.raises(FusionError):
            ProbabilityClassifier([0.5, 1.5])


class TestClassification:
    @pytest.fixture
    def classifier(self):
        # Deployed sensor ps as in the paper's technologies.
        return ProbabilityClassifier([0.75, 0.95, 0.99])

    def test_paper_bucket_scheme(self, classifier):
        # (0, min] low; (min, median] medium; (median, max] high;
        # (max, 1] very high.
        assert classifier.classify(0.5) is ProbabilityBucket.LOW
        assert classifier.classify(0.75) is ProbabilityBucket.LOW
        assert classifier.classify(0.80) is ProbabilityBucket.MEDIUM
        assert classifier.classify(0.95) is ProbabilityBucket.MEDIUM
        assert classifier.classify(0.97) is ProbabilityBucket.HIGH
        assert classifier.classify(0.99) is ProbabilityBucket.HIGH
        assert classifier.classify(0.995) is ProbabilityBucket.VERY_HIGH
        assert classifier.classify(1.0) is ProbabilityBucket.VERY_HIGH

    def test_zero_probability_is_low(self, classifier):
        assert classifier.classify(0.0) is ProbabilityBucket.LOW

    def test_out_of_range_rejected(self, classifier):
        with pytest.raises(FusionError):
            classifier.classify(1.01)

    def test_at_least(self, classifier):
        assert classifier.at_least(0.97, ProbabilityBucket.HIGH)
        assert classifier.at_least(0.97, ProbabilityBucket.MEDIUM)
        assert not classifier.at_least(0.8, ProbabilityBucket.HIGH)


class TestBucketOrdering:
    def test_total_order(self):
        order = [ProbabilityBucket.LOW, ProbabilityBucket.MEDIUM,
                 ProbabilityBucket.HIGH, ProbabilityBucket.VERY_HIGH]
        for i, lower in enumerate(order):
            for higher in order[i + 1:]:
                assert lower < higher
                assert higher > lower
                assert lower <= higher
                assert higher >= higher

    def test_equality(self):
        assert ProbabilityBucket.HIGH >= ProbabilityBucket.HIGH
        assert not ProbabilityBucket.HIGH > ProbabilityBucket.HIGH

    def test_value_strings(self):
        assert ProbabilityBucket.VERY_HIGH.value == "very_high"
