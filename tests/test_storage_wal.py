"""Unit tests for the write-ahead log and the record codec.

Covers the framing contract (length-prefixed, checksummed,
monotonically sequenced records), all three fsync policies, torn-tail
tolerance versus interior-corruption loudness, and the logical
operation codec the spatial-DB seam logs through.
"""

import struct

import pytest

from repro.core import SensorSpec
from repro.errors import StorageError, WalCorruptionError
from repro.geometry import Point, Rect
from repro.storage import WriteAheadLog, scan_wal
from repro.storage import records as rec

_HEADER = struct.Struct("<QII")


def _wal(tmp_path, **kwargs):
    return WriteAheadLog(str(tmp_path / "wal.log"), **kwargs)


class TestFraming:
    def test_append_scan_round_trip(self, tmp_path):
        wal = _wal(tmp_path, fsync_policy="always")
        payloads = [b"alpha", b"", b"\x00\xffbinary\x01", b"omega" * 100]
        seqs = [wal.append(p) for p in payloads]
        wal.close()
        scan = scan_wal(wal.path)
        assert scan.torn_bytes == 0
        assert [s for s, _ in scan.records] == seqs == [1, 2, 3, 4]
        assert [p for _, p in scan.records] == payloads

    def test_seq_is_contiguous_and_survives_reopen(self, tmp_path):
        wal = _wal(tmp_path, fsync_policy="always")
        wal.append(b"one")
        wal.append(b"two")
        wal.close()
        reopened = _wal(tmp_path, fsync_policy="always")
        assert reopened.append(b"three") == 3
        reopened.close()
        assert [s for s, _ in scan_wal(reopened.path).records] == [1, 2, 3]

    def test_start_seq_continues_numbering_after_compaction(self, tmp_path):
        wal = _wal(tmp_path, fsync_policy="always", start_seq=41)
        assert wal.append(b"first-after-compaction") == 41
        wal.close()

    def test_payload_must_be_bytes(self, tmp_path):
        wal = _wal(tmp_path)
        with pytest.raises(StorageError):
            wal.append("not bytes")
        wal.close()

    def test_append_after_close_raises(self, tmp_path):
        wal = _wal(tmp_path)
        wal.close()
        with pytest.raises(StorageError):
            wal.append(b"late")

    def test_scan_empty_file(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        scan = scan_wal(str(path))
        assert scan.records == [] and scan.torn_bytes == 0
        assert scan.last_seq == 0


class TestFsyncPolicies:
    def test_always_leaves_no_unsynced_window(self, tmp_path):
        wal = _wal(tmp_path, fsync_policy="always")
        for i in range(5):
            wal.append(b"r%d" % i)
            assert wal.unsynced_count() == 0
            assert wal.synced_seq == wal.last_seq
        wal.close()

    def test_batch_group_commits_every_n(self, tmp_path):
        wal = _wal(tmp_path, fsync_policy="batch:3")
        wal.append(b"a")
        wal.append(b"b")
        assert wal.unsynced_count() == 2
        wal.append(b"c")  # third append triggers the group commit
        assert wal.unsynced_count() == 0
        wal.append(b"d")
        assert wal.unsynced_count() == 1
        wal.sync()
        assert wal.unsynced_count() == 0
        wal.close()

    def test_never_syncs_only_on_request(self, tmp_path):
        wal = _wal(tmp_path, fsync_policy="never")
        for i in range(10):
            wal.append(b"x")
        assert wal.unsynced_count() == 10
        wal.sync()
        assert wal.unsynced_count() == 0
        wal.close()

    @pytest.mark.parametrize("policy", ["sometimes", "batch:", "batch:0",
                                        "batch:-3", ""])
    def test_unknown_policy_rejected(self, tmp_path, policy):
        with pytest.raises(StorageError):
            _wal(tmp_path, fsync_policy=policy)


class TestTornTail:
    def _write_then_tear(self, tmp_path, torn: bytes) -> str:
        wal = _wal(tmp_path, fsync_policy="always")
        wal.append(b"intact-1")
        wal.append(b"intact-2")
        wal.close()
        with open(wal.path, "ab") as handle:
            handle.write(torn)
        return wal.path

    def test_torn_header_is_dropped(self, tmp_path):
        path = self._write_then_tear(tmp_path, b"\x03\x00")
        scan = scan_wal(path)
        assert [s for s, _ in scan.records] == [1, 2]
        assert scan.torn_bytes == 2

    def test_torn_payload_is_dropped(self, tmp_path):
        torn = _HEADER.pack(3, 100, 0) + b"only-ten-b"
        path = self._write_then_tear(tmp_path, torn)
        scan = scan_wal(path)
        assert [s for s, _ in scan.records] == [1, 2]
        assert scan.torn_bytes == len(torn)

    def test_checksum_torn_tail_is_dropped(self, tmp_path):
        body = b"garbled-payload"
        torn = _HEADER.pack(3, len(body), 12345) + body
        path = self._write_then_tear(tmp_path, torn)
        scan = scan_wal(path)
        assert [s for s, _ in scan.records] == [1, 2]
        assert scan.torn_bytes == len(torn)

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        path = self._write_then_tear(tmp_path, b"\x99" * 7)
        wal = WriteAheadLog(path, fsync_policy="always")
        assert wal.append(b"intact-3") == 3
        wal.close()
        scan = scan_wal(path)
        assert [s for s, _ in scan.records] == [1, 2, 3]
        assert scan.torn_bytes == 0

    def test_interior_corruption_is_loud(self, tmp_path):
        wal = _wal(tmp_path, fsync_policy="always")
        wal.append(b"first-record")
        wal.append(b"second-record")
        wal.close()
        with open(wal.path, "r+b") as handle:
            handle.seek(_HEADER.size + 2)  # inside record 1's payload
            handle.write(b"\xff")
        with pytest.raises(WalCorruptionError):
            scan_wal(wal.path)

    def test_non_contiguous_seq_is_loud(self, tmp_path):
        path = str(tmp_path / "wal.log")
        import zlib
        with open(path, "wb") as handle:
            for seq in (1, 5):
                body = b"r%d" % seq
                handle.write(_HEADER.pack(seq, len(body),
                                          zlib.crc32(body)) + body)
        with pytest.raises(WalCorruptionError):
            scan_wal(path)


class TestRecordCodec:
    def test_rect_round_trip(self):
        r = Rect(1.5, -2.0, 30.25, 4.0)
        assert rec.decode_rect(rec.encode_rect(r)) == r

    def test_point_round_trip(self):
        p = Point(1.0, 2.0, 3.5)
        out = rec.decode_point(rec.encode_point(p))
        assert (out.x, out.y, out.z) == (1.0, 2.0, 3.5)

    def test_spec_round_trip(self):
        spec = SensorSpec(sensor_type="Ubisense", carry_probability=0.9,
                          detection_probability=0.95,
                          misident_probability=0.05, z_area_scaled=True,
                          resolution=0.5, time_to_live=3.0)
        twin = rec.decode_spec(rec.encode_spec(spec))
        assert twin == spec

    def test_none_spec_round_trip(self):
        assert rec.decode_spec(rec.encode_spec(None)) is None

    def test_reading_row_round_trip(self):
        row = {
            "reading_id": 7,
            "sensor_id": "Ubi-18",
            "glob_prefix": "CS/Floor3",
            "sensor_type": "Ubisense",
            "mobile_object_id": "alice",
            "location": Point(10.0, 20.0, 0.0),
            "detection_radius": 1.5,
            "rect": Rect(9.0, 19.0, 11.0, 21.0),
            "detection_time": 42.0,
            "moving": True,
        }
        assert rec.decode_reading_row(rec.encode_reading_row(row)) == row

    def test_reading_row_without_location(self):
        row = {
            "reading_id": 8,
            "sensor_id": "RF-12",
            "glob_prefix": "CS/Floor3",
            "sensor_type": "RF",
            "mobile_object_id": "bob",
            "location": None,
            "detection_radius": 0.0,
            "rect": Rect(0.0, 0.0, 5.0, 5.0),
            "detection_time": 1.0,
            "moving": False,
        }
        assert rec.decode_reading_row(rec.encode_reading_row(row)) == row

    def test_op_envelope_round_trip(self):
        op = {"op": rec.OP_PURGE, "now": 9.0, "reading_ids": [1, 2, 3]}
        assert rec.decode_op(rec.encode_op(op)) == op

    def test_op_encoding_is_deterministic(self):
        a = {"op": rec.OP_EXPIRE, "object_id": "alice",
             "sensor_id": None, "reading_ids": [4, 9]}
        b = {"reading_ids": [4, 9], "sensor_id": None,
             "object_id": "alice", "op": rec.OP_EXPIRE}
        assert rec.encode_op(a) == rec.encode_op(b)

    def test_unknown_op_rejected(self):
        with pytest.raises(StorageError):
            rec.encode_op({"op": "truncate-table"})

class TestInsertFastPath:
    """The specialized insert codecs used on the ingestion hot path.

    Three encoders must agree: the generic ``encode_op``, the
    single-pass JSON ``encode_insert_op``, and the split
    ``encode_insert_parts`` / ``assemble_insert_op`` pair (which emits
    the packed binary wire form when every numeric is a float, and the
    JSON form otherwise).
    """

    ROW = {
        "reading_id": 41,
        "sensor_id": "Ubi-18",
        "glob_prefix": "CS/Floor3",
        "sensor_type": "Ubisense",
        "mobile_object_id": "alice éè",
        "location": Point(10.25, -20.5, 0.75),
        "detection_radius": 1.5,
        "rect": Rect(9.0, -21.5, 11.5, -19.5),
        "detection_time": 42.125,
        "moving": True,
    }

    @staticmethod
    def _generic(row):
        return rec.encode_op({"op": rec.OP_INSERT_READING,
                              "row": rec.encode_reading_row(row)})

    @staticmethod
    def _parts(row):
        return rec.encode_insert_parts(
            row["sensor_id"], row["glob_prefix"], row["sensor_type"],
            row["mobile_object_id"], row["location"],
            row["detection_radius"], row["rect"],
            row["detection_time"])

    def test_fast_json_encoder_byte_identical_to_generic(self):
        assert rec.encode_insert_op(self.ROW) == self._generic(self.ROW)

    def test_fast_json_encoder_handles_negative_zero(self):
        row = dict(self.ROW, detection_time=-0.0,
                   rect=Rect(-0.0, 0.0, 1.0, 1.0), location=None)
        assert rec.encode_insert_op(row) == self._generic(row)

    def test_all_float_row_takes_binary_form(self):
        empty, head = self._parts(self.ROW)
        assert empty == b""
        payload = rec.assemble_insert_op((empty, head),
                                         self.ROW["reading_id"],
                                         self.ROW["moving"])
        assert payload[0] == 0x01  # the binary magic, never '{'
        assert len(payload) < len(self._generic(self.ROW))

    def test_binary_form_replays_identically(self):
        payload = rec.assemble_insert_op(
            self._parts(self.ROW), self.ROW["reading_id"],
            self.ROW["moving"])
        assert rec.decode_op(payload) == \
            rec.decode_op(self._generic(self.ROW))

    def test_binary_form_without_location(self):
        row = dict(self.ROW, location=None, moving=False)
        payload = rec.assemble_insert_op(
            self._parts(row), row["reading_id"], row["moving"])
        decoded = rec.decode_op(payload)
        assert decoded == rec.decode_op(self._generic(row))
        assert decoded["row"]["location"] is None
        assert decoded["row"]["moving"] is False

    def test_int_coordinates_fall_back_to_json(self):
        # struct '<d' would turn these ints into floats and change the
        # replayed row's fingerprint; the parts encoder must notice
        # and emit the JSON form instead.
        row = dict(self.ROW, rect=Rect(9, -22, 12, -19),
                   detection_time=42)
        head, tail = self._parts(row)
        assert head != b""
        payload = rec.assemble_insert_op(
            (head, tail), row["reading_id"], row["moving"])
        assert payload == self._generic(row)

    def test_binary_encoding_is_deterministic(self):
        one = rec.assemble_insert_op(self._parts(self.ROW), 41, True)
        two = rec.assemble_insert_op(self._parts(self.ROW), 41, True)
        assert one == two

    def test_truncated_binary_record_rejected(self):
        payload = rec.assemble_insert_op(self._parts(self.ROW), 41, True)
        with pytest.raises(StorageError):
            rec.decode_op(payload[:-3])

    def test_binary_record_with_trailing_garbage_rejected(self):
        payload = rec.assemble_insert_op(self._parts(self.ROW), 41, True)
        with pytest.raises(StorageError):
            rec.decode_op(payload + b"\x00")
