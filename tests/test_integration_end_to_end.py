"""End-to-end integration: simulator -> adapters -> database -> fusion
-> service -> applications, including the distributed (TCP) path."""

import pytest

from repro.apps import AnywhereIM, FollowMeApp, VocalPersonnelLocator
from repro.errors import UnknownObjectError
from repro.geometry import Point, Rect
from repro.orb import NamingService, Orb
from repro.service import SERVICE_NAME
from repro.sim import Scenario


class TestFullPipeline:
    def test_hour_of_building_life(self):
        scenario = Scenario(seed=17).standard_deployment()
        people = scenario.add_people(5)
        scenario.run(600, dt=1.0, trace_accuracy=True)

        # The database accumulated readings from several technologies.
        sensor_types = {row["sensor_type"]
                        for row in scenario.db.sensor_readings.select()}
        assert len(sensor_types) >= 2

        # Everyone was locatable at least sometimes.
        summary = scenario.trace.summary()
        assert summary.samples > 0

        # Fused estimates are close to ground truth on average: the
        # widest sensor is 30 ft across, so mean error far beyond that
        # would mean fusion is broken.
        assert summary.mean_error_ft < 60.0

        # Estimated regions should usually contain or neighbour the
        # truth.
        assert summary.room_accuracy > 0.3

    def test_applications_share_one_service(self):
        scenario = Scenario(seed=23).standard_deployment()
        people = scenario.add_people(4)
        scenario.run(120)

        follow_me = FollowMeApp(scenario.service)
        im = AnywhereIM(scenario.service)
        locator = VocalPersonnelLocator(scenario.service)
        for person in people:
            follow_me.register_user(person)
            im.add_buddy(person, people[0])

        follow_me.tick_all()
        im.send(people[0], people[1], "status?")
        reply = locator.ask(f"where is {people[0]}?")
        assert people[0] in reply
        # Nothing crashed and the shared service answered everyone.
        assert len(im.log) == 1

    def test_subscriptions_fire_during_simulation(self):
        scenario = Scenario(seed=31).standard_deployment()
        scenario.add_people(6)
        events = []
        scenario.service.subscribe("SC/3/Corridor",
                                   consumer=events.append,
                                   threshold=0.3, kind="both")
        scenario.run(600, dt=1.0)
        # Six wanderers over ten minutes cross the corridor RF cell.
        assert events
        assert all(e["region_glob"] == "SC/3/Corridor" for e in events)


class TestDistributedDeployment:
    def test_remote_app_over_tcp_with_discovery(self):
        scenario = Scenario(seed=11).standard_deployment()
        people = scenario.add_people(2)
        naming = NamingService()
        reference = scenario.publish(naming=naming, listen_tcp=True)
        assert reference.startswith("tcp://")

        client = Orb("remote-app")
        try:
            service_ref = naming.resolve(SERVICE_NAME)
            proxy = client.resolve(service_ref)
            scenario.run(90)
            tracked = proxy.tracked_objects()
            assert set(tracked) <= set(people)
            for person in tracked:
                estimate = proxy.locate(person)
                assert estimate.object_id == person
        finally:
            client.shutdown()
            scenario.orb.shutdown()

    def test_remote_push_notifications_over_tcp(self):
        scenario = Scenario(seed=29).standard_deployment()
        scenario.add_people(4)
        scenario.publish(listen_tcp=True)

        client = Orb("subscriber-app")
        client.listen()

        class App:
            def __init__(self):
                self.events = []

            def notify(self, event):
                self.events.append(event)

        app = App()
        app_ref = client.register("app", app)
        try:
            service_ref = scenario.orb.reference_for("location-service")
            proxy = client.resolve(service_ref)
            corridor = scenario.world.canonical_mbr("SC/3/Corridor")
            proxy.subscribe(corridor, app_ref, threshold=0.3)
            scenario.run(300, dt=1.0)
            assert app.events
            assert app.events[0]["transition"] == "enter"
        finally:
            client.shutdown()
            scenario.orb.shutdown()
