"""Shard-vs-reference equivalence: the fleet must be invisible.

The sharded deployment partitions only the tracked-object population;
every shard fuses from an object's complete reading set over the full
world model and sensor table.  So for ANY insert stream, a router over
N shards must answer exactly — bit for bit, ordering included — what
the single-process :class:`LocationService` answers: ``locate``
estimates, ``objects_in_region`` lists, and trigger dispatch
(observably identical events, as in ``test_query_index_equivalence``).

Cluster spawn is expensive, so the three fleets (N = 1, 2, 4) are
module-scoped and ``reset()`` between hypothesis examples.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SensorSpec
from repro.errors import UnknownObjectError
from repro.geometry import Rect
from repro.service import LocationService
from repro.shard import HashPartitioner, ShardCluster
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase

SHARD_COUNTS = (1, 2, 4)
OBJECTS = tuple(f"person-{i}" for i in range(6))

SENSORS = (
    ("Ubi-1", SensorSpec(sensor_type="Ubisense", carry_probability=0.9,
                         detection_probability=0.95,
                         misident_probability=0.05, z_area_scaled=True,
                         resolution=0.5, time_to_live=3600.0), 95.0),
    ("RF-1", SensorSpec(sensor_type="RF", carry_probability=0.85,
                        detection_probability=0.75,
                        misident_probability=0.25, z_area_scaled=True,
                        resolution=15.0, time_to_live=3600.0), 75.0),
)

xs = st.integers(min_value=0, max_value=39)
ys = st.integers(min_value=0, max_value=19)


@st.composite
def grid_rects(draw):
    x = draw(xs) * 10.0
    y = draw(ys) * 5.0
    w = draw(st.integers(min_value=1, max_value=10)) * 10.0
    h = draw(st.integers(min_value=1, max_value=8)) * 5.0
    return Rect(x, y, x + w, y + h)


# One reading: (object index, sensor index, rect).  Detection times are
# the stream position, so replays are time-deterministic.
readings_strategy = st.lists(
    st.tuples(st.integers(0, len(OBJECTS) - 1),
              st.integers(0, len(SENSORS) - 1),
              grid_rects()),
    min_size=1, max_size=16)

subscription_specs = st.lists(
    st.tuples(
        st.one_of(st.none(), st.sampled_from(OBJECTS)),  # object filter
        grid_rects(),
        st.sampled_from([0.2, 0.5, 0.9]),
        st.sampled_from(["enter", "leave", "both"]),
    ),
    min_size=1, max_size=6)


@pytest.fixture(scope="module")
def clusters():
    fleets = {}
    try:
        for count in SHARD_COUNTS:
            fleets[count] = ShardCluster(count, world=siebel_floor())
        yield fleets
    finally:
        for cluster in fleets.values():
            cluster.shutdown()


def _fresh(cluster: ShardCluster) -> None:
    """Reset every shard and re-register the deployment's sensors."""
    router = cluster.router
    for index in range(cluster.num_shards):
        router.proxy(index).reset()
    for sensor_id, spec, confidence in SENSORS:
        router.register_sensor(sensor_id, spec.sensor_type, confidence,
                               spec.time_to_live, spec)


def _reference_service():
    db = SpatialDatabase(siebel_floor())
    for sensor_id, spec, confidence in SENSORS:
        db.register_sensor(sensor_id, spec.sensor_type, confidence,
                           spec.time_to_live, spec)
    return LocationService(db)


def _play_stream(stream, reference, router):
    """Insert one stream into both sides, synchronously, in order."""
    for t, (obj_idx, sensor_idx, rect) in enumerate(stream):
        object_id = OBJECTS[obj_idx]
        sensor_id, spec, _ = SENSORS[sensor_idx]
        reference.db.insert_reading(
            sensor_id=sensor_id, glob_prefix="SC/3",
            sensor_type=spec.sensor_type, mobile_object_id=object_id,
            rect=rect, detection_time=float(t))
        router.insert_reading(
            sensor_id=sensor_id, glob_prefix="SC/3",
            sensor_type=spec.sensor_type, mobile_object_id=object_id,
            rect=rect, detection_time=float(t))
    return float(len(stream))


class TestLocateEquivalence:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(stream=readings_strategy)
    def test_estimates_identical_across_fleets(self, clusters, stream):
        reference = _reference_service()
        for count in SHARD_COUNTS:
            _fresh(clusters[count])
        now = None
        for count in SHARD_COUNTS:
            router = clusters[count].router
            now = _play_stream(stream, reference
                               if count == SHARD_COUNTS[0]
                               else _Discard(), router)
        # Replaying the reference once is enough: streams are identical.
        for object_id in OBJECTS:
            try:
                expected = reference.locate(object_id, now)
            except UnknownObjectError:
                for count in SHARD_COUNTS:
                    with pytest.raises(UnknownObjectError):
                        clusters[count].router.locate(object_id, now)
                continue
            for count in SHARD_COUNTS:
                actual = clusters[count].router.locate(object_id, now)
                assert actual == expected, (
                    f"{object_id} diverged at N={count}")


class _Discard:
    """Swallow the duplicate reference replays in multi-fleet loops."""

    class db:  # noqa: D106 — structural stand-in
        @staticmethod
        def insert_reading(**_kwargs):
            return 0


class TestRegionQueryEquivalence:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(stream=readings_strategy,
           queries=st.lists(grid_rects(), min_size=1, max_size=4),
           min_confidence=st.sampled_from([0.0, 0.2, 0.5]))
    def test_objects_in_region_ordering_identical(self, clusters, stream,
                                                  queries,
                                                  min_confidence):
        reference = _reference_service()
        for count in SHARD_COUNTS:
            _fresh(clusters[count])
            _play_stream(stream,
                         reference if count == SHARD_COUNTS[0]
                         else _Discard(),
                         clusters[count].router)
        now = float(len(stream))
        for rect in queries:
            expected = reference.objects_in_region(rect, now,
                                                   min_confidence)
            for count in SHARD_COUNTS:
                actual = clusters[count].router.objects_in_region(
                    rect, now, min_confidence)
                assert actual == expected, f"region query at N={count}"


class TestTriggerEquivalence:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(stream=readings_strategy, specs=subscription_specs)
    def test_dispatch_observably_identical(self, clusters, stream, specs):
        """Same subscriptions + same stream => the same events, with
        per-object order preserved exactly (cross-object interleave is
        pinned by the router's deterministic merge)."""
        reference = _reference_service()
        reference_events = []
        reference_ids = {}
        for index, (object_id, region, threshold, kind) in \
                enumerate(specs):
            sid = reference.subscribe(
                region,
                consumer=lambda event, _i=index: reference_events.append(
                    (_i, event["transition"], event["object_id"],
                     event["confidence"], event["time"])),
                kind=kind, object_id=object_id, threshold=threshold)
            reference_ids[sid] = index
        for count in SHARD_COUNTS:
            cluster = clusters[count]
            _fresh(cluster)
            router = cluster.router
            router_events = []
            index_of = {}
            for index, (object_id, region, threshold, kind) in \
                    enumerate(specs):
                sid = router.subscribe(
                    region,
                    consumer=lambda event: router_events.append(
                        (index_of[event["subscription_id"]],
                         event["transition"], event["object_id"],
                         event["confidence"], event["time"])),
                    kind=kind, object_id=object_id, threshold=threshold)
                index_of[sid] = index
            _play_stream(stream,
                         reference if count == SHARD_COUNTS[0]
                         else _Discard(),
                         router)
            router.pump_events()
            # Multiset equality: nothing lost, nothing invented.
            assert sorted(router_events) == sorted(reference_events), (
                f"event multiset diverged at N={count}")
            # Per-object sequences: the owning shard preserves the
            # reference's dispatch order exactly.
            for object_id in OBJECTS:
                ours = [e for e in router_events if e[2] == object_id]
                theirs = [e for e in reference_events
                          if e[2] == object_id]
                assert ours == theirs, (
                    f"per-object order diverged at N={count}")


SEMANTIC_RULES = (
    "occ(P) :- located_within(P, 'SC/3/3104')",
    "on_floor(P) :- located_within(P, 'SC/3')",
    "pair(P, Q) :- colocated_at(P, Q, 'SC/3'), distinct(P, Q)",
    "close(P, Q) :- near(P, Q, 60.0), distinct(P, Q)",
    "camp(P) :- dwell(P, 'SC/3', 3)",
)

semantic_rule_specs = st.lists(
    st.sampled_from(SEMANTIC_RULES), min_size=1, max_size=3, unique=True)


class TestSemanticEquivalence:
    """Semantic rules over the fleet's merged location feed.

    Subscriptions broadcast a location-update feed to every shard; the
    router replays the merged stream through its own trigger engine.
    Detection times are strictly increasing, so the merged order IS the
    insert order and the event stream must equal the single-process
    service's exactly — same events, same order, same payloads.
    """

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(stream=readings_strategy, rules=semantic_rule_specs)
    def test_semantic_events_identical_across_fleets(self, clusters,
                                                     stream, rules):
        reference = _reference_service()
        reference_events = []

        def _key(index, event):
            return (index, event["transition"], event["head"],
                    tuple(sorted(event["bindings"].items())),
                    event["time"])

        for index, rule in enumerate(rules):
            reference.subscribe_semantic(
                rule, now=0.0,
                consumer=lambda event, _i=index: reference_events.append(
                    _key(_i, event)))
        for count in SHARD_COUNTS:
            cluster = clusters[count]
            _fresh(cluster)
            router = cluster.router
            router.reset_semantic()
            router_events = []
            index_of = {}
            for index, rule in enumerate(rules):
                sid = router.subscribe_semantic(
                    rule,
                    consumer=lambda event: router_events.append(
                        _key(index_of[event["subscription_id"]], event)))
                index_of[sid] = index
            for t, (obj_idx, sensor_idx, rect) in enumerate(stream):
                sensor_id, spec, _ = SENSORS[sensor_idx]
                if count == SHARD_COUNTS[0]:
                    reference.db.insert_reading(
                        sensor_id=sensor_id, glob_prefix="SC/3",
                        sensor_type=spec.sensor_type,
                        mobile_object_id=OBJECTS[obj_idx], rect=rect,
                        detection_time=float(t))
                router.insert_reading(
                    sensor_id, "SC/3", spec.sensor_type,
                    OBJECTS[obj_idx], rect, float(t))
                router.pump_events()
            router.pump_events()
            assert router_events == reference_events, (
                f"semantic stream diverged at N={count}")


class TestPartitionerProperties:
    def test_placement_is_deterministic_across_instances(self):
        a = HashPartitioner(4)
        b = HashPartitioner(4)
        for i in range(50):
            object_id = f"obj-{i}"
            assert a.shard_for(object_id) == b.shard_for(object_id)

    def test_region_affinity_pins_first_sighting(self):
        partitioner = HashPartitioner(4,
                                      region_affinity={"SC/3/3105": 3})
        assert partitioner.shard_for("alice", "SC/3/3105/desk") == 3
        # Sticky: later sightings elsewhere do not move the object.
        assert partitioner.shard_for("alice", "SC/3/3216") == 3
        assert partitioner.stats()["affinity_placed"] in (0, 1)

    def test_cross_shard_path_distance(self, clusters):
        """Path distance between objects owned by different shards."""
        cluster = clusters[4]
        _fresh(cluster)
        router = cluster.router
        reference = _reference_service()
        placements = [("person-0", Rect(15.0, 10.0, 17.0, 12.0)),
                      ("person-1", Rect(350.0, 80.0, 352.0, 82.0))]
        for t, (object_id, rect) in enumerate(placements):
            for target in (reference.db,):
                target.insert_reading(
                    sensor_id="Ubi-1", glob_prefix="SC/3",
                    sensor_type="Ubisense", mobile_object_id=object_id,
                    rect=rect, detection_time=float(t))
            router.insert_reading(
                sensor_id="Ubi-1", glob_prefix="SC/3",
                sensor_type="Ubisense", mobile_object_id=object_id,
                rect=rect, detection_time=float(t))
        shards = {router.shard_of(oid) for oid, _ in placements}
        now = 2.0
        for path in (False, True):
            expected = reference.distance_between("person-0", "person-1",
                                                  path, now)
            actual = router.distance_between("person-0", "person-1",
                                             path, now)
            assert actual == expected
        # The scenario is only meaningful if ownership really split;
        # with 4 shards and these ids it does.
        assert len(shards) == 2
