"""Unit tests for repro.model.world — the world model."""

import pytest

from repro.errors import WorldModelError
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model import (
    Door,
    Entity,
    EntityType,
    FrameTransform,
    Glob,
    PassageKind,
    WorldModel,
    geometry_kind,
)


@pytest.fixture
def world() -> WorldModel:
    w = WorldModel()
    w.add_frame("B", "", FrameTransform())
    w.add_frame("B/1", "B", FrameTransform())
    w.add_region(Glob.parse("B/1"), EntityType.FLOOR,
                 Polygon.from_rect(Rect(0, 0, 100, 50)), "B")
    w.add_region(Glob.parse("B/1/r1"), EntityType.ROOM,
                 Polygon.from_rect(Rect(0, 0, 40, 50)), "B/1")
    w.add_region(Glob.parse("B/1/r2"), EntityType.ROOM,
                 Polygon.from_rect(Rect(40, 0, 100, 50)), "B/1",
                 power_outlets=True)
    w.add_door(Door(Glob.parse("B/1/d12"), Glob.parse("B/1/r1"),
                    Glob.parse("B/1/r2"),
                    Segment(Point(40, 20), Point(40, 30)), "B/1"))
    return w


class TestEntities:
    def test_duplicate_entity_rejected(self, world):
        with pytest.raises(WorldModelError):
            world.add_region(Glob.parse("B/1/r1"), EntityType.ROOM,
                             Polygon.from_rect(Rect(0, 0, 1, 1)), "B/1")

    def test_unknown_frame_rejected(self, world):
        with pytest.raises(WorldModelError):
            world.add_region(Glob.parse("B/1/r3"), EntityType.ROOM,
                             Polygon.from_rect(Rect(0, 0, 1, 1)), "B/9")

    def test_get_and_has(self, world):
        assert world.has("B/1/r1")
        assert not world.has("B/1/zzz")
        entity = world.get("B/1/r2")
        assert entity.properties["power_outlets"] is True

    def test_get_unknown_raises(self, world):
        with pytest.raises(WorldModelError):
            world.get("B/2")

    def test_identifier_and_prefix(self, world):
        entity = world.get("B/1/r1")
        assert entity.identifier == "r1"
        assert entity.glob_prefix == "B/1"

    def test_entities_of_type(self, world):
        rooms = world.entities_of_type(EntityType.ROOM)
        assert {e.identifier for e in rooms} == {"r1", "r2"}

    def test_children_and_descendants(self, world):
        children = world.children_of("B/1")
        assert {e.identifier for e in children} == {"r1", "r2"}
        descendants = world.descendants_of("B")
        assert len(descendants) == 3

    def test_geometry_kind(self):
        assert geometry_kind(Point(1, 2)) == "point"
        assert geometry_kind(Segment(Point(0, 0), Point(1, 1))) == "line"
        assert geometry_kind(
            Polygon.from_rect(Rect(0, 0, 1, 1))) == "polygon"


class TestDoors:
    def test_doors_between(self, world):
        doors = world.doors_between("B/1/r1", "B/1/r2")
        assert len(doors) == 1
        assert doors[0].kind is PassageKind.FREE

    def test_doors_between_order_insensitive(self, world):
        assert world.doors_between("B/1/r2", "B/1/r1")

    def test_doors_of(self, world):
        assert len(world.doors_of("B/1/r1")) == 1
        assert world.doors_of("B/1") == []

    def test_door_to_unknown_region_rejected(self, world):
        with pytest.raises(WorldModelError):
            world.add_door(Door(
                Glob.parse("B/1/dx"), Glob.parse("B/1/r1"),
                Glob.parse("B/1/nope"),
                Segment(Point(0, 0), Point(1, 1)), "B/1"))

    def test_duplicate_door_rejected(self, world):
        with pytest.raises(WorldModelError):
            world.add_door(Door(
                Glob.parse("B/1/d12"), Glob.parse("B/1/r1"),
                Glob.parse("B/1/r2"),
                Segment(Point(0, 0), Point(1, 1)), "B/1"))


class TestCanonicalGeometry:
    def test_canonical_mbr(self, world):
        assert world.canonical_mbr("B/1/r1") == Rect(0, 0, 40, 50)

    def test_canonical_geometry_with_offset_frame(self):
        w = WorldModel()
        w.add_frame("B", "", FrameTransform(dx=100))
        w.add_region(Glob.parse("B/r"), EntityType.ROOM,
                     Polygon.from_rect(Rect(0, 0, 10, 10)), "B")
        assert w.canonical_mbr("B/r") == Rect(100, 0, 110, 10)

    def test_canonical_polygon_of_non_polygon_raises(self, world):
        world.add_entity(Entity(Glob.parse("B/1/switch"),
                                EntityType.LIGHT_SWITCH,
                                Point(1, 1), "B/1"))
        with pytest.raises(WorldModelError):
            world.canonical_polygon("B/1/switch")

    def test_universe_covers_everything(self, world):
        assert world.universe() == Rect(0, 0, 100, 50)
        assert world.universe_area() == 5000.0

    def test_empty_world_has_no_universe(self):
        with pytest.raises(WorldModelError):
            WorldModel().universe()


class TestSymbolicResolution:
    def test_smallest_region_containing(self, world):
        entity = world.smallest_region_containing(Point(10, 10))
        assert entity is not None
        assert entity.identifier == "r1"

    def test_point_outside_everything(self, world):
        assert world.smallest_region_containing(Point(500, 500)) is None

    def test_regions_overlapping(self, world):
        overlapping = world.regions_overlapping(Rect(30, 10, 50, 20))
        names = {e.identifier for e in overlapping}
        assert {"r1", "r2", "1"} <= names

    def test_resolve_symbolic(self, world):
        assert world.resolve_symbolic("B/1/r2") == Rect(40, 0, 100, 50)
