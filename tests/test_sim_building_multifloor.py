"""Tests for the two-floor building (full building/floor/room depth)."""

import pytest

from repro.geometry import Point
from repro.reasoning import NavigationGraph
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import Scenario, SimClock, siebel_building
from repro.spatialdb import SpatialDatabase


@pytest.fixture(scope="module")
def building():
    return siebel_building()


class TestStructure:
    def test_both_floors_present(self, building):
        assert building.has("SC/2")
        assert building.has("SC/3")
        assert building.has("SC/2/Cafe")
        assert building.has("SC/3/3105")

    def test_floor2_height_in_frame(self, building):
        canonical = building.frames.convert_point(Point(0, 0), "SC/2", "")
        assert canonical.z == -12.0
        assert canonical.y == 150.0

    def test_floors_disjoint_in_canonical_plane(self, building):
        f2 = building.canonical_mbr("SC/2")
        f3 = building.canonical_mbr("SC/3")
        assert f2.is_disjoint(f3)

    def test_glob_hierarchy_depth(self, building):
        from repro.model import Glob
        cafe = Glob.parse("SC/2/Cafe")
        assert cafe.is_within(Glob.parse("SC"))
        assert cafe.is_within(Glob.parse("SC/2"))
        assert not cafe.is_within(Glob.parse("SC/3"))

    def test_stair_flight_connects_floors(self, building):
        assert building.doors_between("SC/3/Stairs", "SC/2/Stairs")


class TestCrossFloorNavigation:
    def test_route_spans_floors(self, building):
        nav = NavigationGraph(building)
        route = nav.route("SC/3/3102", "SC/2/Cafe")
        assert route is not None
        assert "SC/3/Stairs" in route.regions
        assert "SC/2/Stairs" in route.regions
        assert "SC/Stair-flight" in route.doors

    def test_cross_floor_distance_exceeds_same_floor(self, building):
        nav = NavigationGraph(building)
        same_floor = nav.path_distance("SC/3/3102", "SC/3/HCILab")
        cross_floor = nav.path_distance("SC/3/3102", "SC/2/2102")
        assert cross_floor > same_floor


class TestLocationAcrossFloors:
    def test_locate_on_each_floor(self, building):
        db = SpatialDatabase(building)
        clock = SimClock()
        service = LocationService(db, clock=clock)
        ubi3 = UbisenseAdapter("Ubi-3", "SC/3", frame="").attach(db)
        ubi2 = UbisenseAdapter("Ubi-2", "SC/2", frame="").attach(db)
        ubi3.tag_sighting("alice", Point(150, 20), 0.0)
        # bob is in the Cafe: canonical y offset +150.
        ubi2.tag_sighting("bob", Point(240, 230), 0.0)
        clock.advance(1.0)
        assert service.locate("alice").symbolic == "SC/3/3105"
        assert service.locate("bob").symbolic == "SC/2/Cafe"

    def test_colocation_granularities(self, building):
        db = SpatialDatabase(building)
        clock = SimClock()
        service = LocationService(db, clock=clock)
        ubi = UbisenseAdapter("Ubi-1", "SC", frame="").attach(db)
        ubi.tag_sighting("alice", Point(150, 20), 0.0)   # floor 3
        ubi.tag_sighting("bob", Point(240, 230), 0.0)    # floor 2
        clock.advance(1.0)
        same_building = service.colocation("alice", "bob",
                                           granularity_depth=1)
        same_floor = service.colocation("alice", "bob",
                                        granularity_depth=2)
        assert same_building.holds
        assert not same_floor.holds

    def test_scenario_runs_on_building(self):
        scenario = Scenario(world=siebel_building(), seed=3)
        scenario.deployment.install_rf_station("RF-3c", "SC/3/Corridor")
        scenario.deployment.install_rf_station("RF-2c", "SC/2/Corridor")
        scenario.add_people(4)
        scenario.run(300, dt=1.0)
        # People wander across floors via the stairwell.
        regions = {p.region for p in scenario.people}
        assert regions  # nobody got stuck outside the model
