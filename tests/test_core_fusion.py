"""Tests for Equation (7), exact Bayes, support confidence and cells."""

import math

import pytest

from repro.core import (
    CellDecomposition,
    eq7_region_probability,
    exact_region_probability,
    support_confidence,
)
from repro.errors import FusionError
from repro.geometry import Rect

UNIVERSE = Rect(0.0, 0.0, 500.0, 100.0)


class TestEq7:
    def test_no_readings_gives_uniform_prior(self):
        region = Rect(0, 0, 50, 50)
        assert eq7_region_probability(region, [], UNIVERSE.area) == \
            pytest.approx(region.area / UNIVERSE.area)

    def test_single_reading_matches_eq5_shape(self):
        region = Rect(10, 10, 40, 40)
        value = eq7_region_probability(
            region, [(region, 0.9, 0.1)], UNIVERSE.area)
        # Eq. (7) with one sensor on its own rect:
        # p*aR / (p*aR + q*aU) — note aU, not aU - aR (the printed
        # general formula is slightly more conservative than Eq. 5).
        a = region.area
        expected = 0.9 * a / (0.9 * a + 0.1 * UNIVERSE.area)
        assert value == pytest.approx(expected)

    def test_result_in_unit_interval(self):
        readings = [(Rect(0, 0, 30, 30), 0.9, 0.1),
                    (Rect(10, 10, 50, 50), 0.8, 0.2)]
        for region in (Rect(0, 0, 10, 10), Rect(5, 5, 45, 45), UNIVERSE):
            value = eq7_region_probability(region, readings, UNIVERSE.area)
            assert 0.0 <= value <= 1.0

    def test_exact_reinforcement_property(self):
        # The reinforcement the paper proves for Eq. (4) holds in the
        # exact engine for the general case too.
        region = Rect(10, 10, 40, 40)
        one = exact_region_probability(
            region, [(region, 0.9, 0.1)], UNIVERSE.area)
        two = exact_region_probability(
            region, [(region, 0.9, 0.1), (Rect(0, 0, 60, 60), 0.8, 0.2)],
            UNIVERSE.area)
        assert two > one

    def test_printed_eq7_over_penalizes_extra_sensors(self):
        # Documented inconsistency: the printed Eq. (7)'s denominator
        # gains a ~q*aU factor per sensor, so at building scale a
        # reinforcing reading *lowers* the printed value.  The exact
        # mode (engine default) fixes this.
        region = Rect(10, 10, 40, 40)
        one = eq7_region_probability(
            region, [(region, 0.9, 0.1)], UNIVERSE.area)
        two = eq7_region_probability(
            region, [(region, 0.9, 0.1), (Rect(0, 0, 60, 60), 0.8, 0.2)],
            UNIVERSE.area)
        assert two < one

    def test_disjoint_reading_decreases_probability(self):
        region = Rect(10, 10, 40, 40)
        base = eq7_region_probability(
            region, [(region, 0.9, 0.1)], UNIVERSE.area)
        conflicted = eq7_region_probability(
            region,
            [(region, 0.9, 0.1), (Rect(400, 60, 450, 90), 0.9, 0.1)],
            UNIVERSE.area)
        assert conflicted < base

    def test_invalid_probability_rejected(self):
        with pytest.raises(FusionError):
            eq7_region_probability(
                Rect(0, 0, 1, 1), [(Rect(0, 0, 1, 1), 1.1, 0.1)],
                UNIVERSE.area)

    def test_zero_universe_rejected(self):
        with pytest.raises(FusionError):
            eq7_region_probability(Rect(0, 0, 1, 1), [], 0.0)


class TestExact:
    def test_no_readings_gives_prior(self):
        region = Rect(0, 0, 100, 100)
        assert exact_region_probability(region, [], UNIVERSE.area) == \
            pytest.approx(region.area / UNIVERSE.area)

    def test_zero_area_region(self):
        assert exact_region_probability(
            Rect(5, 5, 5, 5), [(Rect(0, 0, 10, 10), 0.9, 0.1)],
            UNIVERSE.area) == 0.0

    def test_matches_cell_decomposition_on_reading_rect(self):
        readings = [(Rect(0, 0, 30, 30), 0.9, 0.1),
                    (Rect(20, 20, 60, 60), 0.8, 0.15)]
        cells = CellDecomposition(readings, UNIVERSE)
        for index, (rect, _, _) in enumerate(readings):
            exact = exact_region_probability(rect, readings, UNIVERSE.area)
            truth = cells.probability_in_reading(index)
            # The region-level exact formula assumes within-region
            # uniformity, so it agrees with the cell posterior closely
            # but not perfectly on partially-overlapped rects.
            assert exact == pytest.approx(truth, rel=0.15, abs=0.02)

    def test_exact_matches_cells_perfectly_for_nested_rects(self):
        inner = Rect(10, 10, 20, 20)
        outer = Rect(0, 0, 40, 40)
        readings = [(inner, 0.9, 0.05), (outer, 0.8, 0.1)]
        cells = CellDecomposition(readings, UNIVERSE)
        got = exact_region_probability(outer, readings, UNIVERSE.area)
        truth = cells.probability_in_reading(1)
        assert got == pytest.approx(truth, rel=1e-6)


class TestSupportConfidence:
    def test_empty_support_is_zero(self):
        assert support_confidence([]) == 0.0

    def test_single_sensor_with_complementary_q(self):
        # q = 1 - p makes the confidence exactly p.
        assert support_confidence([(0.8, 0.2)]) == pytest.approx(0.8)

    def test_reinforcement_raises_confidence(self):
        one = support_confidence([(0.9, 0.1)])
        two = support_confidence([(0.9, 0.1), (0.8, 0.2)])
        assert two > one

    def test_uninformative_sensor_changes_nothing(self):
        base = support_confidence([(0.9, 0.1)])
        with_noise = support_confidence([(0.9, 0.1), (0.5, 0.5)])
        assert with_noise == pytest.approx(base)

    def test_anti_evidence_lowers_confidence(self):
        base = support_confidence([(0.9, 0.1)])
        doubted = support_confidence([(0.9, 0.1), (0.3, 0.7)])
        assert doubted < base

    def test_zero_p_gives_zero(self):
        assert support_confidence([(0.0, 0.5)]) == 0.0

    def test_invalid_pair_rejected(self):
        with pytest.raises(FusionError):
            support_confidence([(1.2, 0.1)])


class TestCellDecomposition:
    def test_posterior_sums_to_one(self):
        readings = [(Rect(0, 0, 30, 30), 0.9, 0.1),
                    (Rect(20, 20, 60, 60), 0.8, 0.15),
                    (Rect(100, 0, 130, 30), 0.7, 0.2)]
        cells = CellDecomposition(readings, UNIVERSE)
        total = sum(cells.probability_of_signature(c.signature)
                    for c in {frozenset(c.signature): c
                              for c in cells.cells}.values())
        assert total == pytest.approx(1.0)

    def test_cell_areas_tile_universe(self):
        readings = [(Rect(0, 0, 30, 30), 0.9, 0.1),
                    (Rect(20, 20, 60, 60), 0.8, 0.15)]
        cells = CellDecomposition(readings, UNIVERSE)
        assert sum(c.area for c in cells.cells) == \
            pytest.approx(UNIVERSE.area)

    def test_probability_in_rect_of_universe_is_one(self):
        readings = [(Rect(0, 0, 30, 30), 0.9, 0.1)]
        cells = CellDecomposition(readings, UNIVERSE)
        assert cells.probability_in_rect(UNIVERSE) == pytest.approx(1.0)

    def test_intersection_cell_is_map_for_agreeing_sensors(self):
        a = Rect(0, 0, 30, 30)
        b = Rect(20, 20, 50, 50)
        cells = CellDecomposition([(a, 0.9, 0.05), (b, 0.9, 0.05)],
                                  UNIVERSE)
        assert cells.map_signature() == frozenset({0, 1})

    def test_reading_outside_universe_clipped(self):
        readings = [(Rect(490, 90, 600, 200), 0.9, 0.1)]
        cells = CellDecomposition(readings, UNIVERSE)
        assert sum(c.area for c in cells.cells) == \
            pytest.approx(UNIVERSE.area)

    def test_unknown_reading_index_rejected(self):
        cells = CellDecomposition([(Rect(0, 0, 1, 1), 0.9, 0.1)], UNIVERSE)
        with pytest.raises(FusionError):
            cells.probability_in_reading(5)
