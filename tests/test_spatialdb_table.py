"""Unit tests for repro.spatialdb.table — typed tables and triggers."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.spatialdb import Column, Schema, Table, Trigger


@pytest.fixture
def people() -> Table:
    schema = Schema(
        [Column("name", str), Column("age", int),
         Column("office", str, nullable=True)],
        primary_key=("name",),
    )
    return Table("people", schema)


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", int), Column("a", str)])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", int)], primary_key=("b",))

    def test_unknown_column_rejected(self, people):
        with pytest.raises(SchemaError):
            people.insert({"name": "ann", "age": 30, "height": 170})

    def test_type_validation(self, people):
        with pytest.raises(SchemaError):
            people.insert({"name": "ann", "age": "thirty", "office": None})

    def test_not_nullable(self, people):
        with pytest.raises(SchemaError):
            people.insert({"name": "ann", "age": None, "office": None})

    def test_int_accepted_for_float_column(self):
        table = Table("t", Schema([Column("x", float)]))
        table.insert({"x": 3})
        assert table.select()[0]["x"] == 3


class TestCrud:
    def test_insert_and_select(self, people):
        people.insert({"name": "ann", "age": 30, "office": "3105"})
        people.insert({"name": "bob", "age": 25, "office": None})
        assert len(people) == 2
        rows = people.select(order_by="age")
        assert [r["name"] for r in rows] == ["bob", "ann"]

    def test_primary_key_uniqueness(self, people):
        people.insert({"name": "ann", "age": 30, "office": None})
        with pytest.raises(SchemaError):
            people.insert({"name": "ann", "age": 31, "office": None})

    def test_get_by_primary_key(self, people):
        people.insert({"name": "ann", "age": 30, "office": None})
        assert people.get("ann")["age"] == 30
        assert people.get("zoe") is None

    def test_select_returns_copies(self, people):
        people.insert({"name": "ann", "age": 30, "office": None})
        row = people.select()[0]
        row["age"] = 99
        assert people.get("ann")["age"] == 30

    def test_select_where_and_limit(self, people):
        for i in range(10):
            people.insert({"name": f"p{i}", "age": i, "office": None})
        rows = people.select(lambda r: r["age"] >= 5, limit=3)
        assert len(rows) == 3
        assert all(r["age"] >= 5 for r in rows)

    def test_select_one(self, people):
        people.insert({"name": "ann", "age": 30, "office": None})
        assert people.select_one(Table.equals(name="ann"))["age"] == 30
        assert people.select_one(Table.equals(name="zzz")) is None

    def test_update(self, people):
        people.insert({"name": "ann", "age": 30, "office": None})
        count = people.update(Table.equals(name="ann"), {"age": 31})
        assert count == 1
        assert people.get("ann")["age"] == 31

    def test_update_changing_primary_key(self, people):
        people.insert({"name": "ann", "age": 30, "office": None})
        people.update(Table.equals(name="ann"), {"name": "anne"})
        assert people.get("ann") is None
        assert people.get("anne")["age"] == 30

    def test_update_pk_collision_rejected(self, people):
        people.insert({"name": "ann", "age": 30, "office": None})
        people.insert({"name": "bob", "age": 25, "office": None})
        with pytest.raises(SchemaError):
            people.update(Table.equals(name="bob"), {"name": "ann"})

    def test_delete(self, people):
        people.insert({"name": "ann", "age": 30, "office": None})
        people.insert({"name": "bob", "age": 25, "office": None})
        assert people.delete(lambda r: r["age"] < 28) == 1
        assert people.get("bob") is None
        assert len(people) == 1

    def test_count(self, people):
        for i in range(5):
            people.insert({"name": f"p{i}", "age": i, "office": None})
        assert people.count() == 5
        assert people.count(lambda r: r["age"] % 2 == 0) == 3

    def test_order_by_unknown_column(self, people):
        with pytest.raises(QueryError):
            people.select(order_by="nope")


class TestTriggers:
    def test_insert_trigger_fires_on_match(self, people):
        fired = []
        people.create_trigger(Trigger(
            "t1", "insert", Table.equals(office="3105"), fired.append))
        people.insert({"name": "ann", "age": 30, "office": "3105"})
        people.insert({"name": "bob", "age": 25, "office": "3102"})
        assert len(fired) == 1
        assert fired[0]["name"] == "ann"

    def test_delete_trigger(self, people):
        fired = []
        people.create_trigger(Trigger(
            "t1", "delete", lambda r: True, fired.append))
        people.insert({"name": "ann", "age": 30, "office": None})
        people.delete(Table.equals(name="ann"))
        assert [r["name"] for r in fired] == ["ann"]

    def test_update_trigger_sees_new_row(self, people):
        fired = []
        people.create_trigger(Trigger(
            "t1", "update", lambda r: True, fired.append))
        people.insert({"name": "ann", "age": 30, "office": None})
        people.update(Table.equals(name="ann"), {"age": 31})
        assert fired[0]["age"] == 31

    def test_invalid_event_rejected(self):
        with pytest.raises(QueryError):
            Trigger("t", "upsert", lambda r: True, lambda r: None)

    def test_duplicate_trigger_id_rejected(self, people):
        people.create_trigger(Trigger("t", "insert", lambda r: True,
                                      lambda r: None))
        with pytest.raises(QueryError):
            people.create_trigger(Trigger("t", "insert", lambda r: True,
                                          lambda r: None))

    def test_drop_trigger(self, people):
        fired = []
        people.create_trigger(Trigger("t", "insert", lambda r: True,
                                      fired.append))
        assert people.drop_trigger("t")
        assert not people.drop_trigger("t")
        people.insert({"name": "ann", "age": 30, "office": None})
        assert fired == []

    def test_disabled_trigger_does_not_fire(self, people):
        fired = []
        trigger = Trigger("t", "insert", lambda r: True, fired.append)
        trigger.enabled = False
        people.create_trigger(trigger)
        people.insert({"name": "ann", "age": 30, "office": None})
        assert fired == []

    def test_trigger_receives_copy(self, people):
        captured = []
        people.create_trigger(Trigger("t", "insert", lambda r: True,
                                      captured.append))
        people.insert({"name": "ann", "age": 30, "office": None})
        captured[0]["age"] = 99
        assert people.get("ann")["age"] == 30

    def test_many_triggers_all_evaluated(self, people):
        counters = []
        for i in range(50):
            counter = []
            counters.append(counter)
            people.create_trigger(Trigger(
                f"t{i}", "insert", Table.equals(age=i), counter.append))
        people.insert({"name": "ann", "age": 7, "office": None})
        fired = [i for i, c in enumerate(counters) if c]
        assert fired == [7]
        assert people.trigger_count() == 50
