"""Unit tests for repro.geometry.rect."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Rect, mbr_of_rects, union_area


class TestConstruction:
    def test_inverted_bounds_rejected(self):
        with pytest.raises(GeometryError):
            Rect(10, 0, 0, 10)
        with pytest.raises(GeometryError):
            Rect(0, 10, 10, 0)

    def test_degenerate_rect_allowed(self):
        r = Rect(5, 5, 5, 5)
        assert r.area == 0.0
        assert r.is_degenerate()

    def test_from_points(self):
        r = Rect.from_points([Point(3, 7), Point(-1, 2), Point(5, 0)])
        assert r == Rect(-1, 0, 5, 7)

    def test_from_points_empty_rejected(self):
        with pytest.raises(GeometryError):
            Rect.from_points([])

    def test_from_center_square(self):
        r = Rect.from_center(Point(10, 10), 2.5)
        assert r == Rect(7.5, 7.5, 12.5, 12.5)

    def test_from_center_rectangular(self):
        r = Rect.from_center(Point(0, 0), 2, 3)
        assert (r.width, r.height) == (4, 6)

    def test_from_center_negative_extent_rejected(self):
        with pytest.raises(GeometryError):
            Rect.from_center(Point(0, 0), -1)


class TestMeasures:
    def test_area_and_perimeter(self):
        r = Rect(0, 0, 4, 3)
        assert r.area == 12
        assert r.perimeter == 14

    def test_center(self):
        assert Rect(0, 0, 10, 20).center == Point(5, 10)

    def test_corners_counter_clockwise(self):
        corners = Rect(0, 0, 1, 2).corners
        assert corners == (Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 2))


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(10, 10))
        assert not r.contains_point(Point(10.01, 5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 11, 8))

    def test_strict_containment_excludes_shared_edges(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect_strictly(Rect(1, 1, 9, 9))
        assert not outer.contains_rect_strictly(Rect(0, 1, 9, 9))

    def test_touching_rects_intersect_but_do_not_overlap(self):
        a = Rect(0, 0, 5, 5)
        b = Rect(5, 0, 10, 5)
        assert a.intersects(b)
        assert not a.overlaps(b)
        assert a.touches(b)

    def test_disjoint(self):
        assert Rect(0, 0, 1, 1).is_disjoint(Rect(2, 2, 3, 3))
        assert not Rect(0, 0, 1, 1).is_disjoint(Rect(1, 1, 3, 3))


class TestCombinators:
    def test_intersection_of_overlapping(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 15, 15)
        assert a.intersection(b) == Rect(5, 5, 10, 10)
        assert a.intersection_area(b) == 25

    def test_intersection_of_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None
        assert Rect(0, 0, 1, 1).intersection_area(Rect(5, 5, 6, 6)) == 0.0

    def test_intersection_commutative(self):
        a = Rect(0, 0, 7, 3)
        b = Rect(2, 1, 9, 8)
        assert a.intersection(b) == b.intersection(a)

    def test_union_mbr(self):
        assert Rect(0, 0, 1, 1).union_mbr(Rect(5, 5, 6, 6)) == \
            Rect(0, 0, 6, 6)

    def test_expanded_and_shrunk(self):
        r = Rect(5, 5, 10, 10).expanded(2)
        assert r == Rect(3, 3, 12, 12)
        assert Rect(0, 0, 10, 10).expanded(-2) == Rect(2, 2, 8, 8)

    def test_over_shrinking_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 2, 2).expanded(-2)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(5, -1) == Rect(5, -1, 6, 0)

    def test_clipped_to(self):
        assert Rect(-5, -5, 5, 5).clipped_to(Rect(0, 0, 10, 10)) == \
            Rect(0, 0, 5, 5)


class TestDistances:
    def test_distance_to_point_inside_is_zero(self):
        assert Rect(0, 0, 10, 10).distance_to_point(Point(5, 5)) == 0.0

    def test_distance_to_point_diagonal(self):
        assert Rect(0, 0, 10, 10).distance_to_point(Point(13, 14)) == 5.0

    def test_distance_between_rects(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(13, 14, 20, 20)
        assert a.distance_to_rect(b) == 5.0
        assert a.distance_to_rect(Rect(5, 5, 20, 20)) == 0.0

    def test_center_distance(self):
        a = Rect(0, 0, 2, 2)       # center (1, 1)
        b = Rect(3, 4, 5, 6)       # center (4, 5)
        assert a.center_distance(b) == 5.0


class TestHelpers:
    def test_mbr_of_rects(self):
        mbr = mbr_of_rects([Rect(0, 0, 1, 1), Rect(5, -2, 6, 0)])
        assert mbr == Rect(0, -2, 6, 1)

    def test_mbr_of_empty_rejected(self):
        with pytest.raises(GeometryError):
            mbr_of_rects([])

    def test_union_area_disjoint(self):
        assert union_area([Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)]) == 2.0

    def test_union_area_overlapping_not_double_counted(self):
        assert union_area([Rect(0, 0, 2, 2), Rect(1, 0, 3, 2)]) == 6.0

    def test_union_area_contained(self):
        assert union_area([Rect(0, 0, 10, 10), Rect(2, 2, 4, 4)]) == 100.0

    def test_union_area_empty(self):
        assert union_area([]) == 0.0
