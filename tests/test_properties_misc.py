"""Cross-cutting property tests: GLOBs, blueprints, the wire codec."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Polygon, Rect
from repro.model import (
    EntityType,
    FrameTransform,
    Glob,
    WorldModel,
    world_from_json,
    world_to_json,
)
from repro.orb import dumps, loads

name_alphabet = string.ascii_letters + string.digits + "_-."
names = st.text(alphabet=name_alphabet, min_size=1, max_size=12).filter(
    lambda s: s.strip("."))
coords = st.floats(min_value=-5000, max_value=5000,
                   allow_nan=False, allow_infinity=False)


@st.composite
def glob_strings(draw):
    segments = draw(st.lists(names, min_size=1, max_size=5))
    if draw(st.booleans()):
        # Append a coordinate leaf.
        point_count = draw(st.integers(1, 4))
        points = []
        for _ in range(point_count):
            x = draw(st.integers(-999, 999))
            y = draw(st.integers(-999, 999))
            points.append(f"({x},{y})")
        return "/".join(segments + points)
    return "/".join(segments)


class TestGlobProperties:
    @settings(max_examples=200, deadline=None)
    @given(glob_strings())
    def test_parse_format_roundtrip(self, text):
        glob = Glob.parse(text)
        again = Glob.parse(glob.format())
        assert again == glob

    @settings(max_examples=100, deadline=None)
    @given(glob_strings())
    def test_is_within_every_ancestor(self, text):
        glob = Glob.parse(text)
        for ancestor in glob.ancestors():
            assert glob.is_within(ancestor)

    @settings(max_examples=100, deadline=None)
    @given(glob_strings(), st.integers(1, 6))
    def test_truncation_never_deepens(self, text, depth):
        glob = Glob.parse(text)
        truncated = glob.truncated_to_depth(depth)
        assert truncated.depth <= max(depth, glob.depth)
        assert truncated.is_symbolic or truncated == glob


@st.composite
def random_worlds(draw):
    """Small random office worlds: disjoint rooms on one floor."""
    world = WorldModel()
    world.add_frame("B", "", FrameTransform(
        dx=draw(st.floats(-50, 50)), dy=draw(st.floats(-50, 50))))
    room_count = draw(st.integers(1, 5))
    world.add_region(Glob.parse("B/1"), EntityType.FLOOR,
                     Polygon.from_rect(Rect(0, 0, room_count * 30.0,
                                            40.0)), "B")
    for i in range(room_count):
        x0 = i * 30.0
        world.add_region(
            Glob.parse(f"B/1/r{i}"), EntityType.ROOM,
            Polygon.from_rect(Rect(x0 + 1, 1, x0 + 29, 39)), "B",
            capacity=draw(st.integers(1, 20)))
    return world


class TestBlueprintProperties:
    @settings(max_examples=30, deadline=None)
    @given(random_worlds())
    def test_roundtrip_preserves_geometry(self, world):
        rebuilt = world_from_json(world_to_json(world))
        for entity in world.entities():
            key = str(entity.glob)
            assert rebuilt.canonical_mbr(key).almost_equals(
                world.canonical_mbr(key), 1e-6)
            assert rebuilt.get(key).properties == entity.properties


json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-10**9, 10**9)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(alphabet=string.ascii_letters, min_size=1,
                              max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestCodecProperties:
    @settings(max_examples=150, deadline=None)
    @given(json_values)
    def test_json_roundtrip(self, value):
        assert loads(dumps(value)) == value

    @settings(max_examples=100, deadline=None)
    @given(coords, coords, st.floats(0.1, 100, allow_nan=False),
           st.floats(0.1, 100, allow_nan=False))
    def test_rect_roundtrip(self, x, y, w, h):
        rect = Rect(x, y, x + w, y + h)
        assert loads(dumps(rect)) == rect

    @settings(max_examples=100, deadline=None)
    @given(coords, coords, coords)
    def test_point_roundtrip(self, x, y, z):
        assert loads(dumps(Point(x, y, z))) == Point(x, y, z)
