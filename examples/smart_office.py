"""Smart office: the extension features working together.

Combines the reproduction's added capabilities on one floor:

* the spatial SQL dialect (Section 5.1's example query);
* proximity subscriptions (Section 5.3's distance condition);
* location history — trajectories, speed, regions visited;
* the route advisor (Section 4.6.1's route-finding applications);
* RCC-8 composition inference over the floor's regions.

Run:  python examples/smart_office.py
"""

from __future__ import annotations

from repro.apps import RouteAdvisor
from repro.geometry import Point
from repro.reasoning import RCC8, RelationNetwork, region_rcc8
from repro.sensors import UbisenseAdapter
from repro.service import LocationHistory, LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


def main() -> None:
    world = siebel_floor()
    world.get("SC/3/3216").properties["bluetooth_signal"] = 0.85
    world.get("SC/3/3105").properties["bluetooth_signal"] = 0.9
    db = SpatialDatabase(world)
    clock = SimClock()
    history = LocationHistory(min_interval=0.0)
    service = LocationService(db, clock=clock, history=history)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)

    print("=== spatial SQL (Section 5.1) ===")
    rows = db.query(
        "SELECT glob FROM spatial_objects "
        "WHERE object_type = 'Room' "
        "AND properties.power_outlets = true "
        "AND properties.bluetooth_signal >= 0.8 "
        "NEAREST TO (230, 20) LIMIT 2")
    for row in rows:
        print(f"  {row['glob']} ({row['distance']:.0f} ft away)")

    print("\n=== proximity subscription (Section 5.3) ===")
    meetings = []
    service.subscribe_proximity("alice", "bob", threshold_ft=15.0,
                                kind="both", consumer=meetings.append)
    # alice works in 3102; bob walks down the corridor to meet her.
    path = [(250.0, 50.0), (150.0, 50.0), (60.0, 50.0), (50.0, 30.0),
            (50.0, 22.0), (52.0, 20.0), (120.0, 50.0), (260.0, 50.0)]
    for step, (x, y) in enumerate(path):
        now = clock.advance(15.0)
        ubi.tag_sighting("alice", Point(50, 20), now)
        ubi.tag_sighting("bob", Point(x, y), now)
        service.locate("alice")
        service.locate("bob")
    for event in meetings:
        print(f"  t={event['time']:>4.0f}s alice/bob "
              f"{event['transition']} within "
              f"{event['threshold_ft']:.0f} ft "
              f"(actual {event['distance_ft']:.1f} ft)")

    print("\n=== location history ===")
    print(f"  bob's regions: "
          f"{' -> '.join(history.regions_visited('bob'))}")
    print(f"  bob's average speed: "
          f"{history.speed('bob', window=120.0):.1f} ft/s")
    print(f"  bob travelled: "
          f"{history.distance_travelled('bob'):.0f} ft")
    print(f"  alice stationary: "
          f"{history.is_stationary('alice', window=60.0)}")

    print("\n=== route advisor ===")
    advisor = RouteAdvisor(service)
    print(advisor.advise("bob", "SC/3/3216"))
    print()
    print(advisor.advise("bob", "SC/3/3105"))  # locked lab

    print("\n=== RCC-8 composition inference ===")
    network = RelationNetwork(["SC/3", "SC/3/3105",
                               "SC/3/3105/workstation1"])
    network.set_relation("SC/3/3105", "SC/3",
                         [region_rcc8(world, "SC/3/3105", "SC/3")])
    network.set_relation("SC/3/3105/workstation1", "SC/3/3105",
                         [RCC8.NTPP])
    network.propagate()
    inferred = network.relation("SC/3/3105/workstation1", "SC/3")
    print(f"  workstation1 vs floor (never measured): "
          f"{{{', '.join(r.value for r in inferred)}}}")


if __name__ == "__main__":
    main()
