"""Anywhere Instant Messaging (paper Section 8.2).

Messages route to whichever display is closest to the recipient;
recipients can block senders at certain locations; private messages
deliver only when the recipient's location is known accurately AND
nobody else is in the immediate vicinity.

Run:  python examples/anywhere_messaging.py
"""

from __future__ import annotations

from repro.apps import AnywhereIM
from repro.core import ProbabilityBucket
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


def show(delivery) -> None:
    target = delivery.display or "-"
    reason = f" ({delivery.reason})" if delivery.reason else ""
    print(f"  [{delivery.status:>9}] "
          f"{delivery.message.sender} -> {delivery.message.recipient}: "
          f"{delivery.message.text!r} @ {target}{reason}")


def main() -> None:
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubisense = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)

    im = AnywhereIM(service)
    im.add_buddy("bob", "alice")      # alice is on bob's buddy list
    im.add_buddy("bob", "carol")
    # bob silences carol while he is presenting in the conference room.
    im.block_at("bob", "carol", "SC/3/ConferenceRoom")
    im.preferences("bob").private_min_bucket = ProbabilityBucket.LOW

    print("1) bob works near the HCILab display:")
    ubisense.tag_sighting("bob", Point(290, 5), clock.advance(10))
    show(im.send("alice", "bob", "coffee in five?"))

    print("\n2) a stranger tries to reach bob:")
    show(im.send("mallory", "bob", "click this link"))

    print("\n3) bob moves to the conference room; carol is blocked "
          "there, alice is not:")
    ubisense.tag_sighting("bob", Point(190, 85), clock.advance(60))
    show(im.send("carol", "bob", "are you free?"))
    show(im.send("alice", "bob", "meeting going ok?"))

    print("\n4) eve sits next to bob; a private message queues:")
    now = clock.advance(5)
    ubisense.tag_sighting("bob", Point(190, 85), now)
    ubisense.tag_sighting("eve", Point(192, 84), now)
    show(im.send("alice", "bob", "the offer is 120k", private=True))

    print("\n5) eve leaves; flushing the queue delivers it:")
    now = clock.advance(10)
    ubisense.tag_sighting("eve", Point(30, 10), now)
    ubisense.tag_sighting("bob", Point(190, 85), now)
    for delivery in im.flush_queue():
        show(delivery)

    print("\ndisplay inboxes:")
    for display, inbox in sorted(im.displays_inboxes.items()):
        print(f"  {display}: {[m.text for m in inbox]}")


if __name__ == "__main__":
    main()
