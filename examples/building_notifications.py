"""Location-Based Notifications + Vocal Personnel Locator
(paper Sections 8.3 and 8.4) over a running simulation.

Geofenced greetings fire as people enter watched rooms; a broadcast
reaches everyone currently inside a boundary; and the voice-style
locator answers "where is", "who is in" and "which display is
nearest" questions against the same Location Service.

Run:  python examples/building_notifications.py
"""

from __future__ import annotations

from repro import Scenario
from repro.apps import NotificationCenter, VocalPersonnelLocator


def main() -> None:
    scenario = Scenario(seed=19).standard_deployment()
    people = scenario.add_people(6)
    service = scenario.service

    center = NotificationCenter(service)
    conference = center.watch("SC/3/ConferenceRoom",
                              greeting="Welcome — the 2pm seminar "
                                       "starts shortly.",
                              threshold=0.4)
    lab = center.watch("SC/3/3105",
                       greeting="Reminder: safety glasses in the lab.",
                       threshold=0.4)

    print("running ten minutes of building life...\n")
    scenario.run(600, dt=1.0)

    print("=== geofence greetings delivered ===")
    for notifier, name in ((conference, "ConferenceRoom"),
                           (lab, "3105")):
        print(f"{name}: {len(notifier.delivered)} greetings, "
              f"currently inside: {sorted(notifier.occupants)}")
        for delivered in notifier.delivered[:3]:
            print(f"   t={delivered.time:.0f}s -> {delivered.recipient}")

    print("\n=== broadcast: 'The building closes in five minutes' ===")
    reached = center.broadcast_all("The building closes in five minutes")
    print(f"reached {reached} people across watched regions")

    print("\n=== vocal personnel locator ===")
    locator = VocalPersonnelLocator(service)
    for utterance in (
        f"where is {people[0]}?",
        f"where is {people[1]}?",
        "who is in the corridor?",
        "who is in the conference room?",
        f"which display is nearest {people[0]}?",
        "where is the-invisible-man?",
    ):
        print(f"  Q: {utterance}")
        print(f"  A: {locator.ask(utterance)}\n")

    center.close()


if __name__ == "__main__":
    main()
