"""Quickstart: stand up MiddleWhere over a simulated building.

Builds the Siebel-style floor, deploys the paper's four location
technologies, walks three people around for two simulated minutes,
and runs the basic pull-mode queries: where is everyone, with what
confidence, who is in which room, and what spatial relations hold.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Scenario
from repro.errors import UnknownObjectError


def main() -> None:
    # A reproducible world: seeded movement, seeded sensor errors.
    scenario = Scenario(seed=7).standard_deployment()
    people = scenario.add_people(3)
    print(f"deployed sensors: "
          f"{[row['sensor_id'] for row in scenario.db.sensor_specs.select()]}")
    print(f"people: {people}\n")

    # Two minutes of building life, one-second ticks.
    scenario.run(120, dt=1.0)
    service = scenario.service

    print("=== object-based queries (Section 4.2) ===")
    for person in people:
        truth = scenario.movement.person(person)
        try:
            estimate = service.locate(person)
        except UnknownObjectError:
            print(f"{person}: not currently locatable "
                  f"(truth: {truth.region})")
            continue
        print(f"{person}: {estimate.symbolic} "
              f"confidence={estimate.probability:.2f} "
              f"[{estimate.bucket.value}] via {estimate.sources} "
              f"(truth: {truth.region})")

    print("\n=== region-based queries ===")
    for room in ("SC/3/3105", "SC/3/Corridor", "SC/3/ConferenceRoom"):
        occupants = service.objects_in_region(room, min_confidence=0.5)
        print(f"{room}: {occupants if occupants else 'empty'}")

    print("\n=== spatial relationships (Section 4.6) ===")
    locatable = []
    for person in people:
        try:
            service.locate(person)
            locatable.append(person)
        except UnknownObjectError:
            pass
    if len(locatable) >= 2:
        a, b = locatable[0], locatable[1]
        proximity = service.proximity(a, b, threshold=30.0)
        colocated = service.colocation(a, b, granularity_depth=2)
        distance = service.distance_between(a, b)
        path = service.distance_between(a, b, path=True)
        print(f"proximity({a}, {b}, 30ft): holds={proximity.holds} "
              f"p={proximity.probability:.2f}")
        print(f"same floor: holds={colocated.holds}")
        print(f"euclidean distance: {distance:.1f} ft"
              + (f", path distance: {path:.1f} ft" if path else ""))

    print("\n=== push mode: a region subscription (Section 4.3) ===")
    events = []
    service.subscribe("SC/3/Corridor", consumer=events.append,
                      kind="both", threshold=0.3)
    scenario.run(180, dt=1.0)
    print(f"corridor events over 3 more minutes: {len(events)}")
    for event in events[:5]:
        print(f"  t={event['time']:.0f}s {event['object_id']} "
              f"{event['transition']} (confidence "
              f"{event['confidence']:.2f})")


if __name__ == "__main__":
    main()
