"""The Follow Me application (paper Section 8.1) on a live scenario.

A user's session (applications + files + state) follows them between
displays and workstations: when they enter a device's usage region
with sufficient confidence the session resumes there; when they walk
away it suspends.

Run:  python examples/follow_me_sessions.py
"""

from __future__ import annotations

from repro.apps import FollowMeApp, FollowMePreferences
from repro.core import ProbabilityBucket
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


def main() -> None:
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    # One building-wide UWB deployment tracks alice's badge precisely.
    ubisense = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)

    app = FollowMeApp(service)
    proxy = app.register_user(
        "alice",
        FollowMePreferences(min_bucket=ProbabilityBucket.MEDIUM))
    session = proxy.session
    session.applications.extend(["editor", "mail"])
    session.open_files.append("/home/alice/paper.tex")

    # alice's day: her office workstation, a meeting at the conference
    # room display, a stop in the HCILab, then the corridor (no host).
    itinerary = [
        ("at her 3105 workstation", Point(146, 4)),
        ("still typing", Point(146, 5)),
        ("walking the corridor", Point(200, 50)),
        ("presenting in the conference room", Point(190, 85)),
        ("chatting near the HCILab display", Point(290, 5)),
        ("leaving for lunch", Point(10, 50)),
    ]

    print("Follow Me: alice's session migrations\n")
    for description, position in itinerary:
        clock.advance(30.0)
        ubisense.tag_sighting("alice", position, clock.now())
        event = proxy.tick()
        state = ("suspended" if session.suspended
                 else f"live on {session.host}")
        change = (f" -> {event.action.upper()}"
                  f"{' @ ' + event.host if event.host else ''}"
                  if event else "")
        print(f"t={clock.now():>5.0f}s  alice {description:<40} "
              f"session: {state}{change}")

    print(f"\ntotal migrations: {session.migrations}")
    print(f"migration log: {[(e.action, e.host) for e in proxy.events]}")


if __name__ == "__main__":
    main()
