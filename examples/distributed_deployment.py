"""The distributed face of MiddleWhere (paper Section 7).

The Location Service registers with an ORB, binds itself in the
naming service (the Gaia Space Repository role), and listens on TCP.
A separate "application" ORB discovers it by name, pulls location
over the socket, and registers its own callback servant to receive
push notifications — the full CORBA-style deployment, in one process
for convenience but crossing a real TCP boundary.

Sensor readings travel the streaming ingestion pipeline: adapters
emit into a bounded intake queue, worker threads batch and fuse, and
region triggers are evaluated once per fused batch.  The pipeline is
drained before the pull-mode queries so every reading is visible.

Run:  python examples/distributed_deployment.py
"""

from __future__ import annotations

from repro import NamingService, Orb, Scenario
from repro.service import SERVICE_NAME


class NotificationSink:
    """The application's callback servant for pushed events."""

    def __init__(self) -> None:
        self.events = []

    def notify(self, event) -> None:
        self.events.append(event)
        print(f"  [push] t={event['time']:>5.1f}s {event['object_id']} "
              f"{event['transition']} {event['region_glob'] or 'region'}"
              f" (confidence {event['confidence']:.2f})")


def main() -> None:
    # --- server side: the middleware deployment --------------------
    scenario = Scenario(seed=19).standard_deployment()
    people = scenario.add_people(4)
    pipeline = scenario.use_pipeline(workers=2)
    naming = NamingService()
    reference = scenario.publish(naming=naming, listen_tcp=True)
    print(f"location service published at {reference}")
    print(f"naming service lists: {naming.list_services()}\n")

    # --- client side: a remote Gaia application --------------------
    app_orb = Orb("application")
    app_orb.listen()
    try:
        service_ref = naming.resolve(SERVICE_NAME)
        location = app_orb.resolve(service_ref)

        # Push mode: subscribe a remote callback to the corridor.
        sink = NotificationSink()
        sink_ref = app_orb.register("sink", sink)
        corridor = scenario.world.canonical_mbr("SC/3/Corridor")
        subscription = location.subscribe(corridor, sink_ref,
                                          kind="both", threshold=0.3)
        print(f"subscribed remotely: {subscription}\n"
              f"running five simulated minutes...\n")
        scenario.run(300, dt=1.0)
        pipeline.drain()

        # Pull mode: query over the socket.  Remote errors arrive as
        # RemoteInvocationError with the server-side type preserved.
        from repro.errors import RemoteInvocationError

        print("\npull-mode queries over TCP:")
        for person in location.tracked_objects():
            try:
                estimate = location.locate(person)
            except RemoteInvocationError as exc:
                print(f"  {person}: {exc.remote_type} "
                      f"({exc.remote_message})")
                continue
            print(f"  {person}: {estimate.symbolic} "
                  f"({estimate.bucket.value}, "
                  f"p={estimate.probability:.2f})")
        print(f"\npush events received: {len(sink.events)}")
        location.unsubscribe(subscription)

        print("\npipeline statistics:")
        print(pipeline.stats().summary())
    finally:
        pipeline.stop()
        app_orb.shutdown()
        scenario.orb.shutdown()


if __name__ == "__main__":
    main()
