"""Outdoor-to-indoor handoff: GPS outside, Ubisense inside.

The paper focuses on indoor spaces but designs the model to extend
outdoors (Section 3); its GPS adapter (Section 6 item 4) exists for
exactly this.  A student walks across the quad (GPS fixes, 15-30 ft
accuracy) into the building (satellite lock lost; the indoor UWB cell
takes over).  MiddleWhere's freshness model and conflict resolution
make the handoff automatic: the stale GPS rectangle expires / loses
to the moving indoor readings.

Run:  python examples/campus_gps_handoff.py
"""

from __future__ import annotations

from repro.errors import UnknownObjectError
from repro.geometry import Point
from repro.sensors import GeodeticCalibration, GpsAdapter, UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, campus_world
from repro.spatialdb import SpatialDatabase

# The campus origin pinned to real coordinates (Siebel Center).
CAMPUS_CAL = GeodeticCalibration(reference_lat=40.1138,
                                 reference_lon=-88.2249)


def main() -> None:
    world = campus_world()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)

    gps = GpsAdapter("GPS-walker", "Campus", CAMPUS_CAL,
                     carry_probability=0.95, frame="").attach(db)
    indoor = UbisenseAdapter("Ubi-lobby", "SC/1", frame="").attach(db)

    # The walk: across the quad, through the entrance (at canonical
    # (315-325, 150)), into the lobby and on to the east wing.
    walk = [
        ("crossing the quad", Point(100, 80), "gps", 20.0),
        ("approaching the building", Point(280, 130), "gps", 15.0),
        ("at the entrance", Point(320, 148), "gps", 15.0),
        ("inside the lobby", Point(320, 200), "indoor", None),
        ("heading east", Point(360, 200), "indoor", None),
        ("in the east wing", Point(400, 200), "indoor", None),
    ]

    print("campus handoff: GPS outdoors -> UWB indoors\n")
    for description, position, technology, accuracy in walk:
        now = clock.advance(20.0)
        if technology == "gps":
            lat, lon = CAMPUS_CAL.to_geodetic(position)
            gps.fix("walker", lat, lon, now, accuracy_ft=accuracy)
        else:
            indoor.tag_sighting("walker", position, now)
        try:
            estimate = service.locate("walker")
        except UnknownObjectError:
            print(f"t={now:>4.0f}s {description:<28} -> not locatable")
            continue
        size = max(estimate.rect.width, estimate.rect.height)
        print(f"t={now:>4.0f}s {description:<28} -> "
              f"{estimate.symbolic or '(coords)':<16} "
              f"via {estimate.sources[0]:<11} "
              f"±{size / 2:>4.1f} ft  "
              f"confidence={estimate.probability:.2f}")

    print("\nafter the handoff the GPS reading has expired:")
    final = service.locate("walker")
    print(f"sources = {final.sources} (GPS gone), "
          f"region = {final.symbolic}")

    print("\nroute-finding still spans outdoors and indoors:")
    from repro.reasoning import NavigationGraph
    nav = NavigationGraph(world)
    route = nav.route("Campus/Quad", "SC/1/EastWing")
    assert route is not None
    print(f"quad -> east wing: {' -> '.join(route.regions)} "
          f"({route.distance:.0f} ft through "
          f"{len(route.doors)} doors)")


if __name__ == "__main__":
    main()
