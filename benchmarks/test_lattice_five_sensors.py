"""Figures 5-6 / Equation 7: the five-sensor lattice.

Reproduces the paper's worked example: five sensor rectangles where
S1/S2/S3 chain-overlap (creating intersection regions), S4 nests
inside S3, and S5 is disjoint — "these regions form a lattice".  The
bench prints the Hasse structure and per-region probabilities, checks
the structural claims, and times lattice construction + fusion.
"""

from __future__ import annotations

import pytest

from _support import write_result
from repro.core import (
    CellDecomposition,
    FusionEngine,
    NormalizedReading,
    ProbabilityClassifier,
    SensorSpec,
)
from repro.geometry import Rect

UNIVERSE = Rect(0.0, 0.0, 500.0, 100.0)

# The Figure-5 arrangement (coordinates are ours; topology is the
# paper's: chain overlaps creating D..G, S4 inside S3, S5 disjoint).
S1 = Rect(10, 10, 60, 60)
S2 = Rect(40, 20, 110, 70)
S3 = Rect(90, 10, 180, 80)
S4 = Rect(120, 30, 150, 60)
S5 = Rect(300, 20, 360, 70)
LAYOUT = [S1, S2, S3, S4, S5]


def _readings():
    spec = SensorSpec("T", 1.0, 0.9, 0.1, resolution=5.0,
                      time_to_live=1e9)
    return [NormalizedReading(f"S{i + 1}", "tom", rect, 0.0, spec,
                              moving=(i == 3))  # S4's person is walking
            for i, rect in enumerate(LAYOUT)]


def test_fig5_fig6_lattice(benchmark, results_dir):
    engine = FusionEngine()
    result = engine.fuse("tom", _readings(), UNIVERSE, 0.0)
    lattice = result.lattice

    sensor_ids = lattice.sensor_node_ids()
    id_to_name = {nid: f"S{i + 1}" for i, nid in enumerate(sensor_ids)}

    lines = ["Figures 5-6 reproduction: lattice of five sensor "
             "rectangles"]
    lines.append(f"nodes: {len(lattice)} (Top + Bottom + "
                 f"{len(lattice.region_nodes())} regions)")
    intersections = lattice.intersection_node_ids()
    lines.append(f"intersection regions created: {len(intersections)}")
    for node in sorted(lattice.region_nodes(), key=lambda n: -n.area):
        name = id_to_name.get(node.node_id, node.node_id)
        supporters = ",".join(sorted(
            f"S{i + 1}" for i in node.sources))
        lines.append(
            f"  {name:<4} area={node.area:>7.1f} sources=[{supporters}] "
            f"P={node.probability:.6f} conf={node.confidence:.4f}")

    # Structural claims of Figure 6.
    top = lattice.node("Top")
    # S1, S2, S3, S5 hang off Top; S4 nests under S3.
    for index in (0, 1, 2, 4):
        assert sensor_ids[index] in top.children
    assert sensor_ids[2] in lattice.node(sensor_ids[3]).parents
    # D = S1 ∩ S2 and E = S2 ∩ S3 exist.
    assert lattice.node_for_rect(S1.intersection(S2)) is not None
    assert lattice.node_for_rect(S2.intersection(S3)) is not None
    # S5 conflicts; S4 moves, so the S1..S4 component wins?  No — the
    # moving rule prefers the component containing S4.
    assert 4 in result.discarded
    lines.append(f"conflict: S5 discarded by rule 1 "
                 f"(component with moving S4 wins)")

    # "The probability that the person is actually within the region D
    # ... is influenced by sensors s1, s2, s3 and s4" — via Eq. 7 every
    # winning sensor's rect enters the computation; the D node's direct
    # sources are the rects containing it.
    d_node = lattice.node_for_rect(S1.intersection(S2))
    assert d_node.sources == {0, 1}
    write_result(results_dir, "fig5_fig6_lattice", lines)

    benchmark(lambda: engine.fuse("tom", _readings(), UNIVERSE, 0.0))


def test_eq7_against_cell_ground_truth(benchmark, results_dir):
    """Eq. 7 (engine exact mode) vs the exact cell-level posterior."""
    engine = FusionEngine()
    readings = _readings()[:4]  # the connected component only
    result = engine.fuse("tom", readings, UNIVERSE, 0.0)
    cells = CellDecomposition(result.weighted, UNIVERSE)

    lines = ["Region posteriors: engine (region-exact) vs cell ground "
             "truth",
             f"{'region':>8} {'engine':>10} {'cells':>10}"]
    worst = 0.0
    for i, reading in enumerate(readings):
        engine_value = result.probability_of_region(reading.rect)
        truth = cells.probability_in_reading(i)
        worst = max(worst, abs(engine_value - truth))
        lines.append(f"{'S' + str(i + 1):>8} {engine_value:>10.4f} "
                     f"{truth:>10.4f}")
    lines.append(f"max |engine - cells| = {worst:.4f}")
    assert worst < 0.25
    write_result(results_dir, "eq7_vs_cells", lines)

    benchmark(lambda: CellDecomposition(result.weighted, UNIVERSE))


def test_point_estimate_from_lattice(benchmark, results_dir):
    """Section 4.2: reduce the lattice to a single location value."""
    engine = FusionEngine()
    classifier = ProbabilityClassifier([0.75, 0.9, 0.95])
    readings = _readings()

    def estimate():
        result = engine.fuse("tom", readings, UNIVERSE, 0.0)
        return engine.point_estimate(result, classifier)

    value = estimate()
    lines = ["Point estimate from the five-sensor lattice",
             f"rect = {value.rect}",
             f"confidence = {value.probability:.4f} "
             f"({value.bucket.value})",
             f"sources = {value.sources}"]
    # The estimate comes from the winning (moving S4) component — never
    # from the discarded S5 — and is one of its doubly-supported
    # minimal regions.
    assert value.rect.is_disjoint(S5)
    assert len(value.sources) >= 2
    write_result(results_dir, "lattice_point_estimate", lines)
    benchmark(estimate)
