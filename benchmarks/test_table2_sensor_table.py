"""Table 2: the sensor-information table and sensor metadata table.

The paper's Table 2 shows sensor readings (SensorId, GlobPrefix,
SensorType, MObjectId, ObjLocation, DetectionRadius, DetectionTime)
plus the per-sensor confidence / time-to-live table (RF-12 at 72% /
60 s, Ubisense-18 at 93% / 3 s).  We deploy the same two sensor types,
generate readings, and print both tables; the benchmark times the
reading-ingest path (normalize + insert + trigger scan).
"""

from __future__ import annotations

import pytest

from _support import write_result
from repro.geometry import Point
from repro.sensors import RfBadgeAdapter, UbisenseAdapter
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase


def _build():
    world = siebel_floor()
    db = SpatialDatabase(world)
    # Carry probabilities chosen so the headline confidences land at
    # the paper's Table-2 values: RF 72%, Ubisense 93%.
    rf = RfBadgeAdapter("RF-12", "SC/3/3105", Point(170, 20),
                        carry_probability=0.94, frame="").attach(db)
    ubi = UbisenseAdapter("Ubi-18", "SC/3/3102",
                          carry_probability=0.978, frame="").attach(db)
    return db, rf, ubi


def test_table2_sensor_readings(benchmark, results_dir):
    db, rf, ubi = _build()
    rf.badge_sighting("tom-pda", 42755.0)
    ubi.tag_sighting("ralph-bat", Point(41, 3, 9), 42682.0)

    lines = ["Table 2 reproduction: sensor information table",
             f"{'SensorId':<8} {'GlobPrefix':<12} {'SensorType':<10} "
             f"{'MObjectId':<10} {'ObjLocation':<18} "
             f"{'Radius':<7} DetectionTime"]
    for row in db.sensor_readings.select(order_by="sensor_id"):
        location = row["location"]
        loc = (f"({location.x:g},{location.y:g},{location.z:g})"
               if location else "-")
        lines.append(
            f"{row['sensor_id']:<8} {row['glob_prefix']:<12} "
            f"{row['sensor_type']:<10} {row['mobile_object_id']:<10} "
            f"{loc:<18} {row['detection_radius']:<7g} "
            f"{row['detection_time']:g}")

    lines.append("")
    lines.append("Sensor metadata table (confidence % / time-to-live s)")
    lines.append(f"{'SensorId':<10} {'Confidence(%)':<14} Time-to-live(s)")
    metadata = {}
    for row in db.sensor_specs.select(order_by="sensor_id"):
        metadata[row["sensor_id"]] = (row["confidence"],
                                      row["time_to_live"])
        lines.append(f"{row['sensor_id']:<10} {row['confidence']:<14g} "
                     f"{row['time_to_live']:g}")

    # The paper's Table-2 metadata: RF-12 -> 72% / 60 s; Ubisense-18 ->
    # 93% / 3 s.
    assert metadata["RF-12"][1] == 60.0
    assert metadata["Ubi-18"][1] == 3.0
    assert metadata["RF-12"][0] == pytest.approx(72.0, abs=0.5)
    assert metadata["Ubi-18"][0] == pytest.approx(93.0, abs=0.5)
    write_result(results_dir, "table2_sensor_table", lines)

    state = {"t": 0.0}

    def ingest():
        state["t"] += 1.0
        ubi.tag_sighting("ralph-bat", Point(30 + state["t"] % 5, 20),
                         state["t"])

    benchmark(ingest)
