"""Ablation A5: query-type latency across the Location Service API.

Prices every pull-mode query the paper's Section 4 defines: object
locate, symbolic locate, region probability/confidence, who-is-in-
region, spatial relations, and path distance.  The scaling section
prices ``objects_in_region`` against its linear reference as the
tracked-object count grows (the PR 5 support-index pruning), and
``test_perf_smoke_objects_in_region`` guards the n=64 latency against
the committed baseline.
"""

from __future__ import annotations

import time

import pytest

from _support import write_result
from repro.geometry import Point
from repro.sensors import RfBadgeAdapter, UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture(scope="module")
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    rf = RfBadgeAdapter("RF-1", "SC/3/3105", Point(170, 20),
                        frame="").attach(db)
    positions = {
        "alice": Point(150, 20), "bob": Point(160, 25),
        "carol": Point(30, 80), "dave": Point(250, 50),
        "erin": Point(350, 20),
    }
    for name, position in positions.items():
        ubi.tag_sighting(name, position, 0.0)
        rf.badge_sighting(name, 0.0)
    clock.advance(1.0)
    return service


def test_object_locate(benchmark, rig):
    estimate = benchmark(lambda: rig.locate("alice"))
    assert estimate.object_id == "alice"


def test_symbolic_locate(benchmark, rig):
    symbolic = benchmark(lambda: rig.locate_symbolic("alice"))
    assert symbolic is not None


def test_region_confidence(benchmark, rig):
    value = benchmark(
        lambda: rig.confidence_in_region("alice", "SC/3/3105"))
    assert value > 0.0


def test_region_probability(benchmark, rig):
    value = benchmark(
        lambda: rig.probability_in_region("alice", "SC/3/3105"))
    assert 0.0 <= value <= 1.0


def test_objects_in_region(benchmark, rig):
    found = benchmark(lambda: rig.objects_in_region("SC/3/3105"))
    assert {name for name, _ in found} >= {"alice", "bob"}


def test_proximity_relation(benchmark, rig):
    relation = benchmark(lambda: rig.proximity("alice", "bob", 30.0))
    assert relation.holds


def test_colocation_relation(benchmark, rig):
    relation = benchmark(lambda: rig.colocation("alice", "bob", 3))
    assert relation.holds


def test_path_distance(benchmark, rig):
    value = benchmark(
        lambda: rig.navigation.path_distance("SC/3/3102", "SC/3/3110"))
    assert value is not None


def test_nearest_entities(benchmark, rig):
    found = benchmark(lambda: rig.nearest_entities(
        "alice", count=1, object_type="Workstation"))
    assert found


OBJECT_COUNTS = [8, 16, 64]


def _crowded_service(n_objects: int) -> LocationService:
    """N tracked objects, two near room 3105, the rest spread far.

    The interesting regime for the support-index pruning: most objects
    cannot be in the queried room, so the pruned query fuses only the
    nearby few while the reference fuses everyone.
    """
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    ubi.tag_sighting("person-00", Point(150, 20), 0.0)
    ubi.tag_sighting("person-01", Point(160, 25), 0.0)
    for i in range(2, n_objects):
        x = 250.0 + (i % 20) * 7.0
        y = 40.0 + (i % 8) * 6.0
        ubi.tag_sighting(f"person-{i:02d}", Point(x, y), 0.0)
    clock.advance(1.0)
    return service


def _best_of_ms(query, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        query()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def test_objects_in_region_scaling(benchmark, results_dir):
    """Tentpole table: who-is-in-region with support-index pruning vs
    the full-fusion reference scan, as tracked objects grow.  The
    acceptance bar is >= 5x at 64 tracked objects."""
    lines = ["objects_in_region scaling: pruned vs reference (ms/query)",
             "objects     pruned  reference    speedup"]
    speedups = {}
    for count in OBJECT_COUNTS:
        service = _crowded_service(count)
        pruned = service.objects_in_region("SC/3/3105")
        reference = service.objects_in_region_reference("SC/3/3105")
        assert pruned == reference  # equivalence on the benched state
        pruned_ms = _best_of_ms(
            lambda: service.objects_in_region("SC/3/3105"))
        reference_ms = _best_of_ms(
            lambda: service.objects_in_region_reference("SC/3/3105"))
        speedups[count] = reference_ms / pruned_ms
        lines.append(f"{count:>7d} {pruned_ms:>10.3f} "
                     f"{reference_ms:>10.3f} {speedups[count]:>9.1f}x")
        stats = service.query_stats()
        lines.append(f"        pruned={stats['region_queries_pruned']} "
                     f"refined={stats['region_queries_refined']}")
    write_result(results_dir, "objects_in_region_scaling", lines)
    assert speedups[64] >= 5.0, (
        f"pruned objects_in_region at 64 objects is only "
        f"{speedups[64]:.1f}x faster than the reference scan")

    service = _crowded_service(64)
    benchmark(lambda: service.objects_in_region("SC/3/3105"))


def test_perf_smoke_objects_in_region(results_dir):
    """CI guard: pruned objects_in_region at 64 tracked objects must
    stay within 2x of the committed baseline (absolute floor for
    runner noise)."""
    baseline_ms = _committed_pruned_ms(results_dir, objects=64)
    if baseline_ms is None:
        pytest.skip("no committed baseline in "
                    "benchmarks/results/objects_in_region_scaling.txt")
    service = _crowded_service(64)
    service.objects_in_region("SC/3/3105")  # warm-up
    current_ms = _best_of_ms(
        lambda: service.objects_in_region("SC/3/3105"))
    limit = max(2.0 * baseline_ms, 5.0)
    assert current_ms <= limit, (
        f"pruned objects_in_region at 64 objects took {current_ms:.3f} "
        f"ms; committed baseline is {baseline_ms:.3f} ms "
        f"(limit {limit:.3f} ms)")


def _committed_pruned_ms(results_dir, objects: int):
    path = results_dir / "objects_in_region_scaling.txt"
    if not path.exists():
        return None
    for line in path.read_text().splitlines():
        parts = line.split()
        if len(parts) >= 4 and parts[0] == str(objects):
            try:
                return float(parts[1])  # the "pruned" column
            except ValueError:
                return None
    return None


def test_query_latency_table(benchmark, rig, results_dir):
    queries = {
        "locate(object)": lambda: rig.locate("alice"),
        "locate_symbolic": lambda: rig.locate_symbolic("alice"),
        "confidence_in_region": lambda: rig.confidence_in_region(
            "alice", "SC/3/3105"),
        "probability_in_region": lambda: rig.probability_in_region(
            "alice", "SC/3/3105"),
        "objects_in_region": lambda: rig.objects_in_region("SC/3/3105"),
        "proximity": lambda: rig.proximity("alice", "bob", 30.0),
        "colocation": lambda: rig.colocation("alice", "bob", 3),
        "path_distance": lambda: rig.navigation.path_distance(
            "SC/3/3102", "SC/3/3110"),
    }
    lines = ["Ablation A5: Location Service query latency (us/query)"]
    rounds = 100
    for name, query in queries.items():
        query()
        start = time.perf_counter()
        for _ in range(rounds):
            query()
        micros = (time.perf_counter() - start) / rounds * 1e6
        lines.append(f"{name:>22}: {micros:>9.1f}")
    write_result(results_dir, "ablation_queries", lines)
    benchmark(lambda: rig.locate("alice"))
