"""Ablation A5: query-type latency across the Location Service API.

Prices every pull-mode query the paper's Section 4 defines: object
locate, symbolic locate, region probability/confidence, who-is-in-
region, spatial relations, and path distance.
"""

from __future__ import annotations

import pytest

from _support import write_result
from repro.geometry import Point
from repro.sensors import RfBadgeAdapter, UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


@pytest.fixture(scope="module")
def rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    ubi = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    rf = RfBadgeAdapter("RF-1", "SC/3/3105", Point(170, 20),
                        frame="").attach(db)
    positions = {
        "alice": Point(150, 20), "bob": Point(160, 25),
        "carol": Point(30, 80), "dave": Point(250, 50),
        "erin": Point(350, 20),
    }
    for name, position in positions.items():
        ubi.tag_sighting(name, position, 0.0)
        rf.badge_sighting(name, 0.0)
    clock.advance(1.0)
    return service


def test_object_locate(benchmark, rig):
    estimate = benchmark(lambda: rig.locate("alice"))
    assert estimate.object_id == "alice"


def test_symbolic_locate(benchmark, rig):
    symbolic = benchmark(lambda: rig.locate_symbolic("alice"))
    assert symbolic is not None


def test_region_confidence(benchmark, rig):
    value = benchmark(
        lambda: rig.confidence_in_region("alice", "SC/3/3105"))
    assert value > 0.0


def test_region_probability(benchmark, rig):
    value = benchmark(
        lambda: rig.probability_in_region("alice", "SC/3/3105"))
    assert 0.0 <= value <= 1.0


def test_objects_in_region(benchmark, rig):
    found = benchmark(lambda: rig.objects_in_region("SC/3/3105"))
    assert {name for name, _ in found} >= {"alice", "bob"}


def test_proximity_relation(benchmark, rig):
    relation = benchmark(lambda: rig.proximity("alice", "bob", 30.0))
    assert relation.holds


def test_colocation_relation(benchmark, rig):
    relation = benchmark(lambda: rig.colocation("alice", "bob", 3))
    assert relation.holds


def test_path_distance(benchmark, rig):
    value = benchmark(
        lambda: rig.navigation.path_distance("SC/3/3102", "SC/3/3110"))
    assert value is not None


def test_nearest_entities(benchmark, rig):
    found = benchmark(lambda: rig.nearest_entities(
        "alice", count=1, object_type="Workstation"))
    assert found


def test_query_latency_table(benchmark, rig, results_dir):
    import time

    queries = {
        "locate(object)": lambda: rig.locate("alice"),
        "locate_symbolic": lambda: rig.locate_symbolic("alice"),
        "confidence_in_region": lambda: rig.confidence_in_region(
            "alice", "SC/3/3105"),
        "probability_in_region": lambda: rig.probability_in_region(
            "alice", "SC/3/3105"),
        "objects_in_region": lambda: rig.objects_in_region("SC/3/3105"),
        "proximity": lambda: rig.proximity("alice", "bob", 30.0),
        "colocation": lambda: rig.colocation("alice", "bob", 3),
        "path_distance": lambda: rig.navigation.path_distance(
            "SC/3/3102", "SC/3/3110"),
    }
    lines = ["Ablation A5: Location Service query latency (us/query)"]
    rounds = 100
    for name, query in queries.items():
        query()
        start = time.perf_counter()
        for _ in range(rounds):
            query()
        micros = (time.perf_counter() - start) / rounds * 1e6
        lines.append(f"{name:>22}: {micros:>9.1f}")
    write_result(results_dir, "ablation_queries", lines)
    benchmark(lambda: rig.locate("alice"))
