"""Ablation A2: R-tree vs linear scan for region queries.

The spatial database's region queries (objects_intersecting, nearest)
go through the Guttman R-tree; this ablation quantifies what that buys
over the naive scan PostGIS would also avoid, across world sizes.
"""

from __future__ import annotations

import random
import time

import pytest

from _support import write_result
from repro.geometry import Point, Rect
from repro.spatialdb import RTree


def make_world(count: int, seed: int = 5):
    rng = random.Random(seed)
    rects = []
    for _ in range(count):
        x = rng.uniform(0, 2000)
        y = rng.uniform(0, 2000)
        rects.append(Rect(x, y, x + rng.uniform(5, 40),
                          y + rng.uniform(5, 40)))
    return rects


def probes(seed: int = 7, count: int = 50):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        x = rng.uniform(0, 2000)
        y = rng.uniform(0, 2000)
        out.append(Rect(x, y, x + 60, y + 60))
    return out


@pytest.mark.parametrize("count", [100, 1000, 5000])
def test_rtree_query(benchmark, count):
    rects = make_world(count)
    tree = RTree()
    for i, rect in enumerate(rects):
        tree.insert(rect, i)
    probe_list = probes()

    def run():
        total = 0
        for probe in probe_list:
            total += len(tree.search(probe))
        return total

    expected = sum(1 for probe in probe_list for r in rects
                   if r.intersects(probe))
    assert run() == expected
    benchmark(run)


@pytest.mark.parametrize("count", [100, 1000, 5000])
def test_linear_scan_query(benchmark, count):
    rects = make_world(count)
    probe_list = probes()

    def run():
        total = 0
        for probe in probe_list:
            total += sum(1 for r in rects if r.intersects(probe))
        return total

    benchmark(run)


def test_rtree_speedup_table(benchmark, results_dir):
    lines = ["Ablation A2: R-tree vs linear scan "
             "(50 region queries, total time)",
             f"{'objects':>8} {'linear (ms)':>12} {'rtree (ms)':>11} "
             f"{'speedup':>8}"]
    for count in (100, 500, 1000, 5000):
        rects = make_world(count)
        tree = RTree()
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        probe_list = probes()

        start = time.perf_counter()
        linear = [sum(1 for r in rects if r.intersects(p))
                  for p in probe_list]
        linear_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        indexed = [len(tree.search(p)) for p in probe_list]
        rtree_ms = (time.perf_counter() - start) * 1000.0

        assert linear == indexed
        lines.append(f"{count:>8} {linear_ms:>12.2f} {rtree_ms:>11.2f} "
                     f"{linear_ms / rtree_ms:>7.1f}x")
    write_result(results_dir, "ablation_rtree", lines)

    tree = RTree()
    for i, rect in enumerate(make_world(1000)):
        tree.insert(rect, i)
    benchmark(lambda: [len(tree.search(p)) for p in probes()])


def test_rtree_nearest(benchmark):
    tree = RTree()
    for i, rect in enumerate(make_world(2000)):
        tree.insert(rect, i)
    benchmark(lambda: tree.nearest(Point(1000, 1000), 5))
