"""Ablation A4: ORB transport cost — in-process vs TCP.

The paper runs everything over Orbacus; our ORB offers both an
in-process path and a real TCP path.  This ablation prices the
distribution boundary for the middleware's hottest call, locate().
"""

from __future__ import annotations

import pytest

from _support import write_result
from repro.geometry import Point
from repro.orb import Orb
from repro.sensors import UbisenseAdapter
from repro.service import LocationService, publish_service
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase


def build_rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    orb = Orb("server")
    service = LocationService(db, orb=orb, clock=clock)
    adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    adapter.tag_sighting("alice", Point(150, 20), 0.0)
    clock.advance(1.0)
    reference, _ = publish_service(service, orb)
    return orb, service, reference


def test_locate_direct_call(benchmark):
    """Baseline: the bare in-process API, no broker at all."""
    _, service, _ = build_rig()
    result = benchmark(lambda: service.locate("alice"))
    assert result.symbolic == "SC/3/3105"


def test_locate_inproc_orb(benchmark):
    """Through the broker with the in-process transport (serialization
    round-trip, no socket)."""
    orb, _, reference = build_rig()
    proxy = orb.resolve(reference)
    result = benchmark(lambda: proxy.locate("alice"))
    assert result.symbolic == "SC/3/3105"


def test_locate_tcp_orb(benchmark):
    """Through a real socket, as a Gaia application would call it."""
    orb, _, _ = build_rig()
    orb.listen()
    reference = orb.reference_for("location-service")
    client = Orb("client")
    proxy = client.resolve(reference)
    try:
        result = benchmark(lambda: proxy.locate("alice"))
        assert result.symbolic == "SC/3/3105"
    finally:
        client.shutdown()
        orb.shutdown()


def test_transport_cost_table(benchmark, results_dir):
    import time

    orb, service, reference = build_rig()
    orb_host, orb_port = orb.listen()
    tcp_reference = orb.reference_for("location-service")
    client = Orb("client")
    inproc_proxy = orb.resolve(reference)
    tcp_proxy = client.resolve(tcp_reference)
    rounds = 200

    def measure(callable_):
        callable_()  # warm
        start = time.perf_counter()
        for _ in range(rounds):
            callable_()
        return (time.perf_counter() - start) / rounds * 1e6

    try:
        direct = measure(lambda: service.locate("alice"))
        inproc = measure(lambda: inproc_proxy.locate("alice"))
        tcp = measure(lambda: tcp_proxy.locate("alice"))
    finally:
        client.shutdown()
        orb.shutdown()

    lines = ["Ablation A4: locate() cost by call path (us/call)",
             f"{'direct python':>14}: {direct:>9.1f}",
             f"{'inproc orb':>14}: {inproc:>9.1f} "
             f"({inproc / direct:.2f}x direct)",
             f"{'tcp orb':>14}: {tcp:>9.1f} ({tcp / direct:.2f}x direct)"]
    # Serialization costs something; sockets cost more.
    assert inproc >= direct * 0.8
    assert tcp > direct
    write_result(results_dir, "ablation_orb", lines)
    benchmark(lambda: service.locate("alice"))
