"""Ablation A4: ORB transport cost — in-process vs TCP, JSON vs binary.

The paper runs everything over Orbacus; our ORB offers an in-process
path and a real TCP path, and the TCP path now carries two codecs
(tagged JSON and the packed binary wire format) over two framings
(legacy serial and the multiplexed, pipelined protocol).  This
ablation prices the distribution boundary for the middleware's
hottest call, locate(), along every one of those lanes.

The TCP rows measure against a *separate server process* — the shape
the shard fleet actually deploys — so the client and server do not
share a GIL and the numbers reflect real socket round-trips rather
than two threads fighting over one interpreter.

Results go to benchmarks/results/ablation_orb.txt.  Two CI gates ride
along: ``test_perf_smoke_orb_codec`` (binary codec >= 2.5x the JSON
codec on the locate() response shape) and
``test_perf_smoke_orb_transport`` (pipelined binary locate() >= 2x
over the serial JSON path it replaced).
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from _support import write_result
from repro.geometry import Point
from repro.orb import Orb, serialization, wire
from repro.orb.transport import TcpTransport
from repro.sensors import UbisenseAdapter
from repro.service import LocationService, publish_service
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase

LOCATE_REQUEST = {"object": "location-service", "method": "locate",
                  "args": ["alice"], "kwargs": {}}
PIPELINE_WIDTH = 32


def build_rig():
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    orb = Orb("server")
    service = LocationService(db, orb=orb, clock=clock)
    adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    adapter.tag_sighting("alice", Point(150, 20), 0.0)
    clock.advance(1.0)
    reference, _ = publish_service(service, orb)
    return orb, service, reference


def server_main(conn):
    """Benchmark server process entry point (multiprocessing spawn
    target, so it must live at module scope)."""
    orb, _service, _reference = build_rig()
    _host, port = orb.listen()
    conn.send(port)
    try:
        conn.recv()  # parent closing its end is the stop signal
    except EOFError:
        pass
    orb.shutdown()


def spawn_server():
    """Start a locate() server in its own process; returns
    (process, control pipe, port)."""
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=server_main, args=(child_conn,), daemon=True)
    proc.start()
    child_conn.close()
    port = parent_conn.recv()
    return proc, parent_conn, port


def _measure(fn, rounds):
    fn()  # warm
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds * 1e6


def test_locate_direct_call(benchmark):
    """Baseline: the bare in-process API, no broker at all."""
    _, service, _ = build_rig()
    result = benchmark(lambda: service.locate("alice"))
    assert result.symbolic == "SC/3/3105"


def test_locate_inproc_orb(benchmark):
    """Through the broker with the in-process transport (copy-safe
    fast marshal, no socket)."""
    orb, _, reference = build_rig()
    proxy = orb.resolve(reference)
    result = benchmark(lambda: proxy.locate("alice"))
    assert result.symbolic == "SC/3/3105"


def test_locate_tcp_orb(benchmark):
    """Through a real socket, as a Gaia application would call it."""
    orb, _, _ = build_rig()
    orb.listen()
    reference = orb.reference_for("location-service")
    client = Orb("client")
    proxy = client.resolve(reference)
    try:
        result = benchmark(lambda: proxy.locate("alice"))
        assert result.symbolic == "SC/3/3105"
    finally:
        client.shutdown()
        orb.shutdown()


def test_transport_cost_table(benchmark, results_dir):
    orb, service, reference = build_rig()
    inproc_proxy = orb.resolve(reference)
    rounds = 200

    proc, pipe, port = spawn_server()
    json_tx = TcpTransport("127.0.0.1", port, codec="json",
                           negotiate=False)
    binary_tx = TcpTransport("127.0.0.1", port, codec="binary")
    batch = [LOCATE_REQUEST] * PIPELINE_WIDTH
    trials = 3  # best-of, interleaved: lane ratios survive load spikes
    try:
        direct = min(_measure(lambda: service.locate("alice"), rounds)
                     for _ in range(trials))
        inproc = min(
            _measure(lambda: inproc_proxy.locate("alice"), rounds)
            for _ in range(trials))
        legacy, mux, piped = (float("inf"),) * 3
        for _ in range(trials):
            legacy = min(legacy, _measure(
                lambda: json_tx.invoke(LOCATE_REQUEST), rounds))
            mux = min(mux, _measure(
                lambda: binary_tx.invoke(LOCATE_REQUEST), rounds))
            piped = min(piped, _measure(
                lambda: binary_tx.invoke_many(batch),
                max(1, rounds // 8)) / PIPELINE_WIDTH)
        assert json_tx.transport_stats()["mode"] == "legacy"
        assert binary_tx.transport_stats()["mode"] == "mux"
        assert binary_tx.transport_stats()["codec"] == "binary"
    finally:
        json_tx.close()
        binary_tx.close()
        pipe.close()
        proc.join(timeout=10)
        orb.shutdown()

    improvement = legacy / piped
    lines = [
        "Ablation A4: locate() cost by call path (us/call)",
        "(TCP rows run against a separate server process)",
        "",
        f"{'direct python':>26}: {direct:>9.1f}",
        f"{'inproc orb':>26}: {inproc:>9.1f} "
        f"({inproc / direct:.2f}x direct)",
        f"{'tcp orb (json, serial)':>26}: {legacy:>9.1f} "
        f"({legacy / direct:.2f}x direct)",
        f"{'tcp orb (binary, serial)':>26}: {mux:>9.1f} "
        f"({mux / direct:.2f}x direct)",
        f"{'tcp orb (binary, piped%d)' % PIPELINE_WIDTH:>26}: "
        f"{piped:>9.1f} ({piped / direct:.2f}x direct)",
        "",
        f"pipelined binary vs serial json: {improvement:.2f}x "
        "(acceptance floor: 2x)",
    ]
    # The broker's in-process lane must cost at most 2.5x the bare
    # call (it used to cost 5.9x before the fast marshal), and the
    # new wire must improve the TCP lane at least 2x end to end.
    assert inproc <= direct * 2.5
    assert improvement >= 2.0
    write_result(results_dir, "ablation_orb", lines)
    benchmark(lambda: service.locate("alice"))


def _locate_response():
    """A real locate() response envelope, captured from the rig."""
    _, service, _ = build_rig()
    return {"result": service.locate("alice")}


def test_perf_smoke_orb_codec():
    """CI gate: the binary codec holds >= 2.5x over the JSON codec on
    the locate() response shape (encode+decode, best-of-5 so a noisy
    shared runner cannot fail a healthy build)."""
    message = _locate_response()
    rounds = 2000

    def lap(dumps, loads):
        start = time.perf_counter()
        for _ in range(rounds):
            loads(dumps(message))
        return time.perf_counter() - start

    lap(wire.dumps, wire.loads)  # warm both lanes
    lap(serialization.dumps, serialization.loads)
    binary = min(lap(wire.dumps, wire.loads) for _ in range(5))
    json_ = min(lap(serialization.dumps, serialization.loads)
                for _ in range(5))
    ratio = json_ / binary
    assert ratio >= 2.5, (
        f"binary codec only {ratio:.2f}x the JSON path "
        f"(binary {binary / rounds * 1e6:.1f}us, "
        f"json {json_ / rounds * 1e6:.1f}us per round-trip)")


def test_perf_smoke_orb_transport():
    """CI gate: pipelined binary locate() beats the serial JSON path
    against an out-of-process server (best-of-3 per lane, interleaved).

    The committed table shows >= 2x; the gate floor is 1.5x because on
    a single-core runner the two lanes share the core with the server,
    and the residual per-call cost is locate() itself — a regression
    that re-introduces per-request round-trips or JSON-priced framing
    lands well below 1.5x, which is what this gate exists to catch."""
    proc, pipe, port = spawn_server()
    json_tx = TcpTransport("127.0.0.1", port, codec="json",
                           negotiate=False)
    binary_tx = TcpTransport("127.0.0.1", port, codec="binary")
    batch = [LOCATE_REQUEST] * PIPELINE_WIDTH
    rounds = 150
    legacy, piped = float("inf"), float("inf")
    try:
        for _ in range(3):
            legacy = min(legacy, _measure(
                lambda: json_tx.invoke(LOCATE_REQUEST), rounds))
            piped = min(piped, _measure(
                lambda: binary_tx.invoke_many(batch),
                max(1, rounds // 8)) / PIPELINE_WIDTH)
    finally:
        json_tx.close()
        binary_tx.close()
        pipe.close()
        proc.join(timeout=10)
    improvement = legacy / piped
    assert improvement >= 1.5, (
        f"pipelined binary locate() only {improvement:.2f}x the serial "
        f"JSON path (json {legacy:.1f}us, piped {piped:.1f}us per call)")
