"""Ablation A1: fusion cost vs number of sensor readings.

The lattice closes sensor rectangles under intersection, so its size —
and probability evaluation over it — grows with overlapping readings.
This bench measures fuse() latency as readings per object scale, which
bounds how many technologies can reasonably cover one space.

Three variants are timed per reading count:

* ``before`` — the pre-optimization path (quadratic-rescan closure,
  cubic Hasse, per-node scalar probabilities), reconstructed from
  ``RegionLattice.build_reference``;
* ``after`` — the shipped sweep-based builder with batched
  probabilities (a cold, from-scratch fuse);
* ``incr`` — the engine's incremental steady state: the previous
  closure is evolved after one reading is swapped, which is the
  pipeline's per-batch shape.

A final section replays a pipeline-like flow against a
``LocationService`` to report the content-addressed fusion cache's hit
rate, and ``test_perf_smoke_no_regression`` guards the n=16 latency
against the committed baseline.
"""

from __future__ import annotations

import time

import pytest

from _support import write_result
from repro.core import (
    FusionEngine,
    NormalizedReading,
    SensorSpec,
    exact_region_probability,
    support_confidence,
)
from repro.core.lattice import RegionLattice
from repro.geometry import Point, Rect

UNIVERSE = Rect(0.0, 0.0, 500.0, 100.0)
SPEC = SensorSpec("T", 1.0, 0.9, 0.1, resolution=5.0, time_to_live=1e9)

COUNTS = (1, 2, 4, 8, 12, 16, 24, 32)

# Committed "before" numbers (seed revision, this machine class); kept
# in the table so the speedup column survives the reference builder
# eventually being dropped.
_BASELINE_NOTE = "before = quadratic reference builder, timed here"


def make_readings(count: int, shift: float = 0.0):
    """Overlapping readings around one location (worst realistic case:
    every technology sees the same person)."""
    readings = []
    for i in range(count):
        x = 100.0 + (i % 5) * 4.0 + (shift if i == count - 1 else 0.0)
        y = 40.0 + (i // 5) * 3.0
        size = 10.0 + (i % 3) * 6.0
        rect = Rect(x, y, x + size, y + size)
        readings.append(NormalizedReading(f"S{i}", "tom", rect, 0.0,
                                          SPEC))
    return readings


def fuse_reference(readings):
    """The pre-optimization fuse, for the ``before`` column: naive
    lattice construction plus one scalar probability call per node."""
    weighted = [(r.rect, *r.pq_at(0.0, UNIVERSE.area)) for r in readings]
    lattice = RegionLattice.build_reference(
        [r.rect for r in readings], UNIVERSE)
    lattice.components()
    for node in lattice.region_nodes():
        node.probability = exact_region_probability(
            node.rect, weighted, UNIVERSE.area)
        node.confidence = support_confidence(
            [(weighted[i][1], weighted[i][2]) for i in node.sources])
    return lattice


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


@pytest.mark.parametrize("count", [1, 2, 4, 8, 12, 16, 24, 32])
def test_fusion_scaling(benchmark, count):
    engine = FusionEngine(incremental=False)
    readings = make_readings(count)
    result = benchmark(lambda: engine.fuse("tom", readings, UNIVERSE,
                                           0.0))
    assert result.winning_component


def test_fusion_scaling_table(benchmark, results_dir):
    lines = [
        "Ablation A1: fusion latency vs readings per object",
        f"({_BASELINE_NOTE})",
        f"{'readings':>9} {'lattice nodes':>14} {'before (ms)':>12} "
        f"{'after (ms)':>11} {'speedup':>8} {'incr (ms)':>10}",
    ]
    speedup_at_16 = None
    for count in COUNTS:
        readings = make_readings(count)
        cold = FusionEngine(incremental=False)
        after_ms = _best_of(
            lambda: cold.fuse("tom", readings, UNIVERSE, 0.0),
            3 if count <= 16 else 2)
        before_repeats = 2 if count <= 16 else 1
        before_ms = _best_of(lambda: fuse_reference(readings),
                             before_repeats)

        # Steady state: one reading swapped between consecutive fuses.
        warm = FusionEngine(incremental=True)
        shifted = make_readings(count, shift=1.0)
        warm.fuse("tom", readings, UNIVERSE, 0.0)
        flip = [shifted, readings]

        def incremental_step(state={"i": 0}):
            state["i"] += 1
            return warm.fuse("tom", flip[state["i"] % 2], UNIVERSE, 0.0)

        incr_ms = _best_of(incremental_step, 3)
        assert warm.stats()["incremental_reuses"] >= 3

        result = cold.fuse("tom", readings, UNIVERSE, 0.0)
        speedup = before_ms / after_ms if after_ms > 0 else float("inf")
        if count == 16:
            speedup_at_16 = speedup
        lines.append(
            f"{count:>9} {len(result.lattice):>14} {before_ms:>12.3f} "
            f"{after_ms:>11.3f} {speedup:>7.1f}x {incr_ms:>10.3f}")

    lines.extend(_cache_hit_rate_section())
    write_result(results_dir, "ablation_fusion_scaling", lines)
    # An unloaded machine measures ~5-6x (the committed table); the
    # in-run gate tolerates contention from sibling benchmarks.
    assert speedup_at_16 is not None and speedup_at_16 >= 3.5
    benchmark(lambda: FusionEngine(incremental=False).fuse(
        "tom", make_readings(8), UNIVERSE, 0.0))


def _cache_hit_rate_section():
    """Replay a pipeline-shaped flow (advancing clock, steady
    rectangles) through a LocationService and report the
    content-addressed fusion cache's effectiveness."""
    from repro.sensors import UbisenseAdapter
    from repro.service import LocationService
    from repro.sim import siebel_floor
    from repro.spatialdb import SpatialDatabase

    world = siebel_floor()
    db = SpatialDatabase(world)
    service = LocationService(db)
    adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    room = world.canonical_mbr("SC/3/3105")
    queries = 0
    for tick in range(60):
        t = tick * 0.05
        for obj in range(4):
            adapter.tag_sighting(
                f"person-{obj}",
                Point(room.center.x + obj * 0.1, room.center.y), t)
            service.locate(f"person-{obj}", now=t)
            queries += 1
    stats = service.cache_stats()
    rate = stats["hits"] / max(1, stats["hits"] + stats["misses"])
    return [
        "",
        "Fusion-cache effectiveness (advancing clock, steady rects,"
        " 4 objects x 60 ticks):",
        f"  locate() calls      {queries}",
        f"  cache hits          {stats['hits']}",
        f"  cache misses        {stats['misses']}",
        f"  hit rate            {rate:.1%}",
        f"  incremental reuses  {stats['incremental_reuses']}",
        f"  full builds         {stats['full_builds']}",
    ]


def test_perf_smoke_no_regression(results_dir):
    """CI guard: n=16 cold-fuse latency must stay within 2x of the
    committed baseline (plus an absolute floor for CI-runner noise)."""
    baseline_ms = _committed_after_ms(results_dir, readings=16)
    if baseline_ms is None:
        pytest.skip("no committed baseline in "
                    "benchmarks/results/ablation_fusion_scaling.txt")
    engine = FusionEngine(incremental=False)
    readings = make_readings(16)
    engine.fuse("tom", readings, UNIVERSE, 0.0)  # warm-up
    current_ms = _best_of(
        lambda: FusionEngine(incremental=False).fuse(
            "tom", readings, UNIVERSE, 0.0), 5)
    # 2x the committed number, but never tighter than 20 ms: shared CI
    # runners jitter far more than a laptop's best-of-5.
    limit = max(2.0 * baseline_ms, 20.0)
    assert current_ms <= limit, (
        f"n=16 fusion took {current_ms:.3f} ms; committed baseline is "
        f"{baseline_ms:.3f} ms (limit {limit:.3f} ms)")


def _committed_after_ms(results_dir, readings: int):
    path = results_dir / "ablation_fusion_scaling.txt"
    if not path.exists():
        return None
    for line in path.read_text().splitlines():
        parts = line.split()
        if len(parts) >= 4 and parts[0] == str(readings):
            try:
                return float(parts[3])  # the "after (ms)" column
            except ValueError:
                return None
    return None
