"""Ablation A1: fusion cost vs number of sensor readings.

The lattice closes sensor rectangles under intersection, so its size —
and Eq.-7 evaluation over it — grows with overlapping readings.  This
bench measures fuse() latency as readings per object scale, which
bounds how many technologies can reasonably cover one space.
"""

from __future__ import annotations

import pytest

from _support import write_result
from repro.core import FusionEngine, NormalizedReading, SensorSpec
from repro.geometry import Rect

UNIVERSE = Rect(0.0, 0.0, 500.0, 100.0)
SPEC = SensorSpec("T", 1.0, 0.9, 0.1, resolution=5.0, time_to_live=1e9)


def make_readings(count: int):
    """Overlapping readings around one location (worst realistic case:
    every technology sees the same person)."""
    readings = []
    for i in range(count):
        x = 100.0 + (i % 5) * 4.0
        y = 40.0 + (i // 5) * 3.0
        size = 10.0 + (i % 3) * 6.0
        rect = Rect(x, y, x + size, y + size)
        readings.append(NormalizedReading(f"S{i}", "tom", rect, 0.0,
                                          SPEC))
    return readings


@pytest.mark.parametrize("count", [1, 2, 4, 8, 12])
def test_fusion_scaling(benchmark, count):
    engine = FusionEngine()
    readings = make_readings(count)
    result = benchmark(lambda: engine.fuse("tom", readings, UNIVERSE,
                                           0.0))
    assert result.winning_component


def test_fusion_scaling_table(benchmark, results_dir):
    import time

    engine = FusionEngine()
    lines = ["Ablation A1: fusion latency vs readings per object",
             f"{'readings':>9} {'lattice nodes':>14} {'time (ms)':>10}"]
    for count in (1, 2, 4, 8, 12, 16):
        readings = make_readings(count)
        start = time.perf_counter()
        result = engine.fuse("tom", readings, UNIVERSE, 0.0)
        elapsed = (time.perf_counter() - start) * 1000.0
        lines.append(f"{count:>9} {len(result.lattice):>14} "
                     f"{elapsed:>10.3f}")
    write_result(results_dir, "ablation_fusion_scaling", lines)
    benchmark(lambda: engine.fuse("tom", make_readings(8), UNIVERSE, 0.0))
