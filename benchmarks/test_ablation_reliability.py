"""Ablation A11: is the fused confidence *calibrated*?

Applications act on the Section 4.4 buckets; those are only meaningful
if higher reported confidence really means the estimate is right more
often.  This ablation builds a reliability diagram over a long
simulated run: estimates bucketed by reported confidence vs the
empirical rate at which the estimated rectangle (grown by the sensor
noise floor) actually covered the person.
"""

from __future__ import annotations

import pytest

from _support import write_result
from repro.errors import UnknownObjectError
from repro.sim import Scenario

# A little slack for sensor noise: the Ubisense fix itself wobbles by
# its resolution, so "covered" tolerates that much.
NOISE_MARGIN_FT = 3.0


def collect_reliability(seed: int, seconds: float):
    scenario = Scenario(seed=seed).standard_deployment()
    scenario.add_people(5)
    samples = []
    elapsed = 0.0
    while elapsed < seconds:
        scenario.step(1.0)
        elapsed += 1.0
        for person in scenario.people:
            try:
                estimate = scenario.service.locate(person.person_id)
            except UnknownObjectError:
                continue
            covered = estimate.rect.expanded(
                NOISE_MARGIN_FT).contains_point(person.position)
            region_hit = (
                estimate.symbolic is not None
                and (person.region == estimate.symbolic
                     or person.region.startswith(estimate.symbolic + "/")))
            samples.append((estimate.probability, covered, region_hit))
    return samples


def test_a11_reliability_diagram(benchmark, results_dir):
    samples = collect_reliability(seed=41, seconds=600.0)
    assert len(samples) > 300

    bins = [(0.0, 0.5), (0.5, 0.75), (0.75, 0.9), (0.9, 1.01)]
    lines = ["Ablation A11: reliability of reported confidence",
             "(rect = point inside the estimate rectangle +3 ft; "
             "region = right room or an ancestor region)",
             f"{'confidence bin':>16} {'n':>6} {'rect hit':>9} "
             f"{'region hit':>11}"]
    rect_rates = []
    region_rates = []
    for low, high in bins:
        matching = [(rect_hit, region_hit)
                    for conf, rect_hit, region_hit in samples
                    if low <= conf < high]
        if not matching:
            lines.append(f"{f'[{low}, {high})':>16} {0:>6} "
                         f"{'-':>9} {'-':>11}")
            rect_rates.append(None)
            region_rates.append(None)
            continue
        rect_rate = sum(m[0] for m in matching) / len(matching)
        region_rate = sum(m[1] for m in matching) / len(matching)
        rect_rates.append(rect_rate)
        region_rates.append(region_rate)
        lines.append(f"{f'[{low}, {high})':>16} {len(matching):>6} "
                     f"{rect_rate:>9.2f} {region_rate:>11.2f}")

    # Confidence must be informative at region granularity (the
    # granularity the applications act on): monotone from the bottom
    # populated bin to the top, and reliable at the top.
    populated = [r for r in region_rates if r is not None]
    assert populated[-1] >= populated[0]
    assert populated[-1] >= 0.7
    lines.append(f"region-hit gap top-vs-bottom: "
                 f"{populated[-1] - populated[0]:+.2f}")
    # Rect-level hits lag when readings go stale while people walk —
    # which is exactly why the service reports symbolic regions.
    write_result(results_dir, "ablation_a11_reliability", lines)

    benchmark(lambda: collect_reliability(seed=41, seconds=30.0))
