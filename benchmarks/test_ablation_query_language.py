"""Ablation A9: the spatial SQL dialect (Section 5.1's query claim).

Times parse + execute for representative queries, and measures what
the R-tree prefilter buys INTERSECTS queries over large worlds.
"""

from __future__ import annotations

import time

import pytest

from _support import write_result
from repro.sim import generate_office_floor, siebel_floor
from repro.spatialdb import SpatialDatabase, parse_query


@pytest.fixture(scope="module")
def small_db() -> SpatialDatabase:
    world = siebel_floor()
    world.get("SC/3/3105").properties["bluetooth_signal"] = 0.9
    world.get("SC/3/3216").properties["bluetooth_signal"] = 0.85
    return SpatialDatabase(world)


@pytest.fixture(scope="module")
def big_db() -> SpatialDatabase:
    return SpatialDatabase(generate_office_floor(rooms_per_side=120))


PAPER_QUERY = ("SELECT glob FROM spatial_objects "
               "WHERE object_type = 'Room' "
               "AND properties.power_outlets = true "
               "AND properties.bluetooth_signal >= 0.8 "
               "NEAREST TO (230, 20) LIMIT 1")


def test_parse_cost(benchmark):
    query = benchmark(lambda: parse_query(PAPER_QUERY))
    assert query.limit == 1


def test_paper_example_query(benchmark, small_db, results_dir):
    rows = benchmark(lambda: small_db.query(PAPER_QUERY))
    assert rows[0]["glob"] == "SC/3/3105"
    write_result(results_dir, "ablation_a9_paper_query",
                 ["Section 5.1 example query result:",
                  f"  {rows[0]}"])


def test_intersects_uses_rtree(benchmark, big_db, results_dir):
    spatial = ("SELECT glob FROM spatial_objects "
               "WHERE object_type = 'Room' "
               "AND INTERSECTS(100, 0, 160, 70)")
    unfiltered = ("SELECT glob FROM spatial_objects "
                  "WHERE object_type = 'Room'")

    start = time.perf_counter()
    for _ in range(50):
        narrow = big_db.query(spatial)
    narrow_ms = (time.perf_counter() - start) * 20.0

    start = time.perf_counter()
    for _ in range(50):
        wide = big_db.query(unfiltered)
    wide_ms = (time.perf_counter() - start) * 20.0

    lines = ["Ablation A9: INTERSECTS query with R-tree prefilter "
             f"({len(big_db.spatial_objects)} objects)",
             f"spatial query  -> {len(narrow)} rows, {narrow_ms:.2f} ms",
             f"full type scan -> {len(wide)} rows, {wide_ms:.2f} ms",
             f"prefilter speedup: {wide_ms / narrow_ms:.1f}x"]
    assert len(narrow) < len(wide)
    assert narrow_ms < wide_ms
    write_result(results_dir, "ablation_a9_rtree_prefilter", lines)
    benchmark(lambda: big_db.query(spatial))
