"""Semantic trigger scaling: incremental engine vs the naive oracle.

The incremental engine's claim: with S standing rules, one location
update re-derives only the rules whose body atoms could have changed
— the predicate/region inverted index and the R-tree probe over the
containment-chain symmetric difference prune the rest.  The naive
reference re-asserts every fact into a fresh knowledge base and
re-evaluates all S rules on every epoch.

The workload pins the paper's subscription-scaling story onto the
semantic layer: 100 rules spread over the floor's twelve rooms (a mix
of ``located_within``, ``at``, ``colocated_at`` and ``dwell`` bodies),
32 objects reporting on a seeded walk where half the reports are
keep-alives (a sensor re-detecting an unmoved badge).  A keep-alive
flips nothing and prunes every rule; a move touches two rooms'
containment chains, so ~1/6 of the rules can have changed and the
rest must be pruned, not re-proved.

Both engines consume the identical stream and must emit identical
event streams — the benchmark is also a differential test at scale.
Results go to benchmarks/results/semantic_trigger_scaling.txt; the
``test_perf_smoke_semantic_triggers`` gate holds the 10x floor.
"""

from __future__ import annotations

import random
import time
from typing import List, Tuple

from _support import write_result
from repro.model import Glob
from repro.reasoning.incremental import (
    MODE_INCREMENTAL,
    MODE_REFERENCE,
    LocationUpdate,
    SemanticTriggerEngine,
)
from repro.sim import siebel_floor

SUBSCRIPTIONS = 100
OBJECTS = 32
UPDATES = 200
SEED = 20260807

WORLD = siebel_floor()

ROOMS = (
    "SC/3/3102", "SC/3/3104", "SC/3/3105", "SC/3/3110",
    "SC/3/3216", "SC/3/3218", "SC/3/3224", "SC/3/3226",
    "SC/3/ConferenceRoom", "SC/3/Corridor", "SC/3/HCILab",
    "SC/3/NetLab",
)


def _rules(count: int) -> List[str]:
    """``count`` rules cycling rooms and body shapes."""
    rules = []
    for i in range(count):
        room = ROOMS[i % len(ROOMS)]
        variant = i % 4
        if variant == 0:
            rules.append(f"occ{i}(P) :- located_within(P, '{room}')")
        elif variant == 1:
            rules.append(f"fine{i}(P) :- at(P, '{room}')")
        elif variant == 2:
            rules.append(f"meet{i}(P, Q) :- "
                         f"colocated_at(P, Q, '{room}'), distinct(P, Q)")
        else:
            rules.append(f"camp{i}(P) :- dwell(P, '{room}', 5)")
    return rules


def _stream(updates: int, objects: int) -> List[LocationUpdate]:
    """A seeded walk with the paper's sensor cadence: each step one
    object reports.  Half the reports are keep-alives (the sensor
    re-detecting an unmoved badge), the other half teleport the object
    to one of two standing positions inside a freshly drawn room."""
    rng = random.Random(SEED)
    spots = []
    for room in ROOMS:
        rect = WORLD.resolve_symbolic(Glob.parse(room))
        for fraction in (0.3, 0.7):
            spots.append((room,
                          (rect.min_x + fraction
                           * (rect.max_x - rect.min_x),
                           rect.min_y + fraction
                           * (rect.max_y - rect.min_y))))
    standing: dict = {}
    out = []
    for step in range(updates):
        object_id = f"person-{rng.randrange(objects):02d}"
        if object_id in standing and rng.random() < 0.5:
            region, center = standing[object_id]
        else:
            region, center = spots[rng.randrange(len(spots))]
            standing[object_id] = (region, center)
        out.append(LocationUpdate(
            object_id=object_id, region=region, center=center,
            time=float(step + 1)))
    return out


def _run(mode: str, rules: List[str],
         stream: List[LocationUpdate]) -> Tuple[float, list, dict]:
    """One engine over the whole workload; returns (seconds, events,
    stats).  Subscription setup is timed too — the naive oracle pays
    a full re-evaluation per subscribe as well."""
    engine = SemanticTriggerEngine(WORLD, mode=mode)
    events = []
    start = time.perf_counter()
    for index, rule in enumerate(rules):
        events.extend(engine.subscribe(f"s{index}", rule, now=0.0))
    for update in stream:
        events.extend(engine.on_update(update))
    elapsed = time.perf_counter() - start
    return elapsed, events, engine.stats()


def _series() -> dict:
    rules = _rules(SUBSCRIPTIONS)
    stream = _stream(UPDATES, OBJECTS)
    incremental = _run(MODE_INCREMENTAL, rules, stream)
    reference = _run(MODE_REFERENCE, rules, stream)
    assert incremental[1] == reference[1], (
        "incremental and reference event streams diverged")
    return {"incremental": incremental, "reference": reference,
            "events": len(incremental[1])}


def test_semantic_trigger_scaling(results_dir):
    series = _series()
    inc_s, _, inc_stats = series["incremental"]
    ref_s, _, ref_stats = series["reference"]
    speedup = ref_s / inc_s
    lines = [
        "Semantic trigger scaling - incremental engine vs naive oracle",
        f"({SUBSCRIPTIONS} semantic subscriptions over "
        f"{len(ROOMS)} rooms; {OBJECTS} objects, {UPDATES} location "
        f"updates; identical event streams verified)",
        "",
        f"{'engine':>12} {'seconds':>9} {'updates/s':>10} "
        f"{'evaluated':>10} {'pruned':>8} {'rebuilds':>9}",
        f"{'incremental':>12} {inc_s:>9.3f} {UPDATES / inc_s:>10.0f} "
        f"{inc_stats['evaluated']:>10} {inc_stats['pruned']:>8} "
        f"{inc_stats['kb_rebuilds']:>9}",
        f"{'reference':>12} {ref_s:>9.3f} {UPDATES / ref_s:>10.0f} "
        f"{ref_stats['evaluated']:>10} {ref_stats['pruned']:>8} "
        f"{ref_stats['kb_rebuilds']:>9}",
        "",
        f"events emitted: {series['events']} (bit-identical streams)",
        f"speedup: {speedup:.1f}x (acceptance floor: 10x)",
        "A keep-alive report flips nothing and prunes every rule; a "
        "move flips two rooms' containment chains, so ~1/6 of the "
        "rules are affected and the rest are pruned by the "
        "region/predicate index instead of re-proved.",
    ]
    write_result(results_dir, "semantic_trigger_scaling", lines)
    # The pruning did the work, not luck: most rule-epochs skipped.
    assert inc_stats["pruned"] > inc_stats["evaluated"]
    assert inc_stats["kb_rebuilds"] == 1
    assert speedup >= 10.0, (
        f"semantic speedup {speedup:.1f}x below the 10x floor "
        f"(incremental {inc_s:.3f}s, reference {ref_s:.3f}s)")


def test_perf_smoke_semantic_triggers():
    """CI gate: the incremental engine beats the naive oracle 10x at
    100 subscriptions / 32 objects.  Best-of-two per engine irons out
    scheduler noise on shared runners."""
    rules = _rules(SUBSCRIPTIONS)
    stream = _stream(UPDATES, OBJECTS)
    inc = min(_run(MODE_INCREMENTAL, rules, stream)[0]
              for _ in range(2))
    ref = min(_run(MODE_REFERENCE, rules, stream)[0] for _ in range(2))
    speedup = ref / inc
    assert speedup >= 10.0, (
        f"semantic speedup {speedup:.1f}x below the 10x acceptance "
        f"floor (incremental {inc:.3f}s, reference {ref:.3f}s)")


if __name__ == "__main__":
    result = _series()
    print("incremental", result["incremental"][0],
          result["incremental"][2])
    print("reference", result["reference"][0], result["reference"][2])
