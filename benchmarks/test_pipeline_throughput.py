"""Ingestion pipeline throughput and latency vs worker count.

The streaming pipeline (docs/PIPELINE.md) decouples adapter emission
rates from fusion cost with bounded per-object queues, per-object
batching and a worker pool.  This bench measures what that buys:
readings/second through the full submit → flush → fuse → notify path,
and the p50/p95 of the two latency spans the pipeline histograms
(enqueue→fused, fused→notified), at 1, 4 and 8 workers.

Results are written to benchmarks/results/pipeline_throughput.txt.
"""

from __future__ import annotations

import time
from typing import List

import pytest

from _support import write_result
from repro.geometry import Point, Rect
from repro.pipeline import (
    LocationPipeline,
    PipelineConfig,
    PipelineReading,
    PipelineStats,
)
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase

WORKER_COUNTS = [1, 4, 8]
OBJECTS = 10
PER_OBJECT = 100


def _readings() -> List[PipelineReading]:
    """The workload: 10 objects x 100 readings inside room 3105."""
    world = siebel_floor()
    room = world.canonical_mbr("SC/3/3105")
    out = []
    for i in range(PER_OBJECT):
        for obj in range(OBJECTS):
            center = Point(room.center.x + obj * 0.1, room.center.y)
            out.append(PipelineReading(
                sensor_id="Ubi-1", glob_prefix="SC/3",
                sensor_type="ubisense", object_id=f"person-{obj}",
                rect=Rect.from_center(center, 1.0),
                detection_time=float(i), location=center,
                detection_radius=1.0))
    return out


def run_pipeline(workers: int) -> tuple:
    """One full run; returns (wall seconds, PipelineStats)."""
    world = siebel_floor()
    db = SpatialDatabase(world)
    service = LocationService(db)
    UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    service.subscribe(world.canonical_mbr("SC/3/3105"),
                      consumer=lambda event: None, kind="both",
                      threshold=0.2)
    readings = _readings()
    pipeline = LocationPipeline(service, PipelineConfig(
        workers=workers, max_batch=16, max_wait=0.01))
    pipeline.start()
    start = time.perf_counter()
    try:
        for reading in readings:
            pipeline.submit(reading)
        assert pipeline.drain(timeout=120.0)
    finally:
        pipeline.stop()
    elapsed = time.perf_counter() - start
    stats = pipeline.stats()
    assert stats.fused == len(readings)
    assert stats.reconciles()
    return elapsed, stats


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_pipeline_throughput(benchmark, workers, results_dir):
    benchmark.pedantic(lambda: run_pipeline(workers),
                       rounds=3, iterations=1)


def test_pipeline_throughput_table(results_dir):
    """The summary table: readings/sec and latency by worker count."""
    total = OBJECTS * PER_OBJECT
    lines = [
        "Ingestion pipeline throughput "
        f"({OBJECTS} objects x {PER_OBJECT} readings)",
        f"{'workers':>7}  {'readings/s':>10}  "
        f"{'enq->fused p50':>14}  {'enq->fused p95':>14}  "
        f"{'fused->notif p50':>16}  {'fused->notif p95':>16}",
    ]
    rates = {}
    for workers in WORKER_COUNTS:
        elapsed, stats = run_pipeline(workers)
        rates[workers] = total / elapsed
        lines.append(
            f"{workers:>7}  {total / elapsed:>10.0f}  "
            f"{stats.enqueue_to_fused.p50 * 1e3:>12.2f}ms  "
            f"{stats.enqueue_to_fused.p95 * 1e3:>12.2f}ms  "
            f"{stats.fused_to_notified.p50 * 1e3:>14.2f}ms  "
            f"{stats.fused_to_notified.p95 * 1e3:>14.2f}ms")
    lines.append(
        f"4-vs-1 worker speedup: {rates[4] / rates[1]:.2f}x; "
        f"8-vs-1: {rates[8] / rates[1]:.2f}x")
    write_result(results_dir, "pipeline_throughput", lines)
    # Sanity, not a strict scaling assertion (CI boxes vary): more
    # workers must never collapse throughput.
    assert rates[4] > rates[1] * 0.5
    assert rates[8] > rates[1] * 0.5
