"""Ablation A10: reasoning-engine costs.

The paper offloads derived relations to XSB Prolog; our Horn-clause
engine must stay fast enough that reachability queries and RCC-8
constraint propagation are interactive at building scale.
"""

from __future__ import annotations

import time

import pytest

from _support import write_result
from repro.reasoning import (
    NavigationGraph,
    RCC8,
    RelationNetwork,
    build_knowledge_base,
    reachable_regions,
    region_rcc8,
)
from repro.sim import generate_office_floor, siebel_building, siebel_floor


@pytest.mark.parametrize("rooms_per_side", [4, 12, 24])
def test_reachability_query(benchmark, rooms_per_side):
    world = generate_office_floor(rooms_per_side=rooms_per_side)
    kb = build_knowledge_base(world)
    source = f"GEN/1/S001"
    result = benchmark(lambda: reachable_regions(kb, source))
    # Every room reaches every other through the corridor.
    assert len(result) == 2 * rooms_per_side + 1


def test_kb_construction(benchmark):
    world = siebel_building()
    kb = benchmark(lambda: build_knowledge_base(world))
    assert kb.clause_count() > 20


def test_rcc8_constraint_propagation(benchmark, results_dir):
    world = siebel_floor()
    regions = ["SC/3", "SC/3/3105", "SC/3/NetLab", "SC/3/Corridor",
               "SC/3/3102", "SC/3/ConferenceRoom"]

    def propagate():
        network = RelationNetwork(regions)
        # Feed only the room-vs-floor relations; propagation must
        # still tighten room-vs-room pairs.
        for region in regions[1:]:
            network.set_relation(region, "SC/3",
                                 [region_rcc8(world, region, "SC/3")])
        assert network.propagate()
        return network

    network = propagate()
    lines = ["Ablation A10: RCC-8 propagation over the Siebel floor",
             f"regions: {len(regions)}"]
    pair = network.relation("SC/3/3105", "SC/3/NetLab")
    lines.append(
        f"inferred 3105-vs-NetLab from floor facts alone: "
        f"{{{', '.join(sorted(r.value for r in pair))}}}")
    # Proper parts of the same region cannot strictly contain each
    # other: the inverse-containment relations are ruled out.
    assert RCC8.NTPPI not in pair
    assert RCC8.NTPP not in pair

    start = time.perf_counter()
    for _ in range(20):
        propagate()
    elapsed_ms = (time.perf_counter() - start) / 20 * 1000
    lines.append(f"propagation time: {elapsed_ms:.2f} ms")
    write_result(results_dir, "ablation_a10_reasoning", lines)
    benchmark(propagate)


def test_cross_floor_route(benchmark):
    world = siebel_building()
    nav = NavigationGraph(world)
    route = benchmark(lambda: nav.route("SC/3/3102", "SC/2/Cafe"))
    assert route is not None
