"""Ablation A3: the MBR approximation vs exact polygons.

The paper's design bet (Section 4.1.2): "While approximating sensor
regions with minimum bounding rectangles decreases the accuracy of
location detection, the advantages in terms of performance and
simplicity far outweigh the loss in accuracy."  This ablation
measures both sides of that trade for circular sensor regions (the
worst common case — a circle's bounding square over-covers by 4/pi).
"""

from __future__ import annotations

import math
import time

import pytest

from _support import write_result
from repro.geometry import Point, Polygon, Rect


def circle_polygon(center: Point, radius: float, sides: int = 32):
    return Polygon.regular(center, radius, sides)


def test_mbr_intersection_cost(benchmark):
    a = Rect.from_center(Point(100, 50), 15.0)
    b = Rect.from_center(Point(110, 55), 15.0)
    benchmark(lambda: a.intersection_area(b))


def test_polygon_intersection_cost(benchmark):
    a = circle_polygon(Point(100, 50), 15.0)
    b = Rect.from_center(Point(110, 55), 15.0)
    benchmark(lambda: a.intersection_area_with_rect(b))


def test_mbr_accuracy_table(benchmark, results_dir):
    """Area error and speed of MBR vs exact circle, over separations."""
    radius = 15.0
    lines = ["Ablation A3: MBR vs exact polygon for circular sensor "
             "regions (r = 15 ft)",
             f"{'separation':>11} {'mbr overlap':>12} "
             f"{'exact overlap':>14} {'overestimate':>13}"]
    a_center = Point(100, 50)
    for separation in (0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0):
        b_center = Point(100 + separation, 50)
        mbr_a = Rect.from_center(a_center, radius)
        mbr_b = Rect.from_center(b_center, radius)
        mbr_overlap = mbr_a.intersection_area(mbr_b)
        circle_a = circle_polygon(a_center, radius, 64)
        exact = circle_a.intersection_area_with_rect(
            Rect.from_center(b_center, radius))
        ratio = mbr_overlap / exact if exact > 0 else float("inf")
        lines.append(f"{separation:>11.0f} {mbr_overlap:>12.1f} "
                     f"{exact:>14.1f} {ratio:>12.2f}x")
        # The MBR never under-covers.
        assert mbr_overlap >= exact - 1e-6

    # Timing comparison on one representative pair.
    mbr_a = Rect.from_center(a_center, radius)
    mbr_b = Rect.from_center(Point(110, 55), radius)
    circle_a = circle_polygon(a_center, radius, 64)
    n = 20000
    start = time.perf_counter()
    for _ in range(n):
        mbr_a.intersection_area(mbr_b)
    mbr_time = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(n // 20):
        circle_a.intersection_area_with_rect(mbr_b)
    poly_time = (time.perf_counter() - start) * 20
    speedup = poly_time / mbr_time
    lines.append(f"speed: rect-rect {mbr_time / n * 1e6:.2f} us vs "
                 f"polygon-rect {poly_time / n * 1e6:.2f} us "
                 f"({speedup:.0f}x faster)")
    # The paper's bet must hold: MBRs are at least an order of
    # magnitude faster.
    assert speedup > 10.0
    write_result(results_dir, "ablation_mbr", lines)
    benchmark(lambda: mbr_a.intersection_area(mbr_b))


def test_mbr_containment_refinement(benchmark, results_dir):
    """Section 5.1's filter/refine: how often does the MBR filter lie?

    Points uniformly sampled inside the MBR of a circle: ~21% are
    outside the circle (1 - pi/4), which is exactly the refinement
    pass's job to reject.
    """
    import random

    rng = random.Random(3)
    center = Point(100.0, 50.0)
    radius = 15.0
    mbr = Rect.from_center(center, radius)
    circle = circle_polygon(center, radius, 128)
    total = 20000
    false_accepts = 0
    for _ in range(total):
        p = Point(rng.uniform(mbr.min_x, mbr.max_x),
                  rng.uniform(mbr.min_y, mbr.max_y))
        if not circle.contains_point(p):
            false_accepts += 1
    rate = false_accepts / total
    expected = 1.0 - math.pi / 4.0
    lines = ["MBR filter false-accept rate for a circular region",
             f"measured = {rate:.3f}, analytic 1 - pi/4 = {expected:.3f}"]
    assert rate == pytest.approx(expected, abs=0.02)
    write_result(results_dir, "ablation_mbr_filter", lines)
    benchmark(lambda: circle.contains_point(center))
