"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import pathlib


def write_result(results_dir: pathlib.Path, name: str, lines) -> None:
    """Persist (and echo) a reproduced table or series.

    Benchmarks write their regenerated paper tables/figures here so
    the numbers survive pytest's output capture; EXPERIMENTS.md quotes
    them.
    """
    text = "\n".join(str(line) for line in lines) + "\n"
    (results_dir / f"{name}.txt").write_text(text)
    print(f"\n--- {name} ---")
    print(text)
