"""Shared benchmark fixtures.

Every benchmark regenerates a paper table/figure (or an ablation) and
writes the reproduced rows/series to ``benchmarks/results/<name>.txt``
so the numbers survive pytest's output capture; the pytest-benchmark
summary table carries the timing comparison.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
