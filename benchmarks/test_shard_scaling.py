"""Shard fleet scaling: readings/second at 1, 2, 4 and 8 shards.

This box pins everything to one core, so the win cannot come from
parallel fusion — it comes from *partitioned working sets*.  Each
shard owns its slice of the tracked-object population and its own
content-addressed fusion cache (capacity 32 entries).  The workload
tracks 64 stationary objects, each sighted by ten sensors whose
rectangles overlap (an expensive ten-set lattice per cache miss):

* 1 shard: 64 distinct fusion fingerprints cycle through one
  32-entry LRU — every access evicts before its key comes around
  again, so every round re-evaluates every lattice;
* 4 shards: ~16 objects per shard fit each cache with room to spare —
  after the first round every fusion is a lookup.

The RPC, insert and normalization costs are identical in every
configuration (all of them run through real shard processes over the
ORB's TCP transport); only the fusion-cache hit rate changes.  On a
multi-core host the same partitioning additionally buys real
parallelism, so these numbers are the *floor* of the win.

Results go to benchmarks/results/shard_scaling.txt; the
``test_perf_smoke_shard_scaling`` gate holds the 4-shard speedup.
"""

from __future__ import annotations

import time
from typing import Dict, List

import pytest

from _support import write_result
from repro.core import SensorSpec
from repro.geometry import Rect
from repro.pipeline import PipelineReading
from repro.shard import ShardCluster
from repro.sim import siebel_floor

SHARD_COUNTS = [1, 2, 4, 8]
OBJECTS = 64
ROUNDS = 5
SENSOR_COUNT = 10
CACHE_CAPACITY = 32  # the engine default, stated here for the story

SENSOR_IDS = [f"Sensor-{i}" for i in range(SENSOR_COUNT)]
_SPEC = SensorSpec(sensor_type="Ubisense", carry_probability=0.9,
                   detection_probability=0.95, misident_probability=0.05,
                   z_area_scaled=True, resolution=0.5,
                   time_to_live=3600.0)


def _object_rects() -> Dict[str, List[Rect]]:
    """Ten *staggered* rectangles per object, distinct per object.

    Staggering (each rect shifted diagonally from the last) maximizes
    the number of distinct lattice cells the fusion sweep must
    evaluate — nested rectangles would collapse to onion rings.
    Per-object distinctness gives every object its own fusion
    fingerprint: 64 cache keys fleet-wide.
    """
    rects: Dict[str, List[Rect]] = {}
    for obj in range(OBJECTS):
        x = float((obj % 32) * 11)
        y = float((obj // 32) * 45)
        base = Rect(x, y, x + 8.0, y + 6.0)
        rects[f"person-{obj:02d}"] = [
            Rect(base.min_x + i * 1.3, base.min_y + i * 0.9,
                 base.max_x + i * 1.3, base.max_y + i * 0.9)
            for i in range(SENSOR_COUNT)
        ]
    return rects


def _stream() -> List[PipelineReading]:
    """ROUNDS re-sightings of every object at identical rectangles.

    Identical rects mean ``moving`` stays False and (with the hour
    TTL keeping the freshness bucket at zero) the fusion fingerprint
    of every object is *stable from round 2 on* — exactly the
    situation the content-addressed cache exists for, if only it
    were big enough to hold the population.

    The stream interleaves sensor-major (every consecutive reading
    is a different object), the realistic arrival order when ten
    independent sensor feeds each sweep the floor.  It is also the
    adversarial order for a too-small LRU: each round touches all 64
    fusion keys round-robin, so a 32-entry cache evicts every key
    before its next use.
    """
    rects = _object_rects()
    out: List[PipelineReading] = []
    for round_no in range(ROUNDS):
        for sensor_index in range(SENSOR_COUNT):
            for object_id, object_rects in rects.items():
                out.append(PipelineReading(
                    sensor_id=SENSOR_IDS[sensor_index],
                    glob_prefix="SC/3", sensor_type=_SPEC.sensor_type,
                    object_id=object_id,
                    rect=object_rects[sensor_index],
                    detection_time=float(round_no)))
    return out


def _run(num_shards: int, stream: List[PipelineReading]) -> tuple:
    """One configuration; returns (seconds, fleet stats)."""
    cluster = ShardCluster(
        num_shards, world=siebel_floor(),
        pipeline={"workers": 1, "max_batch": 4, "max_wait": 0.005},
        fusion_cache_capacity=CACHE_CAPACITY, batch_size=32)
    try:
        router = cluster.router
        for sensor_id in SENSOR_IDS:
            router.register_sensor(sensor_id, _SPEC.sensor_type, 95.0,
                                   _SPEC.time_to_live, _SPEC)
        start = time.perf_counter()
        for reading in stream:
            router.submit(reading)
        assert router.drain(timeout=300.0)
        elapsed = time.perf_counter() - start
        stats = router.stats()
        assert router.reconciles()
        assert stats["fleet"]["fused"] == len(stream)
        return elapsed, stats["fleet"]
    finally:
        cluster.shutdown()


def _series(shard_counts: List[int]) -> List[dict]:
    stream = _stream()
    rows = []
    for num_shards in shard_counts:
        # Best-of-two per configuration, like the smoke gate: one bad
        # scheduler moment should not misprice a whole row.
        elapsed, fleet = min((_run(num_shards, stream)
                              for _ in range(2)), key=lambda r: r[0])
        rows.append({
            "shards": num_shards,
            "seconds": elapsed,
            "rps": len(stream) / elapsed,
            "cache_hits": fleet["fusion_cache_hits"],
            "fused": fleet["fused"],
        })
    return rows


def test_shard_scaling(results_dir):
    rows = _series(SHARD_COUNTS)
    base = rows[0]
    lines = [
        "Shard fleet scaling - readings/s through the router sink",
        f"(single-core host; {OBJECTS} stationary objects x "
        f"{SENSOR_COUNT} overlapping sensors x {ROUNDS} rounds; "
        f"per-shard fusion cache {CACHE_CAPACITY} entries; "
        "best of 2 per row)",
        "",
        f"{'shards':>6} {'seconds':>9} {'readings/s':>11} "
        f"{'speedup':>8} {'cache hits':>11}",
    ]
    for row in rows:
        speedup = row["rps"] / base["rps"]
        lines.append(
            f"{row['shards']:>6} {row['seconds']:>9.3f} "
            f"{row['rps']:>11.0f} {speedup:>7.2f}x "
            f"{row['cache_hits']:>11}")
    four = next(r for r in rows if r["shards"] == 4)
    lines += [
        "",
        f"4-shard speedup: {four['rps'] / base['rps']:.2f}x "
        "(acceptance floor: 2x)",
        "The win is cache locality, not cores: 64 fusion keys thrash "
        "one 32-entry LRU; 16 per shard always hit after warmup.",
        "The 8-shard row buys no extra cache headroom (640 hits either "
        "way) and pays single-core scheduling for twice the processes; "
        "a multi-core host turns that overhead into real parallelism.",
    ]
    write_result(results_dir, "shard_scaling", lines)
    # The population must not fit one shard's cache but must fit four.
    assert OBJECTS > CACHE_CAPACITY
    assert OBJECTS <= 4 * CACHE_CAPACITY
    assert four["rps"] / base["rps"] >= 2.0


def test_perf_smoke_shard_scaling():
    """CI gate: 4 shards sustain at least 2x the 1-shard throughput.

    The full committed-table stream — shorter variants leave the
    4-shard side dominated by its round-1 cold misses and the gate
    margin gets noisy.  Best-of-two per configuration irons out the
    scheduler's bad moods on shared CI runners.
    """
    stream = _stream()
    one = min(_run(1, stream)[0] for _ in range(2))
    runs = [_run(4, stream) for _ in range(2)]
    four = min(elapsed for elapsed, _ in runs)
    for _, fleet in runs:
        assert fleet["fused"] == len(stream)
    speedup = one / four
    assert speedup >= 2.0, (
        f"4-shard speedup {speedup:.2f}x below the 2x acceptance floor "
        f"(1 shard {one:.3f}s, 4 shards {four:.3f}s)")


if __name__ == "__main__":
    for row in _series(SHARD_COUNTS):
        print(row)
