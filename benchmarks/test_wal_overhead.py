"""Durability overhead: the WAL on the ingestion hot path.

Every reading the pipeline flushes is journaled durably *before* it is
applied (docs/DURABILITY.md), so the write-ahead log is pure overhead
on the submit → flush → fuse path.  This bench measures what each
fsync policy costs against the durability-off baseline on the pipeline
throughput workload: ``off`` (no journal — the bit-identical seed
path), ``buffered`` (group commit every 512 records), and ``strict``
(fsync per record).

The committed gate: buffered-WAL throughput must stay within 15% of
the durability-off baseline (min-of-3 runs; the CI perf-smoke job runs
``test_perf_smoke_wal_overhead``).

Results are written to benchmarks/results/wal_overhead.txt.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import List, Optional, Tuple

import pytest

from _support import write_result
from repro.geometry import Point, Rect
from repro.pipeline import LocationPipeline, PipelineConfig, PipelineReading
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import siebel_floor
from repro.spatialdb import SpatialDatabase
from repro.storage import DurabilityManager, DurabilityMode, recover

MODES = ["off", "buffered", "strict"]
OBJECTS = 10
PER_OBJECT = 100
ROUNDS = 3  # min-of-N to shave scheduler noise off the gate


def _readings() -> List[PipelineReading]:
    """The pipeline-throughput workload: 10 objects x 100 readings."""
    world = siebel_floor()
    room = world.canonical_mbr("SC/3/3105")
    out = []
    for i in range(PER_OBJECT):
        for obj in range(OBJECTS):
            center = Point(room.center.x + obj * 0.1, room.center.y)
            out.append(PipelineReading(
                sensor_id="Ubi-1", glob_prefix="SC/3",
                sensor_type="ubisense", object_id=f"person-{obj}",
                rect=Rect.from_center(center, 1.0),
                detection_time=float(i), location=center,
                detection_radius=1.0))
    return out


def run_durable_pipeline(mode: str,
                         wal_dir: Optional[str] = None) -> Tuple:
    """One full pipeline run under one durability mode.

    Returns ``(wall seconds, PipelineStats, appended-record count)``.
    """
    world = siebel_floor()
    db = SpatialDatabase(world)
    manager = None
    if mode != "off":
        manager = DurabilityManager(
            db, wal_dir, mode=DurabilityMode(mode)).attach()
    service = LocationService(db)
    UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    readings = _readings()
    # One worker: the throughput-optimal configuration per
    # results/pipeline_throughput.txt (fusion is GIL-bound, so extra
    # workers only add lock convoy).  Measuring durability at the
    # degraded 4-worker point would conflate WAL cost with that
    # pre-existing contention.
    pipeline = LocationPipeline(service, PipelineConfig(
        workers=1, max_batch=16, max_wait=0.01))
    pipeline.start()
    start = time.perf_counter()
    try:
        for reading in readings:
            pipeline.submit(reading)
        assert pipeline.drain(timeout=120.0)
    finally:
        pipeline.stop()
    elapsed = time.perf_counter() - start
    stats = pipeline.stats()
    assert stats.fused == len(readings)
    assert stats.reconciles()
    appended = 0
    if manager is not None:
        appended = manager.stats()["appended"]
        assert appended >= len(readings)  # register + every insert
        manager.close()
    return elapsed, stats, appended


def _best_run(mode: str) -> Tuple[float, int]:
    """Min-of-ROUNDS wall time (fresh WAL directory per round)."""
    best = float("inf")
    appended = 0
    for _ in range(ROUNDS):
        wal_dir = tempfile.mkdtemp(prefix=f"wal-bench-{mode}-")
        try:
            elapsed, _, appended = run_durable_pipeline(mode, wal_dir)
            best = min(best, elapsed)
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
    return best, appended


@pytest.mark.parametrize("mode", MODES)
def test_wal_overhead(benchmark, mode, results_dir):
    def once():
        wal_dir = tempfile.mkdtemp(prefix="wal-bench-")
        try:
            return run_durable_pipeline(mode, wal_dir)
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)

    benchmark.pedantic(once, rounds=3, iterations=1)


def test_wal_overhead_table(results_dir):
    """The summary table: readings/s and overhead vs off, per mode."""
    total = OBJECTS * PER_OBJECT
    best = {mode: _best_run(mode) for mode in MODES}
    baseline = best["off"][0]
    lines = [
        "WAL durability overhead on the ingestion pipeline "
        f"({OBJECTS} objects x {PER_OBJECT} readings, min of "
        f"{ROUNDS} runs)",
        f"{'mode':>9}  {'readings/s':>10}  {'vs off':>8}  "
        f"{'wal records':>11}",
    ]
    for mode in MODES:
        elapsed, appended = best[mode]
        overhead = (elapsed / baseline - 1.0) * 100.0
        lines.append(f"{mode:>9}  {total / elapsed:>10.0f}  "
                     f"{overhead:>+7.1f}%  {appended:>11}")
    lines.append("gate: buffered within 15% of off "
                 "(test_perf_smoke_wal_overhead)")
    write_result(results_dir, "wal_overhead", lines)


# The gate regresses on the journaling *CPU* cost (encode, locking,
# appends) — fsync latency is whatever the CI box's disk makes it, so
# the gate keeps its WAL on tmpfs when one is mounted.  The table and
# the pedantic bench above keep real disk.
_GATE_TMPDIR = "/dev/shm" if os.path.isdir("/dev/shm") else None


def _timed_run(mode: str) -> float:
    # Flush dirty pages first so a preceding round's writeback (the
    # strict rounds fsync ~1000 times) cannot bleed into this one.
    os.sync()
    wal_dir = tempfile.mkdtemp(prefix=f"wal-gate-{mode}-",
                               dir=_GATE_TMPDIR)
    try:
        return run_durable_pipeline(mode, wal_dir)[0]
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)


def test_perf_smoke_wal_overhead():
    """CI gate: group-committed WAL costs at most 15% throughput.

    Wall-time noise (scheduler, CPU frequency, page cache) is strictly
    additive, so the best-of-N run is the sharpest estimator of each
    mode's true cost; the rounds are interleaved off/buffered so both
    modes sample the same machine conditions.
    """
    rounds = 7
    off_runs, buffered_runs = [], []
    for _ in range(rounds):
        off_runs.append(_timed_run("off"))
        buffered_runs.append(_timed_run("buffered"))
    off, buffered = min(off_runs), min(buffered_runs)
    assert buffered <= off * 1.15, (
        f"buffered WAL best-of-{rounds} took {buffered:.3f}s vs "
        f"{off:.3f}s durability-off "
        f"({(buffered / off - 1) * 100:.1f}% overhead; budget is 15%)")


def test_recovered_database_matches_benchmark_run():
    """The bench's WAL directory actually recovers (drill, not décor)."""
    from repro.storage import readings_fingerprint

    wal_dir = tempfile.mkdtemp(prefix="wal-bench-recover-")
    try:
        world = siebel_floor()
        db = SpatialDatabase(world)
        manager = DurabilityManager(db, wal_dir).attach()
        service = LocationService(db)
        UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
        pipeline = LocationPipeline(service, PipelineConfig(workers=2))
        pipeline.start()
        try:
            for reading in _readings()[:200]:
                pipeline.submit(reading)
            assert pipeline.drain(timeout=60.0)
        finally:
            pipeline.stop()
        manager.sync()
        state = recover(wal_dir)
        assert readings_fingerprint(state.db) == readings_fingerprint(db)
        manager.close()
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)
