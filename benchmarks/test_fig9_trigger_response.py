"""Figure 9: trigger response time.

The paper: "Figure 9 shows the time taken for a trigger to be notified
by MiddleWhere.  The graph shows the trigger response times for 10
different updates to the location service.  The various curves
indicate the number of trigger notifications programmed into the
location service. ... we found that the response time was almost
independent of it. ... the first update requires a higher trigger
response time than subsequent updates.  This is due to the initial
setup time taken by MiddleWhere."

Reproduction: a Ubisense adapter feeds location updates for one person
while N subscriptions (each one database trigger) are programmed; the
response time is wall-clock from the sensor reading insert to the
subscriber callback.  One bench per programmed-trigger count — the
pytest-benchmark table is the figure's family of curves — and the
10-update series per count is written to results/fig9_series.txt.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import pytest

from _support import write_result
from repro.geometry import Point
from repro.sensors import UbisenseAdapter
from repro.service import LocationService
from repro.sim import SimClock, siebel_floor
from repro.spatialdb import SpatialDatabase

TRIGGER_COUNTS = [1, 10, 100, 500]
UPDATES = 10


class _Rig:
    """A service with N programmed triggers and a probe person."""

    def __init__(self, n_triggers: int) -> None:
        self.world = siebel_floor()
        self.db = SpatialDatabase(self.world)
        self.clock = SimClock()
        self.service = LocationService(self.db, clock=self.clock)
        self.adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="")
        self.adapter.attach(self.db)
        self.notified = 0

        def consume(event) -> None:
            self.notified += 1

        room = self.world.canonical_mbr("SC/3/3105")
        # One subscription watching the probe region, the rest watching
        # elsewhere-rectangles: all are programmed triggers the insert
        # path must consider, as in the paper's setup.
        self.service.subscribe(room, consumer=consume, kind="both",
                               threshold=0.2)
        for i in range(n_triggers - 1):
            other = self.world.canonical_mbr("SC/3/3226").translated(
                0, -(i % 3))
            self.service.subscribe(other, consumer=consume, kind="enter",
                                   threshold=0.2)
        self._tick = 0

    def update(self) -> float:
        """One location update; returns the trigger response time (s)."""
        self._tick += 1
        self.clock.advance(1.0)
        # Steady-state housekeeping outside the timed window: drop
        # expired readings so benchmark rounds do not accumulate rows.
        self.db.purge_expired(self.clock.now())
        inside = self._tick % 2 == 1
        position = Point(150, 20) if inside else Point(250, 50)
        before = self.notified
        start = time.perf_counter()
        self.adapter.tag_sighting("probe", position, self.clock.now())
        elapsed = time.perf_counter() - start
        assert self.notified == before + 1  # the enter/leave fired
        return elapsed


def ten_update_series(n_triggers: int) -> List[float]:
    rig = _Rig(n_triggers)
    return [rig.update() for _ in range(UPDATES)]


@pytest.mark.parametrize("n_triggers", TRIGGER_COUNTS)
def test_fig9_trigger_response(benchmark, n_triggers, results_dir):
    rig = _Rig(n_triggers)
    rig.update()  # burn the first-update setup cost before timing
    benchmark(rig.update)


def test_fig9_series(benchmark, results_dir):
    """The figure itself: response time per update, one curve per
    programmed-trigger count, first update included."""
    series: List[Tuple[int, List[float]]] = []
    for count in TRIGGER_COUNTS:
        series.append((count, ten_update_series(count)))

    lines = ["Figure 9 reproduction: trigger response time (ms)",
             "update# " + "  ".join(f"{c:>8d}-trg" for c in TRIGGER_COUNTS)]
    for update_index in range(UPDATES):
        row = [f"{update_index + 1:>7d} "]
        for _, values in series:
            row.append(f"{values[update_index] * 1000:>11.3f}")
        lines.append(" ".join(row))

    # Paper-shape assertions.
    for count, values in series:
        steady = values[1:]
        lines.append(
            f"first-update/steady ratio @ {count} triggers: "
            f"{values[0] / (sum(steady) / len(steady)):.2f}")
        # First update carries the setup cost.
        assert values[0] > min(steady)
    # Near-independence from the trigger count: 500 triggers must not
    # cost an order of magnitude more than 1 trigger.
    steady_means = {count: sum(vals[1:]) / (UPDATES - 1)
                    for count, vals in series}
    ratio = steady_means[TRIGGER_COUNTS[-1]] / steady_means[TRIGGER_COUNTS[0]]
    lines.append(f"steady-state 500-vs-1 trigger ratio: {ratio:.2f}")
    assert ratio < 10.0
    write_result(results_dir, "fig9_series", lines)

    benchmark(lambda: ten_update_series(10))


SCALING_COUNTS = [10, 50, 200, 500]


def _dispatch_rig(n_subscriptions: int):
    """A service with N enter-only subscriptions programmed elsewhere.

    The probe inserts land outside every subscribed region, so the
    per-insert cost is pure trigger dispatch: the R-tree probe on the
    indexed path, the full condition scan on the reference path.
    """
    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, clock=clock)
    adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    elsewhere = world.canonical_mbr("SC/3/3226")
    for i in range(n_subscriptions):
        service.subscribe(elsewhere.translated(0, -(i % 3)),
                          consumer=lambda event: None, kind="enter",
                          threshold=0.2)
    return world, db, clock, adapter


def _time_dispatch(table, row, rounds: int) -> float:
    """Best-of-5 mean microseconds for one insert-trigger dispatch."""
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(rounds):
            table._fire("insert", row)
        best = min(best, (time.perf_counter() - start) / rounds)
    return best * 1e6


def _probe_row(db, clock, adapter):
    adapter.tag_sighting("probe", Point(250, 50), clock.now())
    return db.sensor_readings.select(
        lambda r: r["mobile_object_id"] == "probe")[-1]


def test_query_index_scaling(benchmark, results_dir):
    """Tentpole table: per-insert trigger dispatch, indexed R-tree vs
    the reference linear scan, across programmed-subscription counts.
    The acceptance bar is >= 5x at 200 subscriptions."""
    lines = ["Query-side index scaling: insert trigger dispatch (us)",
             "subs    indexed  reference    speedup"]
    speedups = {}
    for count in SCALING_COUNTS:
        _, db, clock, adapter = _dispatch_rig(count)
        clock.advance(1.0)
        table = db.sensor_readings
        row = _probe_row(db, clock, adapter)
        indexed_us = _time_dispatch(table, row, 400)
        table.use_spatial_dispatch = False
        reference_us = _time_dispatch(table, row, 400)
        table.use_spatial_dispatch = True
        speedups[count] = reference_us / indexed_us
        lines.append(f"{count:>4d} {indexed_us:>10.2f} "
                     f"{reference_us:>10.2f} {speedups[count]:>9.1f}x")
    write_result(results_dir, "query_index_scaling", lines)
    assert speedups[200] >= 5.0, (
        f"indexed dispatch at 200 subscriptions is only "
        f"{speedups[200]:.1f}x faster than the linear scan")

    _, db, clock, adapter = _dispatch_rig(200)
    clock.advance(1.0)
    row = _probe_row(db, clock, adapter)
    benchmark(lambda: db.sensor_readings._fire("insert", row))


def test_perf_smoke_trigger_dispatch(results_dir):
    """CI guard: indexed dispatch at 200 subscriptions must stay within
    2x of the committed baseline (absolute floor for runner noise)."""
    baseline_us = _committed_indexed_us(results_dir, subscriptions=200)
    if baseline_us is None:
        pytest.skip("no committed baseline in "
                    "benchmarks/results/query_index_scaling.txt")
    _, db, clock, adapter = _dispatch_rig(200)
    clock.advance(1.0)
    row = _probe_row(db, clock, adapter)
    current_us = _time_dispatch(db.sensor_readings, row, 400)
    limit = max(2.0 * baseline_us, 50.0)
    assert current_us <= limit, (
        f"indexed dispatch at 200 subscriptions took {current_us:.2f} us; "
        f"committed baseline is {baseline_us:.2f} us (limit {limit:.2f} us)")


def _committed_indexed_us(results_dir, subscriptions: int):
    path = results_dir / "query_index_scaling.txt"
    if not path.exists():
        return None
    for line in path.read_text().splitlines():
        parts = line.split()
        if len(parts) >= 4 and parts[0] == str(subscriptions):
            try:
                return float(parts[1])  # the "indexed" column
            except ValueError:
                return None
    return None


def test_fig9_remote_notification_path(benchmark, results_dir):
    """The distributed variant: the subscriber lives behind the ORB's
    TCP transport, as a Gaia application would."""
    from repro.orb import Orb

    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    server_orb = Orb("server")
    server_orb.listen()
    service = LocationService(db, orb=server_orb, clock=clock)
    adapter = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)

    client_orb = Orb("client")
    client_orb.listen()

    class App:
        def __init__(self):
            self.count = 0

        def notify(self, event):
            self.count += 1

    app = App()
    app_ref = client_orb.register("app", app)
    room = world.canonical_mbr("SC/3/3105")
    service.subscribe(room, remote_reference=app_ref, kind="both",
                      threshold=0.2)
    state = {"tick": 0}

    def update() -> None:
        state["tick"] += 1
        clock.advance(1.0)
        db.purge_expired(clock.now())
        inside = state["tick"] % 2 == 1
        position = Point(150, 20) if inside else Point(250, 50)
        before = app.count
        adapter.tag_sighting("probe", position, clock.now())
        assert app.count == before + 1

    try:
        update()  # setup
        benchmark(update)
    finally:
        client_orb.shutdown()
        server_orb.shutdown()
