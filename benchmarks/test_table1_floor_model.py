"""Table 1: the spatial-database table representing the floor.

The paper's Table 1 lists the floor's regions with ObjectIdentifier,
GlobPrefix, ObjectType, GeometryType and Points.  We rebuild the same
floor, load it into the spatial database, and print the table in the
paper's format; the benchmark times the world-model -> database load.
"""

from __future__ import annotations

import pytest

from _support import write_result
from repro.sim import paper_floor
from repro.spatialdb import SpatialDatabase

# The rows as printed in the paper (HCILab's points are missing in the
# original; see DESIGN.md).
PAPER_ROWS = {
    ("CS/Floor3", "3105"): ("Room", "polygon",
                            "(330,0), (350,0), (350,30), (330,30)"),
    ("CS/Floor3", "NetLab"): ("Room", "polygon",
                              "(360,0), (380,0), (380,30), (360,30)"),
    ("CS/Floor3", "LabCorridor"): ("Corridor", "polygon",
                                   "(310,0), (330,0), (330,30), (310,30)"),
    ("CS", "Floor3"): ("Floor", "polygon", None),
}


def _points_string(geometry) -> str:
    return ", ".join(f"({v.x:g},{v.y:g})" for v in geometry.vertices)


def _table_rows(db: SpatialDatabase):
    rows = []
    for row in db.spatial_objects.select(order_by="object_identifier"):
        rows.append((
            row["object_identifier"],
            row["glob_prefix"],
            row["object_type"],
            row["geometry_type"],
            _points_string(row["geometry"]),
        ))
    return rows


def test_table1_rows(benchmark, results_dir):
    db = SpatialDatabase(paper_floor())
    rows = _table_rows(db)

    lines = ["Table 1 reproduction: spatial table of CS/Floor3",
             f"{'ObjectIdentifier':<16} {'GlobPrefix':<12} "
             f"{'ObjectType':<10} {'GeometryType':<12} Points"]
    for identifier, prefix, otype, gtype, points in rows:
        lines.append(f"{identifier:<16} {prefix:<12} {otype:<10} "
                     f"{gtype:<12} {points}")

    by_key = {(prefix, identifier): (otype, gtype, points)
              for identifier, prefix, otype, gtype, points in rows}
    for key, (expected_type, expected_geometry,
              expected_points) in PAPER_ROWS.items():
        assert key in by_key, key
        otype, gtype, points = by_key[key]
        assert otype == expected_type
        assert gtype == expected_geometry
        if expected_points is not None:
            normalize = lambda s: s.replace(" ", "")
            assert normalize(points) == normalize(expected_points)
    write_result(results_dir, "table1_floor_model", lines)

    benchmark(lambda: SpatialDatabase(paper_floor()))


def test_table1_spatial_query_example(benchmark, results_dir):
    """Section 5.1's example query over the modelled floor:
    'Where is the nearest region that has power outlets?'"""
    world = paper_floor()
    world.get("CS/Floor3/NetLab").properties["power_outlets"] = True
    world.get("CS/Floor3/HCILab").properties["power_outlets"] = True
    db = SpatialDatabase(world)
    from repro.geometry import Point

    def query():
        return db.nearest_objects(
            Point(340, 15), count=1,
            where=lambda row: row["properties"].get("power_outlets"))

    found = query()
    assert found[0][0] == "CS/Floor3/NetLab"
    write_result(results_dir, "table1_nearest_query",
                 [f"nearest power-outlet region to (340,15): "
                  f"{found[0][0]} at distance {found[0][1]:.1f} ft"])
    benchmark(query)
