"""Ablations A6-A8: end-to-end accuracy studies over ground truth.

The paper's evaluation measures only trigger latency; with a simulator
holding ground truth we can also measure what the design choices buy
in *accuracy*:

* A6 — sensor density: how room-level accuracy scales with coverage;
* A7 — conflict rules: the moving-rectangle rule vs plain
  highest-probability on a left-behind-badge workload;
* A8 — temporal degradation: tdf on vs off when readings go stale.
"""

from __future__ import annotations

import pytest

from _support import write_result
from repro.core import (
    ConflictResolver,
    FreshestReadingRule,
    FusionEngine,
    HighestProbabilityRule,
)
from repro.errors import UnknownObjectError
from repro.geometry import Point
from repro.sim import Scenario


def run_accuracy(seed: int, rooms_with_sensors: int,
                 seconds: float = 300.0,
                 engine: FusionEngine = None) -> dict:
    scenario = Scenario(seed=seed, engine=engine)
    rooms = ["SC/3/3102", "SC/3/3105", "SC/3/3216",
             "SC/3/ConferenceRoom", "SC/3/HCILab", "SC/3/3110"]
    for index, room in enumerate(rooms[:rooms_with_sensors]):
        scenario.deployment.install_rf_station(f"RF-{index}", room)
    scenario.deployment.install_rf_station("RF-corridor",
                                           "SC/3/Corridor")
    scenario.add_people(4)
    scenario.run(seconds, dt=1.0, trace_accuracy=True)
    summary = scenario.trace.summary()
    return {
        "samples": summary.samples,
        "misses": summary.misses,
        "room_accuracy": summary.room_accuracy,
        "mean_error": summary.mean_error_ft,
    }


def test_a6_sensor_density(benchmark, results_dir):
    lines = ["Ablation A6: accuracy vs sensed rooms "
             "(RF stations + corridor, 4 people, 5 min)",
             f"{'rooms':>6} {'located %':>10} {'room acc %':>11} "
             f"{'mean err ft':>12}"]
    coverage = []
    for rooms in (0, 2, 4, 6):
        result = run_accuracy(seed=33, rooms_with_sensors=rooms)
        total = result["samples"] + result["misses"]
        located = result["samples"] / total if total else 0.0
        coverage.append((rooms, located, result))
        lines.append(f"{rooms:>6} {located * 100:>9.1f} "
                     f"{result['room_accuracy'] * 100:>10.1f} "
                     f"{result['mean_error']:>12.1f}")
    # More sensors -> more of the day locatable.
    assert coverage[-1][1] > coverage[0][1]
    write_result(results_dir, "ablation_a6_density", lines)
    benchmark(lambda: run_accuracy(seed=33, rooms_with_sensors=2,
                                   seconds=20.0))


def _left_behind_badge_trial(engine: FusionEngine) -> bool:
    """One badge-left-in-office episode; returns whether the estimate
    follows the person (correct) rather than the abandoned badge."""
    from repro.sensors import RfBadgeAdapter, UbisenseAdapter
    from repro.service import LocationService
    from repro.sim import SimClock, siebel_floor
    from repro.spatialdb import SpatialDatabase

    world = siebel_floor()
    db = SpatialDatabase(world)
    clock = SimClock()
    service = LocationService(db, engine=engine, clock=clock)
    office_rf = RfBadgeAdapter("RF-office", "SC/3/3102", Point(50, 20),
                               frame="").attach(db)
    tracker = UbisenseAdapter("Ubi-1", "SC/3", frame="").attach(db)
    # The badge pings from the office repeatedly (stationary rect);
    # the person walks the corridor (moving rect).
    office_rf.badge_sighting("alice", 0.0)
    office_rf.badge_sighting("alice", 5.0)
    tracker.tag_sighting("alice", Point(240, 50), 8.0)
    tracker.tag_sighting("alice", Point(244, 50), 9.0)
    clock.advance(10.0)
    estimate = service.locate("alice")
    return estimate.rect.contains_point(Point(244, 50))


def test_a7_conflict_rules(benchmark, results_dir):
    paper_engine = FusionEngine()  # moving rule first (the paper's)
    no_moving_rule = FusionEngine(resolver=ConflictResolver([
        HighestProbabilityRule(), FreshestReadingRule()]))
    with_rule = _left_behind_badge_trial(paper_engine)
    without_rule = _left_behind_badge_trial(no_moving_rule)
    lines = ["Ablation A7: conflict-rule ablation "
             "(left-behind badge episode)",
             f"paper rules (moving first): follows person = {with_rule}",
             f"without moving rule:        follows person = "
             f"{without_rule}"]
    # The moving-rectangle rule is what saves this workload: without
    # it, the office badge's big rectangle wins on Eq. 5.
    assert with_rule is True
    assert without_rule is False
    write_result(results_dir, "ablation_a7_conflict_rules", lines)
    benchmark(lambda: _left_behind_badge_trial(paper_engine))


def test_a8_temporal_degradation(benchmark, results_dir):
    """Confidence with and without tdf as a reading ages."""
    from repro.core import (
        ConstantTDF,
        ExponentialTDF,
        ProbabilityClassifier,
        SensorSpec,
        reading_from_region,
    )
    from repro.geometry import Rect

    universe = Rect(0, 0, 400, 100)
    room = Rect(140, 0, 200, 40)
    classifier = ProbabilityClassifier([0.75, 0.9, 0.98])
    engine = FusionEngine()
    lines = ["Ablation A8: temporal degradation of a card-swipe "
             "reading",
             f"{'age (s)':>8} {'with tdf':>9} {'without':>8}"]
    with_tdf = SensorSpec("Card", 1.0, 0.98, 0.02, time_to_live=1e9,
                          tdf=ExponentialTDF(half_life=20.0))
    without_tdf = SensorSpec("Card", 1.0, 0.98, 0.02, time_to_live=1e9,
                             tdf=ConstantTDF())
    previous = 1.0
    for age in (0.0, 10.0, 20.0, 40.0, 80.0, 160.0):
        values = []
        for spec in (with_tdf, without_tdf):
            reading = reading_from_region("Card-1", "tom", spec, room,
                                          time=0.0)
            result = engine.fuse("tom", [reading], universe, age)
            estimate = engine.point_estimate(result, classifier)
            values.append(estimate.probability)
        lines.append(f"{age:>8.0f} {values[0]:>9.3f} {values[1]:>8.3f}")
        assert values[0] <= previous + 1e-9
        previous = values[0]
        assert values[1] == pytest.approx(values[1], abs=1e-9)
    # Degradation must actually bite: by 160 s the degraded p has hit
    # its floor at q and the reading is worth a coin flip (0.5),
    # while the non-degraded spec still reports 0.98.
    assert previous == pytest.approx(0.5, abs=0.02)
    write_result(results_dir, "ablation_a8_tdf", lines)
    benchmark(lambda: engine.fuse(
        "tom", [reading_from_region("Card-1", "tom", with_tdf, room,
                                    time=0.0)], universe, 10.0))
