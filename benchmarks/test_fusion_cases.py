"""Figures 2-4 / Equations 4-6: the worked two-sensor fusion cases.

The paper's Section 4.1.2 walks three geometric cases (containment,
intersection, disjoint) and proves the reinforcement property
P(B | s1, s2) > P(B | s2) when p1 > q1.  These benches evaluate the
printed closed forms over parameter sweeps, verify the claimed
properties, and time the arithmetic.
"""

from __future__ import annotations

import pytest

from _support import write_result
from repro.core import (
    ConflictResolver,
    NormalizedReading,
    SensorSpec,
    eq4_containment,
    eq5_single_sensor,
    eq6_corrected,
    eq6_intersection,
)
from repro.geometry import Rect

AREA_U = 50000.0  # the paper's whole-building floor area


def test_fig2_containment_case(benchmark, results_dir):
    """Case 1 (Figure 2): inner rect A inside outer rect B."""
    area_b = 900.0
    p1, q1, p2, q2 = 0.9, 0.05, 0.8, 0.1
    single = eq5_single_sensor(area_b, AREA_U, p2, q2)

    lines = ["Figure 2 / Eq. 4: reinforcement under containment",
             f"single sensor P(B|s2) = {single:.4f}",
             f"{'area_A':>8} {'P(B|s1,s2)':>12} {'gain':>8}"]
    for area_a in (25.0, 100.0, 225.0, 400.0, 625.0, 900.0):
        both = eq4_containment(area_a, area_b, AREA_U, p1, q1, p2, q2)
        lines.append(f"{area_a:>8.0f} {both:>12.4f} "
                     f"{both / single:>8.2f}x")
        # The paper's verified claim: reinforcement whenever p1 > q1.
        assert both > single
    write_result(results_dir, "fig2_eq4_containment", lines)

    benchmark(lambda: eq4_containment(100.0, area_b, AREA_U,
                                      p1, q1, p2, q2))


def test_fig3_intersection_case(benchmark, results_dir):
    """Case 2 (Figure 3): rectangles A and B intersect in C."""
    area_a = area_b = 400.0
    p1, q1, p2, q2 = 0.9, 0.05, 0.9, 0.05
    lines = ["Figure 3 / Eq. 6: intersection case "
             "(printed vs corrected; see DESIGN.md)",
             f"{'area_C':>8} {'printed':>12} {'corrected':>12} "
             f"{'prior':>10}"]
    previous_corrected = 0.0
    for area_c in (25.0, 50.0, 100.0, 200.0, 300.0, 400.0):
        printed = eq6_intersection(area_a, area_b, area_c, AREA_U,
                                   p1, q1, p2, q2)
        corrected = eq6_corrected(area_a, area_b, area_c, AREA_U,
                                  p1, q1, p2, q2)
        prior = area_c / AREA_U
        lines.append(f"{area_c:>8.0f} {printed:>12.6f} "
                     f"{corrected:>12.6f} {prior:>10.6f}")
        # Larger overlap -> higher probability, in both forms.
        assert corrected > previous_corrected
        previous_corrected = corrected
        # The corrected posterior beats the uniform prior (agreeing
        # sensors concentrate mass in C); the printed form does not at
        # building scale — the documented units inconsistency.
        assert corrected > prior
    write_result(results_dir, "fig3_eq6_intersection", lines)

    benchmark(lambda: eq6_corrected(area_a, area_b, 100.0, AREA_U,
                                    p1, q1, p2, q2))


def test_fig4_disjoint_case(benchmark, results_dir):
    """Case 3 (Figure 4): disjoint rectangles -> conflict resolution."""
    spec_strong = SensorSpec("A", 1.0, 0.95, 0.05, resolution=5.0,
                             time_to_live=1e9)
    spec_weak = SensorSpec("B", 1.0, 0.70, 0.30, resolution=5.0,
                           time_to_live=1e9)
    resolver = ConflictResolver()

    def resolve(moving_weak: bool) -> int:
        readings = [
            NormalizedReading("S-strong", "tom", Rect(0, 0, 30, 30),
                              0.0, spec_strong, moving=False),
            NormalizedReading("S-weak", "tom", Rect(200, 0, 230, 30),
                              0.0, spec_weak, moving=moving_weak),
        ]
        return resolver.resolve([{0}, {1}], readings, 0.0, AREA_U)

    lines = ["Figure 4: disjoint-rectangle conflict resolution",
             f"stationary weak vs stationary strong -> winner: "
             f"component {resolve(False)} (strong sensor, rule 2)",
             f"MOVING weak vs stationary strong -> winner: "
             f"component {resolve(True)} (moving rectangle, rule 1)"]
    assert resolve(False) == 0
    assert resolve(True) == 1
    write_result(results_dir, "fig4_conflict_resolution", lines)

    benchmark(lambda: resolve(True))


def test_eq5_sweep(benchmark, results_dir):
    """Equation 5 over the paper's sensor population."""
    lines = ["Eq. 5: single-sensor region probability, area sweep",
             f"{'sensor':>10} {'p':>6} {'q':>6} " +
             " ".join(f"{a:>9.0f}" for a in (4.0, 100.0, 900.0, 2400.0))]
    for name, p, q in (("Ubisense", 0.95, 0.05), ("RF", 0.75, 0.25),
                       ("Biometric", 0.99, 0.01), ("Card", 0.98, 0.02)):
        row = [f"{name:>10} {p:>6.2f} {q:>6.2f}"]
        for area in (4.0, 100.0, 900.0, 2400.0):
            row.append(f"{eq5_single_sensor(area, AREA_U, p, q):>9.4f}")
        lines.append(" ".join(row))
    write_result(results_dir, "eq5_sweep", lines)
    benchmark(lambda: eq5_single_sensor(900.0, AREA_U, 0.95, 0.05))
