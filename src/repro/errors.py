"""Exception hierarchy for the MiddleWhere reproduction.

Every error raised by the library derives from :class:`MiddleWhereError`
so applications can catch library failures with a single ``except``.
"""

from __future__ import annotations


class MiddleWhereError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(MiddleWhereError):
    """Invalid geometry (degenerate rectangle, bad polygon, ...)."""


class GlobError(MiddleWhereError):
    """A GLOB string could not be parsed or resolved."""


class CoordinateFrameError(MiddleWhereError):
    """Unknown coordinate frame, or no transform between two frames."""


class WorldModelError(MiddleWhereError):
    """Inconsistent world model (duplicate ids, unknown parents, ...)."""


class SchemaError(MiddleWhereError):
    """A row does not match its table schema."""


class QueryError(MiddleWhereError):
    """Malformed or unanswerable spatial-database query."""


class SensorError(MiddleWhereError):
    """Invalid sensor specification or reading."""


class CalibrationError(SensorError):
    """A sensor adapter could not be calibrated into the common model."""


class FusionError(MiddleWhereError):
    """The fusion engine was given inconsistent inputs."""


class ConflictError(FusionError):
    """Conflicting sensor readings could not be resolved."""


class ServiceError(MiddleWhereError):
    """Location Service failure (unknown object, bad subscription, ...)."""


class UnknownObjectError(ServiceError):
    """Queried a mobile object the service has never seen."""


class PrivacyError(ServiceError):
    """A query was refused because of a privacy policy."""


class FaultInjectionError(MiddleWhereError):
    """Misconfigured fault plan or injector."""


class InvariantViolation(MiddleWhereError):
    """A chaos-run invariant did not hold (see docs/FAULTS.md)."""


class StorageError(MiddleWhereError):
    """Durable-storage failure (WAL, snapshot or recovery)."""


class WalCorruptionError(StorageError):
    """A WAL record failed its checksum away from the torn tail."""


class SimulatedCrash(StorageError):
    """A fault-plan kill point fired inside the durability layer.

    Raised by :class:`repro.faults.WalCrashInjector` to simulate a
    process kill mid-append / mid-fsync / mid-snapshot / mid-compaction;
    everything the layer had durably written before the crash must be
    recoverable, and nothing after it may have been applied.
    """


class OrbError(MiddleWhereError):
    """Object-request-broker failure."""


class TransportError(OrbError):
    """The underlying transport failed (connection refused, closed, ...)."""


class NamingError(OrbError):
    """Name not found in, or duplicated within, the naming service."""


class RemoteInvocationError(OrbError):
    """The remote servant raised; carries the remote error message."""

    def __init__(self, remote_type: str, remote_message: str) -> None:
        super().__init__(f"{remote_type}: {remote_message}")
        self.remote_type = remote_type
        self.remote_message = remote_message


class PipelineError(MiddleWhereError):
    """Streaming ingestion pipeline failure (misuse, shutdown races)."""


class IntakeOverflowError(PipelineError):
    """A bounded intake queue refused a reading (``reject`` policy)."""


class ReasoningError(MiddleWhereError):
    """Logic-engine failure (bad rule, unbound variable, ...)."""


class SimulationError(MiddleWhereError):
    """Simulation misconfiguration (unreachable rooms, bad deployment)."""
