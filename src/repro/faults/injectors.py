"""The injector catalogue: seeded, scoped, countable faults.

Each injector models one failure mode of a real location deployment
(paper Sections 3.2 and 4.1: lossy sensing technologies, stale
readings, conflicting and duplicated reports, flaky networks).  An
injector

* is *seeded* — probabilistic decisions come from a private
  ``random.Random`` forked from the owning :class:`~repro.faults.plan.
  FaultPlan`'s root RNG, never from wall-clock entropy, so a plan
  replays bit-for-bit;
* is *scoped* — a :class:`Scope` restricts it to sensor ids, object
  ids and/or a virtual-time window;
* *counts* every hit, and the counters surface in the plan's
  :class:`~repro.faults.plan.FaultReport`.

Sink injectors transform the reading stream between the adapters and
the ingestion pipeline; flush injectors fire inside pipeline workers
(decisions are stable hashes of the reading so worker interleaving
cannot change them); transport injectors gate ORB invocations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import random
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    FaultInjectionError,
    SensorError,
    SimulatedCrash,
    TransportError,
)
from repro.pipeline.intake import PipelineReading

# Injector kinds: where in the sensing→fusion→notify path a fault bites.
KIND_SINK = "sink"            # adapter → pipeline submission boundary
KIND_FLUSH = "flush"          # pipeline worker → spatial database flush
KIND_TRANSPORT = "transport"  # ORB request/response boundary
KIND_WAL = "wal"              # durability layer (WAL/snapshot/compaction)


def stable_fraction(*parts: object) -> float:
    """A deterministic uniform [0, 1) value for a key.

    Worker-side decisions must not depend on thread interleaving, so
    they hash the reading (plus seed and attempt number) instead of
    drawing from a shared RNG whose draw order would race.
    """
    key = "|".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class Scope:
    """Restricts an injector to part of the reading stream.

    ``None`` means "everything" for that dimension; the window is a
    half-open virtual-time interval over ``detection_time``.
    """

    sensor_ids: Optional[frozenset] = None
    object_ids: Optional[frozenset] = None
    start: float = float("-inf")
    end: float = float("inf")

    @classmethod
    def build(cls, sensors: Optional[Sequence[str]] = None,
              objects: Optional[Sequence[str]] = None,
              window: Optional[Tuple[float, float]] = None) -> "Scope":
        start, end = window if window is not None else (float("-inf"),
                                                        float("inf"))
        if start > end:
            raise FaultInjectionError(
                f"scope window is inverted: ({start}, {end})")
        return cls(
            sensor_ids=frozenset(sensors) if sensors is not None else None,
            object_ids=frozenset(objects) if objects is not None else None,
            start=start, end=end)

    def matches(self, reading: PipelineReading) -> bool:
        if (self.sensor_ids is not None
                and reading.sensor_id not in self.sensor_ids):
            return False
        if (self.object_ids is not None
                and reading.object_id not in self.object_ids):
            return False
        return self.start <= reading.detection_time < self.end


def _reading_key(reading: PipelineReading) -> Tuple[str, str, float]:
    return (reading.sensor_id, reading.object_id, reading.detection_time)


class FaultInjector:
    """Base class: a named, scoped fault with thread-safe hit counters."""

    KIND = KIND_SINK

    def __init__(self, name: str, scope: Scope,
                 rng: Optional[random.Random] = None) -> None:
        if not name:
            raise FaultInjectionError("injector name must be non-empty")
        self.name = name
        self.scope = scope
        self.rng = rng
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        # Set by FaultPlan.add: records (injector, action, key) events.
        self._trace: Optional[Callable[[str, str, object], None]] = None

    def _hit(self, action: str, by: int = 1,
             key: object = None) -> None:
        with self._lock:
            self._counts[action] = self._counts.get(action, 0) + by
        if self._trace is not None:
            self._trace(self.name, action, key)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def fired(self) -> bool:
        with self._lock:
            return any(self._counts.values())


class SinkInjector(FaultInjector):
    """An injector transforming readings at the submission boundary."""

    KIND = KIND_SINK

    def transform(self, readings: List[PipelineReading],
                  now: float) -> List[PipelineReading]:
        raise NotImplementedError

    def release(self, now: float) -> List[PipelineReading]:
        """Readings whose hold expired at ``now`` (delay/reorder)."""
        return []

    def drain(self, now: float) -> List[PipelineReading]:
        """Every held reading, regardless of timers (pre-drain flush)."""
        return []


class DropInjector(SinkInjector):
    """Lose a reading outright with probability ``rate`` (sensor miss,
    radio shadowing, a packet that never arrives)."""

    def __init__(self, name: str, scope: Scope, rng: random.Random,
                 rate: float) -> None:
        super().__init__(name, scope, rng)
        self.rate = _check_rate(rate)

    def transform(self, readings, now):
        out = []
        for reading in readings:
            if self.scope.matches(reading) and self.rng.random() < self.rate:
                self._hit("dropped", key=_reading_key(reading))
            else:
                out.append(reading)
        return out


class DuplicateInjector(SinkInjector):
    """Deliver a reading ``copies`` extra times (at-least-once feeds,
    badge retransmits)."""

    def __init__(self, name: str, scope: Scope, rng: random.Random,
                 rate: float, copies: int = 1) -> None:
        super().__init__(name, scope, rng)
        self.rate = _check_rate(rate)
        if copies < 1:
            raise FaultInjectionError("duplicate copies must be >= 1")
        self.copies = copies

    def transform(self, readings, now):
        out = []
        for reading in readings:
            out.append(reading)
            if self.scope.matches(reading) and self.rng.random() < self.rate:
                out.extend([reading] * self.copies)
                self._hit("duplicated", by=self.copies,
                          key=_reading_key(reading))
        return out


class DelayInjector(SinkInjector):
    """Hold a reading for ``delay`` seconds of virtual time before it
    reaches the pipeline (congested uplink, batched gateway)."""

    def __init__(self, name: str, scope: Scope, rng: random.Random,
                 rate: float, delay: float) -> None:
        super().__init__(name, scope, rng)
        self.rate = _check_rate(rate)
        if delay < 0.0:
            raise FaultInjectionError("delay must be >= 0")
        self.delay = delay
        self._held: List[Tuple[float, int, PipelineReading]] = []
        self._seq = 0

    def transform(self, readings, now):
        out = []
        for reading in readings:
            if self.scope.matches(reading) and self.rng.random() < self.rate:
                self._hit("delayed", key=_reading_key(reading))
                heapq.heappush(self._held,
                               (now + self.delay, self._seq, reading))
                self._seq += 1
            else:
                out.append(reading)
        return out

    def release(self, now):
        due = []
        while self._held and self._held[0][0] <= now:
            due.append(heapq.heappop(self._held)[2])
        return due

    def drain(self, now):
        out = [entry[2] for entry in sorted(self._held)]
        self._held = []
        return out


class ReorderInjector(SinkInjector):
    """Buffer ``window`` scoped readings, then emit them in a seeded
    permutation (multi-path delivery, per-sensor queues racing)."""

    def __init__(self, name: str, scope: Scope, rng: random.Random,
                 window: int) -> None:
        super().__init__(name, scope, rng)
        if window < 2:
            raise FaultInjectionError("reorder window must be >= 2")
        self.window = window
        self._buffer: List[PipelineReading] = []

    def _permuted(self) -> List[PipelineReading]:
        order = self.rng.sample(range(len(self._buffer)),
                                len(self._buffer))
        out = [self._buffer[i] for i in order]
        self._hit("reordered", by=len(out))
        self._buffer = []
        return out

    def transform(self, readings, now):
        out = []
        for reading in readings:
            if not self.scope.matches(reading):
                out.append(reading)
                continue
            self._buffer.append(reading)
            if len(self._buffer) >= self.window:
                out.extend(self._permuted())
        return out

    def drain(self, now):
        if not self._buffer:
            return []
        if len(self._buffer) == 1:
            out, self._buffer = self._buffer, []
            return out
        return self._permuted()


class CorruptInjector(SinkInjector):
    """Shift a reading's coordinates by a seeded offset within
    ``max_offset`` (multipath error, a miscalibrated frame).  The rect
    stays well-formed, so the fault reaches fusion instead of being
    rejected by validation."""

    def __init__(self, name: str, scope: Scope, rng: random.Random,
                 rate: float, max_offset: float) -> None:
        super().__init__(name, scope, rng)
        self.rate = _check_rate(rate)
        if max_offset <= 0.0:
            raise FaultInjectionError("corruption offset must be positive")
        self.max_offset = max_offset

    def transform(self, readings, now):
        out = []
        for reading in readings:
            if self.scope.matches(reading) and self.rng.random() < self.rate:
                dx = self.rng.uniform(-self.max_offset, self.max_offset)
                dy = self.rng.uniform(-self.max_offset, self.max_offset)
                location = reading.location
                if location is not None:
                    location = dataclasses.replace(
                        location, x=location.x + dx, y=location.y + dy)
                out.append(dataclasses.replace(
                    reading, rect=reading.rect.translated(dx, dy),
                    location=location))
                self._hit("corrupted", key=_reading_key(reading))
            else:
                out.append(reading)
        return out


class FlappingInjector(SinkInjector):
    """A sensor cycling up/down on a duty cycle: readings emitted while
    the sensor is "down" are suppressed (crashing adapter daemon,
    brown-out, cable intermittently unplugged).  The phase is virtual
    ``detection_time``, so the schedule is deterministic."""

    def __init__(self, name: str, scope: Scope, rng: random.Random,
                 up: float, down: float, phase: float = 0.0) -> None:
        super().__init__(name, scope, rng)
        if up <= 0.0 or down <= 0.0:
            raise FaultInjectionError("duty-cycle spans must be positive")
        self.up = up
        self.down = down
        self.phase = phase

    def is_down(self, t: float) -> bool:
        return ((t + self.phase) % (self.up + self.down)) >= self.up

    def transform(self, readings, now):
        out = []
        for reading in readings:
            if (self.scope.matches(reading)
                    and self.is_down(reading.detection_time)):
                self._hit("suppressed", key=_reading_key(reading))
            else:
                out.append(reading)
        return out


class ClockSkewInjector(SinkInjector):
    """Shift adapter timestamps by ``skew`` seconds relative to the
    service's clock (unsynchronised sensor host).  Forward skew makes
    readings invisible until the service clock catches up; backward
    skew ages them toward their TTL."""

    def __init__(self, name: str, scope: Scope, rng: random.Random,
                 skew: float) -> None:
        super().__init__(name, scope, rng)
        if skew == 0.0:
            raise FaultInjectionError("a zero skew injects nothing")
        self.skew = skew

    def transform(self, readings, now):
        out = []
        for reading in readings:
            if self.scope.matches(reading):
                skewed = max(0.0, reading.detection_time + self.skew)
                out.append(dataclasses.replace(reading,
                                               detection_time=skewed))
                self._hit("skewed", key=_reading_key(reading))
            else:
                out.append(reading)
        return out


class FlushFaultInjector(FaultInjector):
    """Raise a *transient* :class:`~repro.errors.SensorError` from the
    pipeline worker's database flush (a metadata race, a wedged shard).

    The decision is a stable hash of (seed, reading, attempt), so the
    failure pattern is identical no matter which worker thread flushes
    the reading or in what order: attempt 1 may fail while attempt 2
    succeeds, exercising the retry path deterministically; a reading
    whose every attempt hashes under ``rate`` exhausts its retries and
    is dead-lettered — accounting must still reconcile.
    """

    KIND = KIND_FLUSH

    def __init__(self, name: str, scope: Scope, seed: int,
                 rate: float) -> None:
        super().__init__(name, scope, rng=None)
        self.seed = seed
        self.rate = _check_rate(rate)

    def __call__(self, reading: PipelineReading, attempt: int) -> None:
        if not self.scope.matches(reading):
            return
        fraction = stable_fraction(self.seed, self.name,
                                   reading.sensor_id, reading.object_id,
                                   repr(reading.detection_time), attempt)
        if fraction < self.rate:
            self._hit("flush_fault", key=(_reading_key(reading), attempt))
            raise SensorError(
                f"injected flush fault ({self.name}, attempt {attempt})")


class WalCrashInjector(FaultInjector):
    """A process kill at a seeded point inside the durability layer.

    Installed as the WAL/manager fault hook (see
    ``DurabilityManager.attach_fault_plan``), which calls
    :meth:`check` at every kill point with the current sequence
    number.  The injector fires :class:`~repro.errors.SimulatedCrash`
    the first time its configured point is reached:

    * ``"append"``    — mid-append: a torn partial record is left on
      disk, the operation was never applied;
    * ``"fsync"``     — between the write and the group-commit ack: the
      record is durable but the caller never learned it (recovery may
      therefore hold *more* than the dead process's memory);
    * ``"snapshot"``  — mid-snapshot: a torn snapshot document is left
      for recovery to skip;
    * ``"compact"``   — between the compaction snapshot and the WAL
      truncation: replay must skip already-snapshotted records by seq.

    After firing, every further check raises again and counts
    ``lost`` — the process is dead, so all subsequent durable
    operations fail identically regardless of worker interleaving,
    which keeps the :class:`~repro.faults.plan.FaultReport` counters
    byte-identical across same-seed runs.
    """

    KIND = KIND_WAL

    POINTS = ("append", "fsync", "snapshot", "compact")

    def __init__(self, name: str, scope: Scope, point: str,
                 at_seq: Optional[int] = None,
                 occurrence: int = 1) -> None:
        super().__init__(name, scope, rng=None)
        if point not in self.POINTS:
            raise FaultInjectionError(
                f"unknown WAL kill point {point!r}; "
                f"expected one of {self.POINTS}")
        if at_seq is not None and at_seq < 1:
            raise FaultInjectionError("at_seq must be >= 1")
        if occurrence < 1:
            raise FaultInjectionError("occurrence must be >= 1")
        self.point = point
        self.at_seq = at_seq
        self.occurrence = occurrence
        self._seen = 0
        self._crashed = False
        self._state_lock = threading.Lock()

    def check(self, point: str, seq: int) -> None:
        with self._state_lock:
            if self._crashed:
                action = "lost"
            else:
                if point != self.point:
                    return
                if self.at_seq is not None and seq < self.at_seq:
                    return
                self._seen += 1
                if self._seen < self.occurrence:
                    return
                self._crashed = True
                action = "crash"
        self._hit(action, key=(point, seq))
        raise SimulatedCrash(
            f"injected kill at {point} seq {seq} ({self.name})")

    @property
    def crashed(self) -> bool:
        with self._state_lock:
            return self._crashed


class PartitionInjector(FaultInjector):
    """Network partition windows over the ORB: while the plan clock is
    inside any ``(start, end)`` window, every invocation raises
    :class:`~repro.errors.TransportError`; outside, traffic flows again
    (the reconnect)."""

    KIND = KIND_TRANSPORT

    def __init__(self, name: str, scope: Scope,
                 windows: Sequence[Tuple[float, float]]) -> None:
        super().__init__(name, scope, rng=None)
        checked = []
        for start, end in windows:
            if start >= end:
                raise FaultInjectionError(
                    f"partition window is inverted: ({start}, {end})")
            checked.append((float(start), float(end)))
        if not checked:
            raise FaultInjectionError("partition needs at least one window")
        self.windows = tuple(sorted(checked))

    def blocks(self, now: float) -> bool:
        return any(start <= now < end for start, end in self.windows)

    def check(self, now: float) -> None:
        self._hit("invocations")
        if self.blocks(now):
            self._hit("blocked", key=now)
            raise TransportError(
                f"injected partition ({self.name}) at t={now:.3f}")


def _check_rate(rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise FaultInjectionError(f"rate must be in [0, 1]: {rate}")
    return float(rate)
