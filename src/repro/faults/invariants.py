"""Invariants that must survive any fault plan.

MiddleWhere's promise is that unreliable sensing stays masked behind
the middleware: faults may *degrade* answers (wider rectangles, lower
confidence, "unknown object") but must never produce *wrong-shaped*
ones.  The chaos suite asserts, after every run:

1. **Exact accounting** — every reading the pipeline accepted reached
   exactly one terminal state: ``enqueued == fused + dropped +
   dead_lettered`` (and nothing was fused twice).
2. **Unique readings** — reading ids in the spatial database are
   unique, and (when all traffic flowed through the pipeline) the
   table holds exactly ``fused − purged`` rows.
3. **Freshness** — no location estimate cites an expired or
   future-dated source: every source sensor must still have a fresh
   reading for the object at query time.
4. **Probability sanity** — support confidence and the Equation-(7)
   posterior stay within [0, 1].

Checks return violation strings (empty list = healthy) so tests can
show every failure at once; :func:`assert_invariants` raises
:class:`~repro.errors.InvariantViolation` with the joined report.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import InvariantViolation, UnknownObjectError


def pipeline_accounting(stats) -> List[str]:
    """Invariant 1: the pipeline's terminal states reconcile exactly."""
    out = []
    if not stats.reconciles():
        out.append(
            f"accounting broken: enqueued={stats.enqueued} != "
            f"fused={stats.fused} + dropped={stats.dropped} + "
            f"dead_lettered={stats.dead_lettered}")
    for counter in ("enqueued", "fused", "dropped", "dead_lettered",
                    "rejected"):
        value = getattr(stats, counter)
        if value < 0:
            out.append(f"negative counter {counter}={value}")
    return out


def unique_reading_ids(db) -> List[str]:
    """Invariant 2a: no reading is stored (fused) twice."""
    rows = db.sensor_readings.select()
    ids = [row["reading_id"] for row in rows]
    if len(ids) != len(set(ids)):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        return [f"duplicate reading ids in the database: {dupes[:10]}"]
    return []


def fused_matches_database(db, stats, purged: int = 0) -> List[str]:
    """Invariant 2b: with all traffic via the pipeline, the reading
    table holds exactly the fused readings minus explicit purges —
    nothing was double-flushed or silently lost."""
    rows = len(db.sensor_readings)
    if rows + purged != stats.fused:
        return [f"reading table has {rows} rows + {purged} purged but "
                f"the pipeline fused {stats.fused}"]
    return []


def estimates_well_formed(service, now: Optional[float] = None
                          ) -> List[str]:
    """Invariants 3 and 4 for every currently tracked object."""
    at = service.clock() if now is None else now
    out: List[str] = []
    for object_id in service.db.tracked_objects():
        try:
            estimate = service.locate(object_id, now=at)
        except UnknownObjectError:
            continue  # everything expired: a legitimate degraded answer
        if not 0.0 <= estimate.probability <= 1.0:
            out.append(f"{object_id}: probability {estimate.probability} "
                       f"outside [0, 1]")
        if not 0.0 <= estimate.posterior <= 1.0:
            out.append(f"{object_id}: posterior {estimate.posterior} "
                       f"outside [0, 1]")
        fresh = {row["sensor_id"]
                 for row in service.db.readings_for(object_id, at)}
        stale = [s for s in estimate.sources if s not in fresh]
        if stale:
            out.append(f"{object_id}: estimate cites expired/future "
                       f"sources {stale} at t={at:.3f}")
    return out


def check_all(service, stats=None, now: Optional[float] = None,
              purged: Optional[int] = None,
              pipeline_only: bool = False) -> List[str]:
    """Every applicable invariant; returns the combined violation list.

    Args:
        service: the LocationService under test.
        stats: a :class:`~repro.pipeline.stats.PipelineStats` snapshot
            (skips the accounting invariants when omitted).
        now: query time for freshness checks (service clock otherwise).
        purged: rows removed by explicit ``purge_expired`` calls.
        pipeline_only: assert the table row count against the fused
            counter — only valid when no adapter wrote synchronously.
    """
    out: List[str] = []
    if stats is not None:
        out.extend(pipeline_accounting(stats))
    out.extend(unique_reading_ids(service.db))
    if stats is not None and pipeline_only:
        out.extend(fused_matches_database(service.db, stats,
                                          purged or 0))
    out.extend(estimates_well_formed(service, now))
    return out


def assert_invariants(service, stats=None, now: Optional[float] = None,
                      purged: Optional[int] = None,
                      pipeline_only: bool = False) -> None:
    """Raise :class:`InvariantViolation` when any invariant fails."""
    failures = check_all(service, stats=stats, now=now, purged=purged,
                         pipeline_only=pipeline_only)
    if failures:
        raise InvariantViolation(
            "chaos invariants violated:\n  " + "\n  ".join(failures))
