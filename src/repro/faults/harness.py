"""The chaos harness: scenario + fault plan + invariant sweep in a box.

``run_chaos`` drives a full simulated deployment (the paper's standard
four-technology floor) through the ingestion pipeline under a fault
plan, force-flushes held readings, drains, snapshots stats, renders
every final location estimate into a canonical text form, and runs the
invariant checker.  Tests assert on the returned
:class:`ChaosOutcome`; running the same seed twice must produce
byte-identical ``report_text`` and ``estimates_text``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import FaultInjectionError, UnknownObjectError
from repro.faults.invariants import check_all
from repro.faults.plan import FaultPlan, FaultReport

LEVELS = ("mild", "moderate", "severe")


def standard_plan(seed: int, clock, level: str = "severe") -> FaultPlan:
    """An escalating preset: each level adds failure modes.

    * ``mild`` — lossy sensing: drops and duplicate deliveries.
    * ``moderate`` — plus delivery delay, a flapping RF station and a
      skewed Ubisense host clock.
    * ``severe`` — plus reordering, coordinate corruption, a windowed
      drop burst and worker-side flush faults.
    """
    if level not in LEVELS:
        raise FaultInjectionError(
            f"unknown chaos level {level!r}; expected one of {LEVELS}")
    plan = FaultPlan(seed, clock=clock)
    plan.drop(0.05).duplicate(0.05)
    if level in ("moderate", "severe"):
        plan.delay(0.10, 2.0)
        plan.flapping(20.0, 10.0, sensors=["RF-12", "RF-13"])
        plan.clock_skew(-1.0, sensors=["Ubi-18"])
    if level == "severe":
        plan.reorder(4)
        plan.corrupt(0.08, 4.0)
        plan.drop(0.5, window=(10.0, 25.0), name="drop-burst")
        plan.flush_faults(0.08)
    return plan


@dataclass
class ChaosOutcome:
    """Everything a chaos test asserts on, in reproducible form."""

    seed: int
    level: str
    drained: bool
    report: FaultReport
    report_text: str
    estimates_text: str
    violations: List[str]
    stats: object  # PipelineStats snapshot

    @property
    def healthy(self) -> bool:
        return self.drained and not self.violations


def render_estimates(service, now: float) -> str:
    """Every tracked object's final estimate as canonical text.

    Uses ``repr`` for floats so two runs agree only when the numbers
    are bit-identical — the strongest cheap reproducibility oracle.
    """
    lines = []
    for object_id in service.db.tracked_objects():
        try:
            e = service.locate(object_id, now=now)
        except UnknownObjectError:
            lines.append(f"{object_id}: unknown")
            continue
        rect = (f"({e.rect.min_x!r}, {e.rect.min_y!r}, "
                f"{e.rect.max_x!r}, {e.rect.max_y!r})")
        lines.append(
            f"{object_id}: rect={rect} p={e.probability!r} "
            f"posterior={e.posterior!r} bucket={e.bucket.name} "
            f"sources={','.join(e.sources)} symbolic={e.symbolic} "
            f"moving={e.moving}")
    return "\n".join(lines)


def run_chaos(seed: int, level: str = "severe", people: int = 4,
              seconds: float = 60.0, dt: float = 1.0,
              plan: Optional[FaultPlan] = None,
              config=None) -> ChaosOutcome:
    """One full chaos run over the standard deployment.

    Args:
        seed: drives movement, sensing *and* the fault plan.
        level: escalation preset (ignored when ``plan`` is given).
        people: simulated population size.
        seconds / dt: virtual run length and tick.
        plan: a pre-built plan (must share the scenario's clock usage
            semantics — built with the returned scenario's clock).
        config: optional PipelineConfig override.
    """
    from repro.sim import Scenario

    scenario = Scenario(seed=seed).standard_deployment()
    scenario.add_people(people)
    if plan is None:
        plan = standard_plan(seed, scenario.clock, level)
    pipeline = scenario.use_pipeline(workers=2, config=config,
                                     fault_plan=plan)
    try:
        scenario.run(seconds, dt)  # each step pumps the plan
        plan.flush()
        drained = pipeline.drain(timeout=60.0)
        stats = pipeline.stats()
        now = scenario.now
        estimates_text = render_estimates(scenario.service, now)
        violations = check_all(scenario.service, stats=stats, now=now,
                               pipeline_only=True)
        if not drained:
            violations.append("pipeline failed to drain")
    finally:
        pipeline.stop()
    report = plan.report()
    return ChaosOutcome(
        seed=seed, level=level, drained=drained, report=report,
        report_text=report.as_text(), estimates_text=estimates_text,
        violations=violations, stats=stats)
