"""Composable, seeded fault plans and their reports.

A :class:`FaultPlan` is the chaos controller for one run: it owns the
root RNG (an explicit ``random.Random(seed)`` — wall-clock entropy is
banned so every run replays), composes injectors through a fluent
builder API, and wraps the three ingestion layers:

* :meth:`FaultPlan.wrap_sink` — a :class:`FaultySink` between the
  location adapters and any :class:`~repro.sensors.base.ReadingSink`
  (canonically the :class:`~repro.pipeline.LocationPipeline`);
* :meth:`FaultPlan.attach_pipeline` — installs the plan's flush
  injectors as the pipeline's worker-side ``flush_fault`` hook;
* :meth:`FaultPlan.wrap_transport` — a :class:`FaultyTransport` around
  any ORB transport's ``invoke``.

Determinism contract: with the producer side single-threaded (the
simulation step loop), the same seed and injector stack yield the same
injection *trace*, the same :class:`FaultReport`, and — because fusion
is a pure function of the surviving readings — the same final location
estimates.  Worker-side flush faults stay deterministic under thread
interleaving because their decisions are stable hashes, not shared-RNG
draws.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError
from repro.faults.injectors import (
    KIND_FLUSH,
    KIND_SINK,
    KIND_TRANSPORT,
    KIND_WAL,
    ClockSkewInjector,
    CorruptInjector,
    DelayInjector,
    DropInjector,
    DuplicateInjector,
    FaultInjector,
    FlappingInjector,
    FlushFaultInjector,
    PartitionInjector,
    ReorderInjector,
    Scope,
    WalCrashInjector,
)
from repro.pipeline.intake import PipelineReading
from repro.sensors.base import ReadingSink

Clock = Callable[[], float]

TraceEvent = Tuple[str, str, object]  # (injector name, action, key)


@dataclass(frozen=True)
class FaultReport:
    """Frozen summary of a plan's injections.

    ``counters`` maps injector name → action → hit count.  Two runs of
    the same plan (same seed, same traffic) must produce byte-identical
    :meth:`as_text` output — the chaos suite's reproducibility oracle.
    """

    seed: int
    counters: Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...]

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        return {name: dict(actions) for name, actions in self.counters}

    def as_text(self) -> str:
        lines = [f"seed={self.seed}"]
        for name, actions in self.counters:
            pairs = " ".join(f"{action}={count}"
                             for action, count in actions)
            lines.append(f"{name}: {pairs if pairs else '-'}")
        return "\n".join(lines)

    def total(self) -> int:
        return sum(count for _, actions in self.counters
                   for _, count in actions)

    def injectors_fired(self) -> Tuple[str, ...]:
        return tuple(name for name, actions in self.counters
                     if any(count for _, count in actions))


class FaultySink(ReadingSink):
    """A fault-injecting decorator around any reading sink.

    Thread-safe: the injector chain runs under one lock so concurrent
    producers (the spatial-database chaos tests) cannot corrupt
    injector buffers; the inner ``submit`` happens outside the lock so
    a blocking intake cannot deadlock the plan.
    """

    def __init__(self, plan: "FaultPlan", inner: ReadingSink) -> None:
        self.plan = plan
        self.inner = inner
        self._lock = threading.Lock()

    def submit(self, reading: PipelineReading) -> bool:
        with self._lock:
            readings = [reading]
            for injector in self.plan.sink_injectors():
                readings = injector.transform(readings, self.plan.now())
        ok = True
        for survivor in readings:
            ok = self.inner.submit(survivor) and ok
        return ok

    def pump(self, now: float) -> int:
        """Forward every held reading whose timer expired; returns count.

        Released readings bypass the rest of the chain — a delayed
        reading has already taken its faults.
        """
        with self._lock:
            due = [r for injector in self.plan.sink_injectors()
                   for r in injector.release(now)]
        for reading in due:
            self.inner.submit(reading)
        return len(due)

    def flush(self, now: float) -> int:
        """Force-release every held reading (call before a drain)."""
        with self._lock:
            held = [r for injector in self.plan.sink_injectors()
                    for r in injector.drain(now)]
        for reading in held:
            self.inner.submit(reading)
        return len(held)


class FaultyTransport:
    """A partition-aware decorator around any ORB transport."""

    def __init__(self, plan: "FaultPlan", inner: Any) -> None:
        self.plan = plan
        self.inner = inner

    def invoke(self, request: Dict[str, Any]) -> Dict[str, Any]:
        now = self.plan.now()
        for injector in self.plan.transport_injectors():
            injector.check(now)
        return self.inner.invoke(request)

    def close(self) -> None:
        self.inner.close()


class FaultPlan:
    """A seeded stack of fault injectors plus the wrap/report machinery.

    Args:
        seed: explicit reproducibility seed.  The root RNG is
            ``random.Random(seed)``; each probabilistic injector forks
            its own child RNG at build time so injectors do not perturb
            each other's draw sequences.
        clock: virtual-time source (a :class:`~repro.sim.SimClock`)
            used for delay release and partition windows; defaults to
            a constant 0.0 so purely rate-based plans need no clock.
    """

    def __init__(self, seed: int, clock: Optional[Clock] = None) -> None:
        if not isinstance(seed, int):
            raise FaultInjectionError(
                f"fault plans take an explicit integer seed, got "
                f"{type(seed).__name__}")
        self.seed = seed
        self.rng = random.Random(seed)
        self.clock = clock
        self._injectors: List[FaultInjector] = []
        self._names: set = set()
        self._sinks: List[FaultySink] = []
        self._trace: List[TraceEvent] = []
        self._trace_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def add(self, injector: FaultInjector) -> "FaultPlan":
        if injector.name in self._names:
            raise FaultInjectionError(
                f"injector {injector.name!r} already in the plan")
        self._names.add(injector.name)
        injector._trace = self._record
        self._injectors.append(injector)
        return self

    def _fork_rng(self) -> random.Random:
        return random.Random(self.rng.getrandbits(64))

    def _scope(self, sensors, objects, window) -> Scope:
        return Scope.build(sensors=sensors, objects=objects, window=window)

    def _auto_name(self, base: str, name: Optional[str]) -> str:
        if name is not None:
            return name
        suffix = sum(1 for i in self._injectors
                     if i.name.startswith(base))
        return base if suffix == 0 else f"{base}-{suffix + 1}"

    def drop(self, rate: float, *, sensors=None, objects=None, window=None,
             name: Optional[str] = None) -> "FaultPlan":
        return self.add(DropInjector(
            self._auto_name("drop", name),
            self._scope(sensors, objects, window), self._fork_rng(), rate))

    def duplicate(self, rate: float, copies: int = 1, *, sensors=None,
                  objects=None, window=None,
                  name: Optional[str] = None) -> "FaultPlan":
        return self.add(DuplicateInjector(
            self._auto_name("duplicate", name),
            self._scope(sensors, objects, window), self._fork_rng(),
            rate, copies))

    def delay(self, rate: float, delay: float, *, sensors=None,
              objects=None, window=None,
              name: Optional[str] = None) -> "FaultPlan":
        return self.add(DelayInjector(
            self._auto_name("delay", name),
            self._scope(sensors, objects, window), self._fork_rng(),
            rate, delay))

    def reorder(self, window_size: int, *, sensors=None, objects=None,
                window=None, name: Optional[str] = None) -> "FaultPlan":
        return self.add(ReorderInjector(
            self._auto_name("reorder", name),
            self._scope(sensors, objects, window), self._fork_rng(),
            window_size))

    def corrupt(self, rate: float, max_offset: float, *, sensors=None,
                objects=None, window=None,
                name: Optional[str] = None) -> "FaultPlan":
        return self.add(CorruptInjector(
            self._auto_name("corrupt", name),
            self._scope(sensors, objects, window), self._fork_rng(),
            rate, max_offset))

    def flapping(self, up: float, down: float, phase: float = 0.0, *,
                 sensors=None, objects=None, window=None,
                 name: Optional[str] = None) -> "FaultPlan":
        return self.add(FlappingInjector(
            self._auto_name("flapping", name),
            self._scope(sensors, objects, window), self._fork_rng(),
            up, down, phase))

    def clock_skew(self, skew: float, *, sensors=None, objects=None,
                   window=None, name: Optional[str] = None) -> "FaultPlan":
        return self.add(ClockSkewInjector(
            self._auto_name("clock-skew", name),
            self._scope(sensors, objects, window), self._fork_rng(), skew))

    def flush_faults(self, rate: float, *, sensors=None, objects=None,
                     window=None, name: Optional[str] = None) -> "FaultPlan":
        return self.add(FlushFaultInjector(
            self._auto_name("flush-fault", name),
            self._scope(sensors, objects, window),
            self.rng.getrandbits(32), rate))

    def partition(self, windows: Sequence[Tuple[float, float]], *,
                  name: Optional[str] = None) -> "FaultPlan":
        return self.add(PartitionInjector(
            self._auto_name("partition", name), Scope.build(), windows))

    def wal_crash(self, point: str = "append",
                  at_seq: Optional[int] = None, occurrence: int = 1, *,
                  name: Optional[str] = None) -> "FaultPlan":
        """Kill the process at a durability-layer point (see
        :class:`~repro.faults.injectors.WalCrashInjector`).  ``at_seq``
        arms append/fsync kills at a specific WAL sequence number;
        ``occurrence`` picks the nth snapshot/compaction instead."""
        return self.add(WalCrashInjector(
            self._auto_name("wal-crash", name), Scope.build(),
            point, at_seq, occurrence))

    # ------------------------------------------------------------------
    # Wrapping the three layers
    # ------------------------------------------------------------------

    def wrap_sink(self, inner: ReadingSink) -> FaultySink:
        sink = FaultySink(self, inner)
        self._sinks.append(sink)
        return sink

    def wrap_transport(self, transport: Any) -> FaultyTransport:
        return FaultyTransport(self, transport)

    def attach_pipeline(self, pipeline: Any) -> Any:
        """Install the plan's flush injectors into a LocationPipeline."""
        flush = self.flush_injectors()

        def hook(reading: PipelineReading, attempt: int) -> None:
            for injector in flush:
                injector(reading, attempt)

        pipeline.flush_fault = hook if flush else None
        return pipeline

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------

    def now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def pump(self, now: Optional[float] = None) -> int:
        """Release due delayed readings on every wrapped sink."""
        at = self.now() if now is None else now
        return sum(sink.pump(at) for sink in self._sinks)

    def flush(self, now: Optional[float] = None) -> int:
        """Force-release every held reading (call before draining)."""
        at = self.now() if now is None else now
        return sum(sink.flush(at) for sink in self._sinks)

    def _record(self, injector: str, action: str, key: object) -> None:
        with self._trace_lock:
            self._trace.append((injector, action, key))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def injectors(self) -> List[FaultInjector]:
        return list(self._injectors)

    def sink_injectors(self) -> List[FaultInjector]:
        return [i for i in self._injectors if i.KIND == KIND_SINK]

    def flush_injectors(self) -> List[FaultInjector]:
        return [i for i in self._injectors if i.KIND == KIND_FLUSH]

    def transport_injectors(self) -> List[FaultInjector]:
        return [i for i in self._injectors if i.KIND == KIND_TRANSPORT]

    def wal_injectors(self) -> List[FaultInjector]:
        return [i for i in self._injectors if i.KIND == KIND_WAL]

    @property
    def trace(self) -> List[TraceEvent]:
        """Injection events in decision order (deterministic whenever
        the producer side is single-threaded)."""
        with self._trace_lock:
            return list(self._trace)

    def report(self) -> FaultReport:
        counters = tuple(
            (injector.name,
             tuple(sorted(injector.counts().items())))
            for injector in sorted(self._injectors, key=lambda i: i.name))
        return FaultReport(seed=self.seed, counters=counters)
