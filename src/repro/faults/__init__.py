"""Deterministic fault injection for the sensing→fusion→notify path.

The paper's thesis is that middleware masks unreliable location
technologies (Sections 3.2, 4.1); this package provides the systematic
robustness evidence: seeded, composable fault plans that wrap the
sensor-adapter sink hook, the pipeline worker flush and the ORB
transport, plus the invariants that must hold under any of them and a
chaos harness for randomized multi-object scenarios.  See
``docs/FAULTS.md`` for the injector catalogue and seeding rules.
"""

from repro.faults.harness import (
    LEVELS,
    ChaosOutcome,
    render_estimates,
    run_chaos,
    standard_plan,
)
from repro.faults.injectors import (
    ClockSkewInjector,
    CorruptInjector,
    DelayInjector,
    DropInjector,
    DuplicateInjector,
    FaultInjector,
    FlappingInjector,
    FlushFaultInjector,
    PartitionInjector,
    ReorderInjector,
    Scope,
    WalCrashInjector,
    stable_fraction,
)
from repro.faults.invariants import (
    assert_invariants,
    check_all,
    estimates_well_formed,
    fused_matches_database,
    pipeline_accounting,
    unique_reading_ids,
)
from repro.faults.plan import (
    FaultPlan,
    FaultReport,
    FaultySink,
    FaultyTransport,
)

__all__ = [
    "LEVELS",
    "ChaosOutcome",
    "ClockSkewInjector",
    "CorruptInjector",
    "DelayInjector",
    "DropInjector",
    "DuplicateInjector",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultySink",
    "FaultyTransport",
    "FlappingInjector",
    "FlushFaultInjector",
    "PartitionInjector",
    "ReorderInjector",
    "Scope",
    "WalCrashInjector",
    "assert_invariants",
    "check_all",
    "estimates_well_formed",
    "fused_matches_database",
    "pipeline_accounting",
    "render_estimates",
    "run_chaos",
    "stable_fraction",
    "standard_plan",
    "unique_reading_ids",
]
