"""Location history: trajectories, interpolation, speed.

The paper's conflict rule 1 already needs the notion of a rectangle
"moving with time"; a production deployment needs the rest of the
temporal story too: where was this person five minutes ago, how fast
are they moving (walking vs stationary vs forgotten badge), and what
path did they take.  :class:`LocationHistory` keeps a bounded ring of
estimates per object and answers those queries.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.core.estimate import LocationEstimate
from repro.errors import ServiceError
from repro.geometry import Point


class LocationHistory:
    """A bounded per-object ring of location estimates.

    Args:
        max_samples_per_object: ring capacity; oldest samples fall off.
        min_interval: estimates closer together than this (seconds)
            replace the previous sample instead of appending, so a
            busy poller does not flush the ring.
    """

    def __init__(self, max_samples_per_object: int = 1024,
                 min_interval: float = 0.5) -> None:
        if max_samples_per_object < 2:
            raise ServiceError("history needs at least two samples")
        self._capacity = max_samples_per_object
        self._min_interval = min_interval
        self._rings: Dict[str, Deque[LocationEstimate]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, estimate: LocationEstimate) -> None:
        """Add an estimate (keeps rings time-ordered)."""
        ring = self._rings.setdefault(
            estimate.object_id, deque(maxlen=self._capacity))
        if ring and estimate.time < ring[-1].time:
            return  # out-of-order stragglers are dropped
        if ring and estimate.time - ring[-1].time < self._min_interval:
            ring[-1] = estimate
            return
        ring.append(estimate)

    def forget(self, object_id: str) -> bool:
        """Drop an object's history (privacy erasure)."""
        return self._rings.pop(object_id, None) is not None

    def tracked_objects(self) -> List[str]:
        return sorted(self._rings)

    def sample_count(self, object_id: str) -> int:
        ring = self._rings.get(object_id)
        return len(ring) if ring else 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _ring(self, object_id: str) -> Deque[LocationEstimate]:
        ring = self._rings.get(object_id)
        if not ring:
            raise ServiceError(f"no history for {object_id!r}")
        return ring

    def last(self, object_id: str) -> LocationEstimate:
        """The most recent estimate."""
        return self._ring(object_id)[-1]

    def trajectory(self, object_id: str, t0: Optional[float] = None,
                   t1: Optional[float] = None) -> List[LocationEstimate]:
        """Estimates in [t0, t1], oldest first."""
        ring = self._ring(object_id)
        return [e for e in ring
                if (t0 is None or e.time >= t0)
                and (t1 is None or e.time <= t1)]

    def at(self, object_id: str, timestamp: float) -> LocationEstimate:
        """The estimate nearest in time to ``timestamp``."""
        ring = self._ring(object_id)
        return min(ring, key=lambda e: abs(e.time - timestamp))

    def position_at(self, object_id: str, timestamp: float) -> Point:
        """Linearly interpolated position at ``timestamp``.

        Clamped to the first/last sample outside the recorded span.
        """
        ring = self._ring(object_id)
        if timestamp <= ring[0].time:
            return ring[0].center
        if timestamp >= ring[-1].time:
            return ring[-1].center
        samples = list(ring)
        for before, after in zip(samples, samples[1:]):
            if before.time <= timestamp <= after.time:
                span = after.time - before.time
                if span <= 0:
                    return after.center
                fraction = (timestamp - before.time) / span
                a, b = before.center, after.center
                return Point(a.x + (b.x - a.x) * fraction,
                             a.y + (b.y - a.y) * fraction,
                             a.z + (b.z - a.z) * fraction)
        return ring[-1].center  # unreachable given the scan above

    def speed(self, object_id: str, window: float = 10.0,
              now: Optional[float] = None) -> Optional[float]:
        """Mean speed (ft/s) over the trailing window.

        ``None`` when fewer than two samples fall in the window.
        Distinguishes a walking person from a badge on a desk — the
        signal behind conflict rule 1.
        """
        ring = self._ring(object_id)
        end = now if now is not None else ring[-1].time
        samples = [e for e in ring if end - window <= e.time <= end]
        if len(samples) < 2:
            return None
        distance = sum(a.center.distance_to(b.center)
                       for a, b in zip(samples, samples[1:]))
        elapsed = samples[-1].time - samples[0].time
        if elapsed <= 0:
            return None
        return distance / elapsed

    def distance_travelled(self, object_id: str,
                           t0: Optional[float] = None,
                           t1: Optional[float] = None) -> float:
        """Path length of the recorded trajectory in [t0, t1]."""
        samples = self.trajectory(object_id, t0, t1)
        return sum(a.center.distance_to(b.center)
                   for a, b in zip(samples, samples[1:]))

    def regions_visited(self, object_id: str,
                        t0: Optional[float] = None,
                        t1: Optional[float] = None) -> List[str]:
        """Distinct symbolic regions in visit order (deduplicated runs)."""
        out: List[str] = []
        for estimate in self.trajectory(object_id, t0, t1):
            if estimate.symbolic is None:
                continue
            if not out or out[-1] != estimate.symbolic:
                out.append(estimate.symbolic)
        return out

    def is_stationary(self, object_id: str, window: float = 30.0,
                      threshold_ft_s: float = 0.25,
                      now: Optional[float] = None) -> Optional[bool]:
        """Whether the object has effectively stopped moving."""
        value = self.speed(object_id, window, now)
        if value is None:
            return None
        return value < threshold_ft_s
