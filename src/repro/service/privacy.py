"""Privacy policies on location granularity (paper Section 4.5).

"The lattice representation also allows incorporating privacy
constraints that specify that a user's location can only be revealed
upto a certain granularity (like a room or a floor)."

A policy maps (object, requester) to the maximum GLOB depth that may
be revealed; depth 0 blocks the query entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import PrivacyError

# Convenient depth constants for building/floor/room deployments.
DEPTH_BLOCKED = 0
DEPTH_BUILDING = 1
DEPTH_FLOOR = 2
DEPTH_ROOM = 3
DEPTH_FULL = 99


@dataclass
class PrivacyPolicy:
    """Per-object granularity limits with per-requester overrides.

    ``default_depth`` applies when no specific rule matches.  Rules
    are keyed by (object_id, requester) with ``None`` as a wildcard
    requester.
    """

    default_depth: int = DEPTH_FULL
    _rules: Dict[Tuple[str, Optional[str]], int] = field(
        default_factory=dict)

    def restrict(self, object_id: str, depth: int,
                 requester: Optional[str] = None) -> None:
        """Limit how precisely ``object_id`` is revealed.

        With ``requester`` given the rule applies to that requester
        only; otherwise to everyone without a more specific rule.
        """
        if depth < DEPTH_BLOCKED:
            raise PrivacyError(f"invalid granularity depth {depth}")
        self._rules[(object_id, requester)] = depth

    def allow(self, object_id: str, requester: str,
              depth: int = DEPTH_FULL) -> None:
        """Grant a specific requester more precision than the default."""
        self.restrict(object_id, depth, requester)

    def depth_for(self, object_id: str,
                  requester: Optional[str] = None) -> int:
        """The granularity depth a requester may see for an object.

        Specific (object, requester) rules beat (object, *) rules beat
        the default.
        """
        if requester is not None:
            specific = self._rules.get((object_id, requester))
            if specific is not None:
                return specific
        wildcard = self._rules.get((object_id, None))
        if wildcard is not None:
            return wildcard
        return self.default_depth

    def check_allowed(self, object_id: str,
                      requester: Optional[str] = None) -> int:
        """The permitted depth, raising when the query is blocked."""
        depth = self.depth_for(object_id, requester)
        if depth <= DEPTH_BLOCKED:
            raise PrivacyError(
                f"location of {object_id!r} is not visible to "
                f"{requester or 'anonymous'}")
        return depth
