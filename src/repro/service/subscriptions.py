"""Region-based notifications (paper Sections 4.3 and 5.3).

"The other common kind of location-based interaction required by
applications is a notification when a person enters a certain region
of interest. ... Finally, if the probability that the person is
within a notification rectangle exceeds a certain threshold, the
application is notified."

Each subscription becomes one database trigger (the coarse geometric
filter of Section 5.3); when it fires, the Location Service refines
with fused confidence, edge-detects enter/leave, and pushes an event.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core import ProbabilityBucket
from repro.errors import ServiceError
from repro.geometry import Rect
from repro.spatialdb.rtree import RTree

Consumer = Callable[[Dict[str, Any]], None]

KIND_ENTER = "enter"
KIND_LEAVE = "leave"
KIND_BOTH = "both"

_VALID_KINDS = (KIND_ENTER, KIND_LEAVE, KIND_BOTH)


@dataclass
class ProximitySubscription:
    """Interest in two objects coming within (or leaving) a distance.

    Section 5.3: trigger conditions include a "mobile object at a
    certain distance from another object".  Edge-triggered like region
    subscriptions: one event when the pair closes inside ``threshold``
    feet, one when it opens again (per ``kind``).
    """

    subscription_id: str
    first: str
    second: str
    threshold_ft: float
    kind: str = KIND_ENTER
    min_confidence: float = 0.25
    consumer: Optional[Consumer] = None
    remote_reference: Optional[str] = None
    within: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ServiceError(f"invalid subscription kind {self.kind!r}")
        if self.threshold_ft <= 0.0:
            raise ServiceError(
                f"threshold must be positive, got {self.threshold_ft}")
        if self.first == self.second:
            raise ServiceError("proximity needs two distinct objects")
        if self.consumer is None and self.remote_reference is None:
            raise ServiceError(
                "subscription needs a consumer or a remote reference")

    def involves(self, object_id: str) -> bool:
        return object_id in (self.first, self.second)

    def wants(self, transition: str) -> bool:
        return self.kind == KIND_BOTH or self.kind == transition


@dataclass
class Subscription:
    """One application's interest in a region.

    Attributes:
        subscription_id: unique id, also used as the database trigger id.
        region: the notification rectangle (canonical frame).
        region_glob: optional symbolic name carried in events.
        kind: notify on "enter", "leave" or "both".
        object_id: restrict to one mobile object (``None`` = anyone).
        threshold: minimum fused confidence for "inside".
        bucket: alternative threshold as a Section 4.4 bucket; when
            set, the classifier grade must be >= this bucket.
        consumer: local callback receiving the event dict.
        remote_reference: alternatively, an ORB reference to a servant
            with ``notify(event)``.
        inside: per-object last known inside/outside state, for edge
            detection.
    """

    subscription_id: str
    region: Rect
    kind: str = KIND_ENTER
    region_glob: Optional[str] = None
    object_id: Optional[str] = None
    threshold: float = 0.5
    bucket: Optional[ProbabilityBucket] = None
    consumer: Optional[Consumer] = None
    remote_reference: Optional[str] = None
    inside: Dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ServiceError(f"invalid subscription kind {self.kind!r}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ServiceError(
                f"threshold {self.threshold} is not a probability")
        if self.consumer is None and self.remote_reference is None:
            raise ServiceError(
                "subscription needs a consumer or a remote reference")

    def wants(self, transition: str) -> bool:
        return self.kind == KIND_BOTH or self.kind == transition


def _passes_at_zero_confidence(subscription: Subscription) -> bool:
    """Whether the subscription's inside-test passes at confidence 0.

    ``classify(0.0)`` is always the LOW bucket (0 is <= every sensor
    p), so a bucket threshold of LOW — like a raw threshold of 0.0 —
    counts an object as inside even with no probability mass in the
    region.  Such subscriptions can never be pruned geometrically.
    """
    if subscription.bucket is not None:
        return ProbabilityBucket.LOW >= subscription.bucket
    return subscription.threshold <= 0.0


class SubscriptionManager:
    """Holds subscriptions and turns fused confidences into events.

    Matching is index-driven: a per-object hash index (wildcard
    subscriptions in the ``None`` bucket) replaces the full scan of
    :meth:`matching_reference`, and an R-tree over subscription regions
    plus an inside-state index lets :meth:`matching_for_result` hand
    the push path only the subscriptions whose outcome can differ from
    a no-op (region overlaps the fused support, currently inside, or
    passes at zero confidence).
    """

    def __init__(self) -> None:
        self._subscriptions: Dict[str, Subscription] = {}
        self._next_id = 1
        self._lock = threading.Lock()
        self.notifications_sent = 0
        # Registration order, for firing-order parity with the scan.
        self._seq: Dict[str, int] = {}
        self._seq_counter = itertools.count(1)
        # object_id (None = wildcard) -> subscription ids.
        self._by_object: Dict[Optional[str], Dict[str, None]] = {}
        self._region_rtree: RTree = RTree()
        # Subscriptions whose inside-test passes at zero confidence.
        self._always_ids: Dict[str, None] = {}
        # object_id -> subscription ids whose inside[object_id] is True.
        self._inside_ids: Dict[str, set] = {}
        self.dispatch_evaluated = 0
        self.dispatch_pruned = 0

    def new_id(self) -> str:
        with self._lock:
            allocated = self._next_id
            self._next_id += 1
        return f"sub-{allocated}"

    def ensure_id_floor(self, floor: int) -> None:
        """Advance the id allocator past externally restored ids.

        Crash recovery reinstates subscriptions under their original
        ids; the next :meth:`new_id` must not collide with them.
        """
        with self._lock:
            self._next_id = max(self._next_id, floor + 1)

    def add(self, subscription: Subscription) -> str:
        with self._lock:
            if subscription.subscription_id in self._subscriptions:
                raise ServiceError(
                    f"duplicate subscription {subscription.subscription_id}")
            sid = subscription.subscription_id
            self._subscriptions[sid] = subscription
            self._seq[sid] = next(self._seq_counter)
            self._by_object.setdefault(
                subscription.object_id, {})[sid] = None
            self._region_rtree.insert(subscription.region, sid)
            if _passes_at_zero_confidence(subscription):
                self._always_ids[sid] = None
            for object_id, inside in subscription.inside.items():
                if inside:
                    self._inside_ids.setdefault(object_id, set()).add(sid)
        return subscription.subscription_id

    def remove(self, subscription_id: str) -> bool:
        with self._lock:
            subscription = self._subscriptions.pop(subscription_id, None)
            if subscription is None:
                return False
            self._seq.pop(subscription_id, None)
            bucket = self._by_object.get(subscription.object_id)
            if bucket is not None:
                bucket.pop(subscription_id, None)
            self._region_rtree.delete(
                subscription.region, lambda value: value == subscription_id)
            self._always_ids.pop(subscription_id, None)
            for ids in self._inside_ids.values():
                ids.discard(subscription_id)
            return True

    def get(self, subscription_id: str) -> Subscription:
        with self._lock:
            subscription = self._subscriptions.get(subscription_id)
        if subscription is None:
            raise ServiceError(f"unknown subscription {subscription_id!r}")
        return subscription

    def all(self) -> List[Subscription]:
        with self._lock:
            return list(self._subscriptions.values())

    def count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def matching(self, object_id: str) -> List[Subscription]:
        """Subscriptions that could apply to readings of ``object_id``.

        Index-backed: the wildcard bucket plus the object's bucket,
        in registration order — exactly the filtered full scan of
        :meth:`matching_reference`.
        """
        with self._lock:
            ids = list(self._by_object.get(None, ()))
            ids.extend(self._by_object.get(object_id, ()))
            ids.sort(key=self._seq.__getitem__)
            return [self._subscriptions[sid] for sid in ids]

    def matching_count(self, object_id: str) -> int:
        """How many subscriptions :meth:`matching` would return (O(1))."""
        with self._lock:
            return (len(self._by_object.get(None, ()))
                    + len(self._by_object.get(object_id, ())))

    def matching_reference(self, object_id: str) -> List[Subscription]:
        """The pre-index full scan, kept for equivalence tests."""
        with self._lock:
            return [s for s in self._subscriptions.values()
                    if s.object_id is None or s.object_id == object_id]

    def matching_for_result(self, object_id: str,
                            support: Optional[Rect]) -> List[Subscription]:
        """The subscriptions worth evaluating against a fused result.

        ``support`` is the MBR of the fused readings' rectangles — the
        fused confidence of any region disjoint from it is exactly 0.
        A subscription is returned when it matches the object and (a)
        its region intersects the support, (b) its inside-state for the
        object is True (a leave may be pending), or (c) its threshold
        passes at zero confidence.  Everything pruned would have been a
        guaranteed no-op: confidence 0, inside stays effectively False,
        no transition.  ``support=None`` disables pruning.
        """
        if support is None:
            return self.matching(object_id)
        with self._lock:
            candidate_ids = set(self._always_ids)
            candidate_ids.update(self._region_rtree.search(support))
            candidate_ids.update(self._inside_ids.get(object_id, ()))
            ids = [sid for sid in candidate_ids
                   if sid in self._subscriptions
                   and (self._subscriptions[sid].object_id is None
                        or self._subscriptions[sid].object_id == object_id)]
            ids.sort(key=self._seq.__getitem__)
            total = (len(self._by_object.get(None, ()))
                     + len(self._by_object.get(object_id, ())))
            self.dispatch_evaluated += len(ids)
            self.dispatch_pruned += total - len(ids)
            return [self._subscriptions[sid] for sid in ids]

    def dispatch_stats(self) -> Dict[str, int]:
        """Push-path pruning counters (evaluated vs skipped)."""
        with self._lock:
            return {
                "evaluated": self.dispatch_evaluated,
                "pruned": self.dispatch_pruned,
            }

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, subscription: Subscription, object_id: str,
                 confidence: float, grade: ProbabilityBucket,
                 now: float, notify: Callable[[Subscription, Dict[str, Any]],
                                              None]) -> Optional[str]:
        """Update one subscription with a fresh confidence reading.

        Returns the transition notified ("enter"/"leave") or ``None``.
        The inside test honours whichever threshold style the
        subscription uses (raw confidence or bucket grade).

        The read-modify-write of ``subscription.inside`` happens under
        the manager lock so pipeline workers and the synchronous path
        cannot race on edge detection; ``notify`` runs outside the lock
        (consumers may re-enter the manager, e.g. to subscribe).
        """
        if subscription.bucket is not None:
            inside_now = grade >= subscription.bucket
        else:
            inside_now = confidence >= subscription.threshold
        with self._lock:
            was_inside = subscription.inside.get(object_id, False)
            subscription.inside[object_id] = inside_now
            sid = subscription.subscription_id
            if inside_now:
                self._inside_ids.setdefault(object_id, set()).add(sid)
            else:
                self._inside_ids.get(object_id, set()).discard(sid)
        transition: Optional[str] = None
        if inside_now and not was_inside:
            transition = KIND_ENTER
        elif was_inside and not inside_now:
            transition = KIND_LEAVE
        if transition is None or not subscription.wants(transition):
            return None
        event = {
            "subscription_id": subscription.subscription_id,
            "transition": transition,
            "object_id": object_id,
            "region": subscription.region,
            "region_glob": subscription.region_glob,
            "confidence": confidence,
            "grade": grade,
            "time": now,
        }
        notify(subscription, event)
        self.notifications_sent += 1
        return transition
