"""Region-based notifications (paper Sections 4.3 and 5.3).

"The other common kind of location-based interaction required by
applications is a notification when a person enters a certain region
of interest. ... Finally, if the probability that the person is
within a notification rectangle exceeds a certain threshold, the
application is notified."

Each subscription becomes one database trigger (the coarse geometric
filter of Section 5.3); when it fires, the Location Service refines
with fused confidence, edge-detects enter/leave, and pushes an event.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core import ProbabilityBucket
from repro.errors import ServiceError
from repro.geometry import Rect

Consumer = Callable[[Dict[str, Any]], None]

KIND_ENTER = "enter"
KIND_LEAVE = "leave"
KIND_BOTH = "both"

_VALID_KINDS = (KIND_ENTER, KIND_LEAVE, KIND_BOTH)


@dataclass
class ProximitySubscription:
    """Interest in two objects coming within (or leaving) a distance.

    Section 5.3: trigger conditions include a "mobile object at a
    certain distance from another object".  Edge-triggered like region
    subscriptions: one event when the pair closes inside ``threshold``
    feet, one when it opens again (per ``kind``).
    """

    subscription_id: str
    first: str
    second: str
    threshold_ft: float
    kind: str = KIND_ENTER
    min_confidence: float = 0.25
    consumer: Optional[Consumer] = None
    remote_reference: Optional[str] = None
    within: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ServiceError(f"invalid subscription kind {self.kind!r}")
        if self.threshold_ft <= 0.0:
            raise ServiceError(
                f"threshold must be positive, got {self.threshold_ft}")
        if self.first == self.second:
            raise ServiceError("proximity needs two distinct objects")
        if self.consumer is None and self.remote_reference is None:
            raise ServiceError(
                "subscription needs a consumer or a remote reference")

    def involves(self, object_id: str) -> bool:
        return object_id in (self.first, self.second)

    def wants(self, transition: str) -> bool:
        return self.kind == KIND_BOTH or self.kind == transition


@dataclass
class Subscription:
    """One application's interest in a region.

    Attributes:
        subscription_id: unique id, also used as the database trigger id.
        region: the notification rectangle (canonical frame).
        region_glob: optional symbolic name carried in events.
        kind: notify on "enter", "leave" or "both".
        object_id: restrict to one mobile object (``None`` = anyone).
        threshold: minimum fused confidence for "inside".
        bucket: alternative threshold as a Section 4.4 bucket; when
            set, the classifier grade must be >= this bucket.
        consumer: local callback receiving the event dict.
        remote_reference: alternatively, an ORB reference to a servant
            with ``notify(event)``.
        inside: per-object last known inside/outside state, for edge
            detection.
    """

    subscription_id: str
    region: Rect
    kind: str = KIND_ENTER
    region_glob: Optional[str] = None
    object_id: Optional[str] = None
    threshold: float = 0.5
    bucket: Optional[ProbabilityBucket] = None
    consumer: Optional[Consumer] = None
    remote_reference: Optional[str] = None
    inside: Dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ServiceError(f"invalid subscription kind {self.kind!r}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ServiceError(
                f"threshold {self.threshold} is not a probability")
        if self.consumer is None and self.remote_reference is None:
            raise ServiceError(
                "subscription needs a consumer or a remote reference")

    def wants(self, transition: str) -> bool:
        return self.kind == KIND_BOTH or self.kind == transition


class SubscriptionManager:
    """Holds subscriptions and turns fused confidences into events."""

    def __init__(self) -> None:
        self._subscriptions: Dict[str, Subscription] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self.notifications_sent = 0

    def new_id(self) -> str:
        return f"sub-{next(self._ids)}"

    def add(self, subscription: Subscription) -> str:
        with self._lock:
            if subscription.subscription_id in self._subscriptions:
                raise ServiceError(
                    f"duplicate subscription {subscription.subscription_id}")
            self._subscriptions[subscription.subscription_id] = subscription
        return subscription.subscription_id

    def remove(self, subscription_id: str) -> bool:
        with self._lock:
            return self._subscriptions.pop(subscription_id, None) is not None

    def get(self, subscription_id: str) -> Subscription:
        with self._lock:
            subscription = self._subscriptions.get(subscription_id)
        if subscription is None:
            raise ServiceError(f"unknown subscription {subscription_id!r}")
        return subscription

    def all(self) -> List[Subscription]:
        with self._lock:
            return list(self._subscriptions.values())

    def count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def matching(self, object_id: str) -> List[Subscription]:
        """Subscriptions that could apply to readings of ``object_id``."""
        with self._lock:
            return [s for s in self._subscriptions.values()
                    if s.object_id is None or s.object_id == object_id]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, subscription: Subscription, object_id: str,
                 confidence: float, grade: ProbabilityBucket,
                 now: float, notify: Callable[[Subscription, Dict[str, Any]],
                                              None]) -> Optional[str]:
        """Update one subscription with a fresh confidence reading.

        Returns the transition notified ("enter"/"leave") or ``None``.
        The inside test honours whichever threshold style the
        subscription uses (raw confidence or bucket grade).
        """
        if subscription.bucket is not None:
            inside_now = grade >= subscription.bucket
        else:
            inside_now = confidence >= subscription.threshold
        was_inside = subscription.inside.get(object_id, False)
        subscription.inside[object_id] = inside_now
        transition: Optional[str] = None
        if inside_now and not was_inside:
            transition = KIND_ENTER
        elif was_inside and not inside_now:
            transition = KIND_LEAVE
        if transition is None or not subscription.wants(transition):
            return None
        event = {
            "subscription_id": subscription.subscription_id,
            "transition": transition,
            "object_id": object_id,
            "region": subscription.region,
            "region_glob": subscription.region_glob,
            "confidence": confidence,
            "grade": grade,
            "time": now,
        }
        notify(subscription, event)
        self.notifications_sent += 1
        return transition
