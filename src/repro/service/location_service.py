"""The Location Service (paper Section 4).

"The Location Service is the source of location information for all
location-sensitive applications."  It fuses sensor data, answers
object-based and region-based queries (pull), accepts subscriptions
for location-based conditions (push), maintains the symbolic region
lattice, enforces privacy granularity, and computes spatial
relationships.
"""

from __future__ import annotations

import threading
import time as _time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core import (
    FusionEngine,
    FusionResult,
    LocationEstimate,
    NormalizedReading,
    ProbabilityBucket,
    ProbabilityClassifier,
    SensorSpec,
)
from repro.errors import ServiceError, UnknownObjectError
from repro.geometry import Point, Rect
from repro.model import Glob, WorldModel
from repro.orb import Orb
from repro.reasoning import (
    NavigationGraph,
    ProbabilisticRelation,
    SpatialRelations,
    build_knowledge_base,
)
from repro.reasoning.incremental import MODE_INCREMENTAL, LocationUpdate
from repro.service.history import LocationHistory
from repro.service.privacy import PrivacyPolicy
from repro.service.regions import SymbolicRegionLattice
from repro.service.semantic_subscriptions import (
    SemanticSubscription,
    SemanticSubscriptionManager,
)
from repro.service.subscriptions import (
    KIND_BOTH,
    KIND_ENTER,
    ProximitySubscription,
    Subscription,
    SubscriptionManager,
)
from repro.spatialdb import Row, SpatialDatabase

Clock = Callable[[], float]

# Freshness-bucket count for the content-addressed fusion key: a
# reading's age is quantized to ttl/8-wide buckets, so queries close
# enough in time that temporal degradation is indistinguishable share
# one fused result, while ages apart by more than a bucket fuse anew.
_FRESHNESS_BUCKETS = 8

# (object_id, fingerprint): see LocationService._fusion_fingerprint.
FusionKey = Tuple[str, Tuple[int, Tuple[Any, ...]]]


def _dropping_consumer(event: Dict[str, Any]) -> None:
    """Placeholder for restored subscriptions whose application callback
    died with the crashed process; events are dropped (edge-detection
    state still advances) until :meth:`LocationService.rebind_consumer`
    points the subscription at a live callback."""


class LocationService:
    """The consolidated location view for one deployment.

    Args:
        db: the spatial database (world model loaded, adapters feeding).
        engine: fusion engine override (mode, conflict rules).
        orb: broker used to push events to remote subscribers; local
            callbacks work without one.
        clock: time source (defaults to :func:`time.monotonic`); the
            simulator injects its virtual clock here.
        privacy: granularity policy (defaults to everything visible).
        history: when given, every successful :meth:`locate` is
            recorded into it (trajectories, speed — see
            :class:`repro.service.history.LocationHistory`).
        fusion_cache_capacity: entries kept in the shared fusion memo
            (trigger storms evaluate against one fused distribution).
    """

    def __init__(self, db: SpatialDatabase,
                 engine: Optional[FusionEngine] = None,
                 orb: Optional[Orb] = None,
                 clock: Optional[Clock] = None,
                 privacy: Optional[PrivacyPolicy] = None,
                 history: Optional["LocationHistory"] = None,
                 fusion_cache_capacity: int = 32) -> None:
        if fusion_cache_capacity <= 0:
            raise ServiceError("fusion cache capacity must be positive")
        self.db = db
        self.engine = engine if engine is not None else FusionEngine()
        self.orb = orb
        self.clock = clock if clock is not None else _time.monotonic
        self.privacy = privacy if privacy is not None else PrivacyPolicy()
        self.regions = SymbolicRegionLattice(db.world)
        self.navigation = NavigationGraph(db.world)
        self.relations = SpatialRelations(db.world, self.navigation)
        self.knowledge = build_knowledge_base(db.world)
        self.subscriptions = SubscriptionManager()
        self._proximity_subscriptions: Dict[str, Any] = {}
        # Memo of recent fusions, content-addressed: the key is a
        # fingerprint of the surviving readings (sensor ids, rects,
        # freshness buckets) plus the sensor-table version, NOT the
        # query timestamp — so trigger storms, repeated pulls and the
        # pipeline's steadily advancing clock all hit the same entry as
        # long as the fused inputs are indistinguishable.  This is the
        # paper's shared lattice of Section 4.3.
        self._fusion_cache: "OrderedDict[FusionKey, FusionResult]" = \
            OrderedDict()
        self._fusion_cache_capacity = fusion_cache_capacity
        # Pipeline workers share this cache across threads.
        self._fusion_cache_lock = threading.RLock()
        self.fusion_cache_hits = 0
        self.fusion_cache_misses = 0
        self.fusion_cache_evictions = 0
        self.history = history
        # (subscription_id, error message) for every failed delivery;
        # a crashing application must not stall sensor ingest.
        self.notification_failures: List[Tuple[str, str]] = []
        self._classifier_cache: Optional[Tuple[int, ProbabilityClassifier]] = None
        # Last-known-estimate support per object: the MBR of the
        # readings behind the newest fusion, tagged with the reading
        # version captured BEFORE those readings were fetched and the
        # fusion timestamp.  Sound for pruning only while the version
        # is unchanged and the query is not earlier than the entry
        # (rows only expire as time advances); otherwise region
        # queries fall back to the database's grow-only support union.
        self._object_support: Dict[str, Tuple[Rect, int, float]] = {}
        self._pending_support: Dict[str, Tuple[int, float]] = {}
        self._support_lock = threading.Lock()
        # Per-thread (result, detail) from the latest dispatch, so the
        # pipeline can account evaluated/pruned while still calling the
        # public (and monkeypatchable) apply_fusion_result.
        self._dispatch_local = threading.local()
        self.region_queries_pruned = 0
        self.region_queries_refined = 0
        # Semantic (rule-based) subscriptions: created lazily on the
        # first subscribe_semantic (the engine builds its own mutable
        # knowledge base, which most services never need).
        self.semantic: Optional[SemanticSubscriptionManager] = None
        # Shard feed: a callback receiving every LocationUpdate the
        # service derives from a fused result (the shard worker buffers
        # them for the router's merged semantic engine).
        self.location_update_listener: \
            Optional[Callable[[LocationUpdate], None]] = None
        self._semantic_trigger_installed = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @property
    def world(self) -> WorldModel:
        return self.db.world

    def classifier(self) -> ProbabilityClassifier:
        """The Section 4.4 classifier over the deployed sensors' ps.

        Rebuilt whenever the sensor table mutates; cached otherwise.
        The cache keys on the table's monotonically bumped version (a
        row count would serve a stale classifier after a same-count
        replace).
        """
        version = self.db.sensor_specs.version
        cache = self._classifier_cache
        if cache is not None and cache[0] == version:
            return cache[1]
        rows = self.db.sensor_specs.select()
        if not rows:
            raise ServiceError("no sensors registered; cannot classify")
        ps = [row["confidence"] / 100.0 for row in rows]
        classifier = ProbabilityClassifier(ps)
        self._classifier_cache = (version, classifier)
        return classifier

    def _now(self, now: Optional[float]) -> float:
        return self.clock() if now is None else now

    def normalized_readings(self, object_id: str,
                            now: float) -> List[NormalizedReading]:
        """Fresh, fully-specified readings for an object at ``now``.

        The fusion engine's input; the ingestion pipeline calls this to
        run its own batch fusion pass.  The reading version is captured
        *before* the fetch and stashed; :meth:`apply_fusion_result`
        promotes it into the support index only when the fused result
        carries the same timestamp, so a support entry can never claim
        a version newer than the rows it was computed from.
        """
        version = self.db.reading_version(object_id)
        readings = self._readings_for(object_id, now)
        with self._support_lock:
            self._pending_support[object_id] = (version, now)
        return readings

    def _readings_for(self, object_id: str,
                      now: float) -> List[NormalizedReading]:
        rows = self.db.readings_for(object_id, now)
        readings: List[NormalizedReading] = []
        for row in rows:
            spec_row = self.db.sensor_specs.get(row["sensor_id"])
            spec = spec_row["spec"] if spec_row else None
            if not isinstance(spec, SensorSpec):
                continue  # sensors without a full spec cannot be fused
            readings.append(NormalizedReading(
                sensor_id=row["sensor_id"],
                object_id=object_id,
                rect=row["rect"],
                time=row["detection_time"],
                spec=spec,
                moving=row["moving"],
            ))
        return readings

    def _fusion_fingerprint(self, readings: List[NormalizedReading],
                            at: float) -> Tuple[int, Tuple[Any, ...]]:
        """Content address of a fusion input.

        Two fusions whose surviving readings have the same sensors,
        rectangles, movement flags and freshness buckets (age quantized
        to ttl / ``_FRESHNESS_BUCKETS``) produce indistinguishable
        distributions, so they share one cache entry.  The sensor-table
        version guards against recalibration serving stale math.
        """
        parts = []
        for r in readings:
            ttl = r.spec.time_to_live
            age = r.age_at(at)
            bucket = int(_FRESHNESS_BUCKETS * age / ttl) \
                if ttl > 0.0 and ttl != float("inf") else 0
            parts.append((r.sensor_id, r.rect.min_x, r.rect.min_y,
                          r.rect.max_x, r.rect.max_y, bool(r.moving),
                          bucket))
        parts.sort()
        return (self.db.sensor_specs.version, tuple(parts))

    def fusion_result(self, object_id: str,
                      now: Optional[float] = None) -> FusionResult:
        """The full spatial probability distribution for an object.

        Fusions are memoized content-addressed (see
        :meth:`_fusion_fingerprint`): evaluating 500 programmed
        triggers against one reading costs one fusion, and repeated
        queries hit as long as the surviving readings and their
        freshness buckets are unchanged.  Any new reading for the
        object changes the fingerprint and fuses anew.
        """
        at = self._now(now)
        version = self.db.reading_version(object_id)
        readings = self._readings_for(object_id, at)
        if not readings:
            raise UnknownObjectError(
                f"no fresh readings for {object_id!r} at t={at:.3f}")
        result, _ = self.fuse_readings(object_id, readings, at)
        self._store_support(
            object_id, self._support_of(readings), version, at)
        return result

    @staticmethod
    def _support_of(readings: List[NormalizedReading]) -> Optional[Rect]:
        """The MBR of a reading set — the fused distribution's support.

        Every minimal region of the fused lattice lies inside some
        reading rectangle, so any query rectangle disjoint from this
        MBR has fused confidence exactly 0.
        """
        if not readings:
            return None
        support = readings[0].rect
        for reading in readings[1:]:
            support = support.union_mbr(reading.rect)
        return support

    def _store_support(self, object_id: str, support: Optional[Rect],
                       version: int, at: float) -> None:
        if support is None:
            return
        with self._support_lock:
            entry = self._object_support.get(object_id)
            if entry is None or entry[1] != version or at >= entry[2]:
                self._object_support[object_id] = (support, version, at)

    def _current_support(self, object_id: str,
                         at: float) -> Optional[Rect]:
        """A rectangle guaranteed to contain all probability mass.

        The tight last-fusion entry when still valid (same reading
        version, query not earlier than the fusion), else the
        database's grow-only union of every reading rectangle ever
        inserted for the object.  ``None`` means nothing is known and
        the object must be refined.
        """
        version = self.db.reading_version(object_id)
        with self._support_lock:
            entry = self._object_support.get(object_id)
        if entry is not None and entry[1] == version and at >= entry[2]:
            return entry[0]
        return self.db.reading_support(object_id)

    def fuse_readings(self, object_id: str,
                      readings: List[NormalizedReading],
                      at: float) -> Tuple[FusionResult, bool]:
        """Fuse through the content-addressed cache.

        Returns ``(result, from_cache)``.  The pipeline's workers call
        this directly with the readings they just flushed; pull queries
        go through :meth:`fusion_result`.
        """
        key: FusionKey = (object_id,
                          self._fusion_fingerprint(readings, at))
        with self._fusion_cache_lock:
            cached = self._fusion_cache.get(key)
            if cached is not None:
                self.fusion_cache_hits += 1
                self._fusion_cache.move_to_end(key)
                return cached, True
            self.fusion_cache_misses += 1
        result = self.engine.fuse(object_id, readings,
                                  self.db.universe(), at)
        self._cache_fusion(key, result)
        return result, False

    def _cache_fusion(self, key: FusionKey,
                      result: FusionResult) -> None:
        with self._fusion_cache_lock:
            self._fusion_cache[key] = result
            while len(self._fusion_cache) > self._fusion_cache_capacity:
                self._fusion_cache.popitem(last=False)
                self.fusion_cache_evictions += 1

    def cache_stats(self) -> Dict[str, int]:
        """Fusion-memo and incremental-engine effectiveness counters."""
        engine_stats = self.engine.stats() if hasattr(
            self.engine, "stats") else {}
        with self._fusion_cache_lock:
            return {
                "hits": self.fusion_cache_hits,
                "misses": self.fusion_cache_misses,
                "evictions": self.fusion_cache_evictions,
                "size": len(self._fusion_cache),
                "capacity": self._fusion_cache_capacity,
                "incremental_reuses": engine_stats.get(
                    "incremental_reuses", 0),
                "full_builds": engine_stats.get("full_builds", 0),
            }

    # ------------------------------------------------------------------
    # Object-based queries (pull mode)
    # ------------------------------------------------------------------

    def locate(self, object_id: str, now: Optional[float] = None,
               requester: Optional[str] = None) -> LocationEstimate:
        """Where is ``object_id``?  (Section 4.2's object-based query.)

        The estimate carries the symbolic resolution, coarsened to the
        requester's permitted granularity; the rectangle is likewise
        widened to the revealed region when privacy coarsens it.
        """
        depth = self.privacy.check_allowed(object_id, requester)
        result = self.fusion_result(object_id, now)
        estimate = self.engine.point_estimate(result, self.classifier())
        symbolic = self.regions.finest_region_containing_rect(estimate.rect)
        if symbolic is None:
            symbolic = self.regions.finest_region_containing_point(
                estimate.rect.center)
        if symbolic is not None:
            coarse = self.regions.coarsen(symbolic, depth)
            if coarse != symbolic:
                # Privacy: reveal only the coarse region's extent.
                estimate = LocationEstimate(
                    object_id=estimate.object_id,
                    rect=self.world.canonical_mbr(coarse),
                    probability=estimate.probability,
                    bucket=estimate.bucket,
                    time=estimate.time,
                    sources=estimate.sources,
                    moving=estimate.moving,
                    posterior=estimate.posterior,
                )
            symbolic = coarse
        final = estimate.with_symbolic(symbolic)
        if self.history is not None and requester is None:
            # Only the unredacted view is archived; privacy-coarsened
            # answers are per-requester and not history.
            self.history.record(final)
        return final

    def locate_symbolic(self, object_id: str, now: Optional[float] = None,
                        requester: Optional[str] = None) -> Optional[str]:
        """The object's location as a symbolic GLOB string."""
        return self.locate(object_id, now, requester).symbolic

    def confidence_in_region(self, object_id: str,
                             region: Union[Rect, Glob, str],
                             now: Optional[float] = None) -> float:
        """Application-facing confidence that the object is in a region."""
        rect = self._region_rect(region)
        return self.fusion_result(object_id, now).confidence_in_region(rect)

    def probability_in_region(self, object_id: str,
                              region: Union[Rect, Glob, str],
                              now: Optional[float] = None) -> float:
        """The Equation-(7) posterior that the object is in a region
        (Section 4.2's region probability query)."""
        rect = self._region_rect(region)
        return self.fusion_result(object_id, now).probability_of_region(rect)

    def grade(self, confidence: float) -> ProbabilityBucket:
        """Classify a confidence into the Section 4.4 buckets."""
        return self.classifier().classify(confidence)

    # ------------------------------------------------------------------
    # Region-based queries
    # ------------------------------------------------------------------

    def objects_in_region(self, region: Union[Rect, Glob, str],
                          now: Optional[float] = None,
                          min_confidence: float = 0.5
                          ) -> List[Tuple[str, float]]:
        """Who is in a region?  ("who are the people in room 3105?")

        Returns (object_id, confidence) pairs above the threshold,
        sorted by (confidence descending, object_id).

        Pruned: objects whose support rectangle (see
        :meth:`_current_support`) is disjoint from the query region
        have confidence exactly 0 and are skipped without fusing.
        A non-positive ``min_confidence`` admits zero-confidence
        objects, so that case takes the reference path.
        """
        at = self._now(now)
        if min_confidence <= 0.0:
            return self.objects_in_region_reference(region, at,
                                                    min_confidence)
        rect = self._region_rect(region)
        out: List[Tuple[str, float]] = []
        for object_id in self.db.tracked_objects():
            support = self._current_support(object_id, at)
            if support is not None and not rect.intersects(support):
                self.region_queries_pruned += 1
                continue
            self.region_queries_refined += 1
            try:
                confidence = self.fusion_result(
                    object_id, at).confidence_in_region(rect)
            except UnknownObjectError:
                continue
            if confidence >= min_confidence:
                out.append((object_id, confidence))
        out.sort(key=lambda pair: (-pair[1], pair[0]))
        return out

    def objects_in_region_reference(self, region: Union[Rect, Glob, str],
                                    now: Optional[float] = None,
                                    min_confidence: float = 0.5
                                    ) -> List[Tuple[str, float]]:
        """The unpruned scan: full fusion for every tracked object.

        Kept as the bit-identical baseline for the pruned
        :meth:`objects_in_region` (equivalence tests and benchmarks).
        """
        rect = self._region_rect(region)
        at = self._now(now)
        out: List[Tuple[str, float]] = []
        for object_id in self.db.tracked_objects():
            try:
                confidence = self.fusion_result(
                    object_id, at).confidence_in_region(rect)
            except UnknownObjectError:
                continue
            if confidence >= min_confidence:
                out.append((object_id, confidence))
        out.sort(key=lambda pair: (-pair[1], pair[0]))
        return out

    def nearest_entities(self, point_or_object: Union[Point, str],
                         count: int = 1,
                         object_type: Optional[str] = None,
                         now: Optional[float] = None,
                         **required_properties: Any
                         ) -> List[Tuple[str, float]]:
        """The nearest modelled entities to a point or tracked object.

        Property filters express queries like "the nearest region that
        has power outlets and high Bluetooth signal" (Section 5.1):
        ``nearest_entities(p, object_type="Room", power_outlets=True)``.
        """
        if isinstance(point_or_object, str):
            origin = self.locate(point_or_object, now).rect.center
        else:
            origin = point_or_object

        def where(row: Row) -> bool:
            if object_type is not None and row["object_type"] != object_type:
                return False
            return all(row["properties"].get(k) == v
                       for k, v in required_properties.items())

        return self.db.nearest_objects(origin, count, where)

    # ------------------------------------------------------------------
    # Spatial relationships (Section 4.6)
    # ------------------------------------------------------------------

    def proximity(self, first: str, second: str, threshold: float,
                  now: Optional[float] = None) -> ProbabilisticRelation:
        """Are two objects within ``threshold`` feet of each other?"""
        at = self._now(now)
        return self.relations.proximity(
            self.locate(first, at), self.locate(second, at), threshold)

    def colocation(self, first: str, second: str,
                   granularity_depth: int = 3,
                   now: Optional[float] = None) -> ProbabilisticRelation:
        """Are two objects in the same symbolic region?"""
        at = self._now(now)
        return self.relations.colocation(
            self.locate(first, at), self.locate(second, at),
            granularity_depth)

    def containment(self, object_id: str, region: Union[Rect, Glob, str],
                    now: Optional[float] = None) -> ProbabilisticRelation:
        """Is an object inside a region (graded)?"""
        estimate = self.locate(object_id, now)
        return self.relations.containment(estimate, self._region_rect(region))

    def distance_between(self, first: str, second: str, path: bool = False,
                         now: Optional[float] = None) -> Optional[float]:
        """Euclidean or path distance between two tracked objects."""
        at = self._now(now)
        return self.relations.distance_between(
            self.locate(first, at), self.locate(second, at), path)

    # ------------------------------------------------------------------
    # Subscriptions (push mode)
    # ------------------------------------------------------------------

    def subscribe(self, region: Union[Rect, Glob, str],
                  consumer: Optional[Callable[[Dict[str, Any]], None]] = None,
                  kind: str = KIND_ENTER,
                  object_id: Optional[str] = None,
                  threshold: float = 0.5,
                  bucket: Optional[ProbabilityBucket] = None,
                  remote_reference: Optional[str] = None) -> str:
        """Subscribe to enter/leave events for a region.

        Installs a database trigger as the coarse filter (Section 5.3);
        each firing is refined with fused confidence before the event
        is pushed to the local ``consumer`` or the ``remote_reference``
        servant's ``notify`` method.
        """
        rect = self._region_rect(region)
        region_glob = str(region) if not isinstance(region, Rect) else None
        subscription = Subscription(
            subscription_id=self.subscriptions.new_id(),
            region=rect,
            kind=kind,
            region_glob=region_glob,
            object_id=object_id,
            threshold=threshold,
            bucket=bucket,
            consumer=consumer,
            remote_reference=remote_reference,
        )
        if self.db.journal is not None:
            self.db.journal.log_subscribe(
                self._subscription_record(subscription))
        self._install_region_subscription(subscription)
        return subscription.subscription_id

    def _install_region_subscription(self,
                                     subscription: Subscription) -> None:
        """Register a subscription and its coarse database trigger."""
        self.subscriptions.add(subscription)
        rect = subscription.region
        # leave/both need off-region readings too.
        watch_all = subscription.kind != KIND_ENTER

        def condition(row: Row) -> bool:
            if (subscription.object_id is not None
                    and row["mobile_object_id"] != subscription.object_id):
                return False
            return watch_all or rect.intersects(row["rect"])

        def action(row: Row) -> None:
            self._on_trigger(subscription, row)

        from repro.spatialdb import Trigger
        # Enter-only conditions require the reading to intersect the
        # region, so the R-tree dispatch can prune them spatially;
        # leave/both watch every reading of the object (region=None).
        trigger_region = rect if not watch_all else None
        self.db.sensor_readings.create_trigger(
            Trigger(subscription.subscription_id, "insert", condition,
                    action, region=trigger_region))

    def subscribe_proximity(self, first: str, second: str,
                            threshold_ft: float,
                            consumer: Optional[Callable[[Dict[str, Any]],
                                                        None]] = None,
                            kind: str = KIND_ENTER,
                            min_confidence: float = 0.25,
                            remote_reference: Optional[str] = None) -> str:
        """Notify when two objects come within ``threshold_ft`` feet.

        Section 5.3's distance condition.  Edge-triggered: an "enter"
        event fires when the pair closes inside the threshold, a
        "leave" event when it opens (per ``kind``).  Evaluations run on
        every reading of either object; pairs with either estimate
        below ``min_confidence`` are treated as not-near.
        """
        subscription = ProximitySubscription(
            subscription_id=self.subscriptions.new_id(),
            first=first,
            second=second,
            threshold_ft=threshold_ft,
            kind=kind,
            min_confidence=min_confidence,
            consumer=consumer,
            remote_reference=remote_reference,
        )
        if self.db.journal is not None:
            self.db.journal.log_subscribe_proximity(
                self._proximity_record(subscription))
        self._install_proximity_subscription(subscription)
        return subscription.subscription_id

    def _install_proximity_subscription(self, subscription) -> None:
        self._proximity_subscriptions[subscription.subscription_id] = \
            subscription

        def condition(row: Row) -> bool:
            return subscription.involves(row["mobile_object_id"])

        def action(row: Row) -> None:
            self._on_proximity_trigger(subscription, row)

        from repro.spatialdb import Trigger
        self.db.sensor_readings.create_trigger(
            Trigger(subscription.subscription_id, "insert", condition,
                    action))

    def _on_proximity_trigger(self, subscription, row: Row) -> None:
        self._evaluate_proximity(subscription, row["detection_time"])

    def _evaluate_proximity(self, subscription, at: float) -> None:
        try:
            first = self.locate(subscription.first, at)
            second = self.locate(subscription.second, at)
        except (UnknownObjectError, ServiceError):
            return
        relation = self.relations.proximity(first, second,
                                            subscription.threshold_ft)
        within_now = (relation.holds
                      and relation.probability
                      >= subscription.min_confidence)
        was_within = subscription.within
        subscription.within = within_now
        transition = None
        if within_now and not was_within:
            transition = "enter"
        elif was_within and not within_now:
            transition = "leave"
        if transition is None or not subscription.wants(transition):
            return
        event = {
            "subscription_id": subscription.subscription_id,
            "transition": transition,
            "first": subscription.first,
            "second": subscription.second,
            "threshold_ft": subscription.threshold_ft,
            "probability": relation.probability,
            "distance_ft": first.rect.center_distance(second.rect),
            "time": at,
        }
        self._notify(subscription, event)
        self.subscriptions.notifications_sent += 1

    def subscribe_semantic(self, rule: str,
                           consumer: Optional[Callable[[Dict[str, Any]],
                                                       None]] = None,
                           kind: str = KIND_BOTH,
                           remote_reference: Optional[str] = None,
                           now: Optional[float] = None,
                           mode: str = MODE_INCREMENTAL) -> str:
        """Subscribe to a semantic rule over derived location facts.

        ``rule`` is a Horn clause like ``meeting(P, Q) :-
        colocated_at(P, Q, 'SC/3/ConferenceRoom'), distinct(P, Q)``;
        the head's variable bindings become the event payload.  Events
        are edge-triggered per solution tuple: "enter" when a binding
        starts holding, "leave" when it stops.  Initial activations
        are delivered synchronously before this returns.

        Semantic subscriptions live in process memory (like consumer
        callbacks, they cannot travel through the WAL); re-register
        after crash recovery.
        """
        manager = self.semantic_manager(mode)
        subscription = SemanticSubscription(
            subscription_id=self.subscriptions.new_id(),
            rule=rule,
            kind=kind,
            consumer=consumer,
            remote_reference=remote_reference,
        )
        self._ensure_semantic_trigger()
        deliveries = manager.add(subscription, self._now(now))
        self._deliver_semantic(deliveries, None)
        return subscription.subscription_id

    def semantic_manager(
            self, mode: str = MODE_INCREMENTAL
    ) -> SemanticSubscriptionManager:
        """The semantic subscription manager, created on first use."""
        if self.semantic is None:
            self.semantic = SemanticSubscriptionManager(
                self.db.world, mode=mode)
        elif self.semantic.engine.mode != mode:
            raise ServiceError(
                f"semantic engine already running in "
                f"{self.semantic.engine.mode!r} mode")
        return self.semantic

    def declare_semantic_fact(self, functor: str, *args: str,
                              now: Optional[float] = None) -> None:
        """Assert an application fact (e.g. ``team('alice', 'blue')``)
        into the semantic engine; affected rules re-evaluate."""
        manager = self.semantic_manager()
        self._deliver_semantic(
            manager.declare_fact(functor, *args, now=self._now(now)), None)

    def retract_semantic_fact(self, functor: str, *args: str,
                              now: Optional[float] = None) -> None:
        manager = self.semantic_manager()
        self._deliver_semantic(
            manager.retract_fact(functor, *args, now=self._now(now)), None)

    def set_location_update_listener(
            self, listener: Optional[Callable[[LocationUpdate], None]],
    ) -> None:
        """Mirror every derived LocationUpdate to ``listener``.

        The shard worker uses this to forward per-fusion location
        updates into its event buffer; the router replays the merged
        stream through its own semantic engine.
        """
        self.location_update_listener = listener
        if listener is not None:
            self._ensure_semantic_trigger()

    def _ensure_semantic_trigger(self) -> None:
        """Install the shared per-insert trigger for the sync path.

        The pipeline inserts readings with triggers suppressed and
        dispatches through :meth:`apply_fusion_result`; synchronous
        inserts need one database trigger that re-fuses the object and
        feeds the semantic engine on every reading.
        """
        if self._semantic_trigger_installed:
            return
        from repro.spatialdb import Trigger

        def action(row: Row) -> None:
            try:
                result = self.fusion_result(row["mobile_object_id"],
                                            row["detection_time"])
            except Exception:  # noqa: BLE001 — no fusable readings yet
                return
            self._dispatch_semantic(result, None)

        self.db.sensor_readings.create_trigger(
            Trigger("__semantic__", "insert", lambda row: True, action))
        self._semantic_trigger_installed = True

    def _semantic_update(self,
                         result: FusionResult) -> Optional[LocationUpdate]:
        """Reduce a fused result to the engine's LocationUpdate."""
        try:
            estimate = self.engine.point_estimate(result, self.classifier())
        except Exception:  # noqa: BLE001 — no minimal region
            return None
        rect = estimate.rect
        symbolic = self.regions.finest_region_containing_rect(rect)
        if symbolic is None:
            symbolic = self.regions.finest_region_containing_point(
                rect.center)
        center = rect.center
        return LocationUpdate(
            object_id=result.object_id,
            region=symbolic,
            center=(center.x, center.y),
            support=self._support_of(list(result.readings)),
            confidence=estimate.probability,
            time=result.now,
        )

    def _dispatch_semantic(self, result: FusionResult,
                           channel: Optional[Any]) -> Dict[str, int]:
        """Feed one fused result to the semantic layer (if active)."""
        zeros = {"delivered": 0, "evaluated": 0, "pruned": 0}
        manager = self.semantic
        listener = self.location_update_listener
        wants_events = manager is not None and manager.count() > 0
        if not wants_events and listener is None:
            return zeros
        update = self._semantic_update(result)
        if update is None:
            return zeros
        if listener is not None:
            listener(update)
        if not wants_events:
            return zeros
        assert manager is not None
        before_evaluated = manager.engine.evaluated
        before_pruned = manager.engine.pruned
        deliveries = manager.on_update(update)
        delivered = self._deliver_semantic(deliveries, channel)
        return {
            "delivered": delivered,
            "evaluated": manager.engine.evaluated - before_evaluated,
            "pruned": manager.engine.pruned - before_pruned,
        }

    def _deliver_semantic(self, deliveries: List[Any],
                          channel: Optional[Any]) -> int:
        for subscription, event in deliveries:
            self._notify(subscription, event)
            if channel is not None:
                channel.publish(event)
            self.subscriptions.notifications_sent += 1
        return len(deliveries)

    def unsubscribe(self, subscription_id: str) -> bool:
        """Remove a subscription and its database trigger."""
        if self.db.journal is not None:
            self.db.journal.log_unsubscribe(subscription_id)
        self.db.sensor_readings.drop_trigger(subscription_id)
        if subscription_id in self._proximity_subscriptions:
            del self._proximity_subscriptions[subscription_id]
            return True
        if self.semantic is not None \
                and self.semantic.remove(subscription_id):
            return True
        return self.subscriptions.remove(subscription_id)

    # ------------------------------------------------------------------
    # Durable-registry records and crash restore
    # ------------------------------------------------------------------

    @staticmethod
    def _subscription_record(subscription: Subscription) -> Dict[str, Any]:
        """The WAL-logged logical form of a region subscription.

        Callables (``consumer``) cannot travel through the log; restore
        re-binds them via :meth:`restore_subscriptions`'s consumer map.
        """
        rect = subscription.region
        return {
            "subscription_id": subscription.subscription_id,
            "region": [rect.min_x, rect.min_y, rect.max_x, rect.max_y],
            "kind": subscription.kind,
            "region_glob": subscription.region_glob,
            "object_id": subscription.object_id,
            "threshold": subscription.threshold,
            "bucket": (subscription.bucket.name
                       if subscription.bucket is not None else None),
            "remote_reference": subscription.remote_reference,
        }

    @staticmethod
    def _proximity_record(subscription) -> Dict[str, Any]:
        return {
            "subscription_id": subscription.subscription_id,
            "first": subscription.first,
            "second": subscription.second,
            "threshold_ft": subscription.threshold_ft,
            "kind": subscription.kind,
            "min_confidence": subscription.min_confidence,
            "remote_reference": subscription.remote_reference,
        }

    def restore_subscriptions(
            self, records: List[Dict[str, Any]],
            consumers: Optional[Dict[str, Callable[[Dict[str, Any]],
                                                   None]]] = None) -> int:
        """Reinstate recovered subscriptions under their original ids.

        ``records`` is :meth:`repro.storage.RecoveredState.subscriptions`
        — the durable registry at the crash.  ``consumers`` maps
        subscription ids to fresh callbacks; a record with neither a
        mapped consumer nor a remote reference gets a no-op consumer so
        edge-detection state keeps advancing until the application
        re-binds via :meth:`rebind_consumer`.  Nothing here is
        re-journaled: the records are already in the log.  Returns the
        number reinstated.
        """
        consumers = consumers or {}
        restored = 0
        floor = 0
        for record in records:
            sid = record["subscription_id"]
            consumer = consumers.get(sid)
            remote = record.get("remote_reference")
            if consumer is None and remote is None:
                consumer = _dropping_consumer
            if record["op"] == "subscribe_proximity":
                subscription = ProximitySubscription(
                    subscription_id=sid,
                    first=record["first"],
                    second=record["second"],
                    threshold_ft=record["threshold_ft"],
                    kind=record["kind"],
                    min_confidence=record["min_confidence"],
                    consumer=consumer,
                    remote_reference=remote,
                )
                self._install_proximity_subscription(subscription)
            else:
                bucket = record.get("bucket")
                subscription = Subscription(
                    subscription_id=sid,
                    region=Rect(*record["region"]),
                    kind=record["kind"],
                    region_glob=record.get("region_glob"),
                    object_id=record.get("object_id"),
                    threshold=record["threshold"],
                    bucket=(ProbabilityBucket[bucket]
                            if bucket is not None else None),
                    consumer=consumer,
                    remote_reference=remote,
                )
                self._install_region_subscription(subscription)
            if sid.startswith("sub-"):
                try:
                    floor = max(floor, int(sid[4:]))
                except ValueError:
                    pass
            restored += 1
        self.subscriptions.ensure_id_floor(floor)
        return restored

    def rebind_consumer(self, subscription_id: str,
                        consumer: Callable[[Dict[str, Any]], None]) -> None:
        """Point a (restored) subscription at a live callback."""
        if subscription_id in self._proximity_subscriptions:
            self._proximity_subscriptions[subscription_id].consumer = \
                consumer
            return
        self.subscriptions.get(subscription_id).consumer = consumer

    def _on_trigger(self, subscription: Subscription, row: Row) -> None:
        object_id = row["mobile_object_id"]
        at = row["detection_time"]
        try:
            result = self.fusion_result(object_id, at)
        except UnknownObjectError:
            return
        confidence = result.confidence_in_region(subscription.region)
        grade = self.classifier().classify(min(1.0, max(0.0, confidence)))
        self.subscriptions.evaluate(
            subscription, object_id, confidence, grade, at, self._notify)

    def apply_fusion_result(self, result: FusionResult,
                            channel: Optional[Any] = None) -> int:
        """Evaluate push subscriptions against an external fusion.

        The ingestion pipeline's entry point: its workers insert
        readings with database triggers suppressed, fuse once per
        batch, and hand the :class:`FusionResult` here.  The result is
        memoized into the shared fusion cache (so follow-up pull
        queries at the same instant are free), every matching region
        subscription is evaluated exactly once, and proximity
        subscriptions involving the object are re-checked.

        ``channel`` (an :class:`repro.orb.EventChannel`) additionally
        receives every event produced — the fused stream's remote
        fan-out.  Returns the number of events delivered.
        """
        return self.apply_fusion_result_detailed(result, channel)[
            "delivered"]

    def apply_fusion_result_detailed(self, result: FusionResult,
                                     channel: Optional[Any] = None
                                     ) -> Dict[str, int]:
        """Like :meth:`apply_fusion_result`, with dispatch accounting.

        Subscriptions are narrowed through
        :meth:`SubscriptionManager.matching_for_result`: only those
        whose region intersects the fused support, that are currently
        inside, or that pass at zero confidence are evaluated — the
        rest are provably no-ops.  Returns ``{"delivered", "evaluated",
        "pruned"}``.
        """
        object_id = result.object_id
        at = result.now
        self._cache_fusion(
            (object_id, self._fusion_fingerprint(result.readings, at)),
            result)
        support = self._support_of(list(result.readings))
        with self._support_lock:
            pending = self._pending_support.pop(object_id, None)
        if pending is not None and pending[1] == at:
            self._store_support(object_id, support, pending[0], at)
        delivered = 0

        def deliver(subscription: Subscription,
                    event: Dict[str, Any]) -> None:
            nonlocal delivered
            self._notify(subscription, event)
            if channel is not None:
                channel.publish(event)
            delivered += 1

        candidates = self.subscriptions.matching_for_result(
            object_id, support)
        evaluated = len(candidates)
        pruned = self.subscriptions.matching_count(object_id) - evaluated
        for subscription in candidates:
            confidence = result.confidence_in_region(subscription.region)
            grade = self.classifier().classify(
                min(1.0, max(0.0, confidence)))
            self.subscriptions.evaluate(
                subscription, object_id, confidence, grade, at, deliver)
        for subscription in list(self._proximity_subscriptions.values()):
            if subscription.involves(object_id):
                self._evaluate_proximity(subscription, at)
        semantic = self._dispatch_semantic(result, channel)
        detail = {"delivered": delivered + semantic["delivered"],
                  "evaluated": evaluated,
                  "pruned": max(0, pruned),
                  "semantic_delivered": semantic["delivered"],
                  "semantic_evaluated": semantic["evaluated"],
                  "semantic_pruned": semantic["pruned"]}
        self._dispatch_local.entry = (result, detail)
        return detail

    def consume_dispatch_detail(self, result: FusionResult
                                ) -> Optional[Dict[str, int]]:
        """The dispatch detail of this thread's last apply, if it was
        for ``result``; consumed on read."""
        entry = getattr(self._dispatch_local, "entry", None)
        if entry is not None and entry[0] is result:
            self._dispatch_local.entry = None
            return entry[1]
        return None

    def _notify(self, subscription: Subscription,
                event: Dict[str, Any]) -> None:
        try:
            if subscription.consumer is not None:
                subscription.consumer(event)
            elif subscription.remote_reference is not None:
                if self.orb is None:
                    raise ServiceError(
                        "remote subscriber but the service has no orb")
                self.orb.resolve(
                    subscription.remote_reference).notify(event)
        except Exception as exc:  # noqa: BLE001 — isolate app crashes
            self.notification_failures.append(
                (subscription.subscription_id, str(exc)))

    # ------------------------------------------------------------------
    # Region definition and query-index accounting
    # ------------------------------------------------------------------

    def define_region(self, glob: Union[Glob, str], polygon: Any,
                      frame: str = "") -> None:
        """Define an application region and refresh dependent indexes.

        Adds the region to the world model and the symbolic lattice,
        then rebuilds the navigation graph (new regions may change
        point attribution) — which also drops its memoized
        single-source distances.
        """
        self.regions.define_region(glob, polygon, frame)
        self.navigation.refresh()

    def query_stats(self) -> Dict[str, int]:
        """Query-side index effectiveness counters.

        Region-query pruning, push-dispatch pruning and the reading
        table's spatial trigger dispatch, in one view — the companion
        of :meth:`cache_stats` for the paths this layer indexes.
        """
        out = {
            "region_queries_pruned": self.region_queries_pruned,
            "region_queries_refined": self.region_queries_refined,
        }
        for key, value in self.subscriptions.dispatch_stats().items():
            out[f"subscriptions_{key}"] = value
        for key, value in \
                self.db.sensor_readings.trigger_dispatch_stats().items():
            out[f"trigger_{key}"] = value
        return out

    # ------------------------------------------------------------------

    def _region_rect(self, region: Union[Rect, Glob, str]) -> Rect:
        """Any region designator to a canonical rectangle.

        Symbolic regions are looked up in the world model; rectangles
        pass through — "we approximate the region with a minimum
        bounding rectangle" (Section 4.2).
        """
        if isinstance(region, Rect):
            return region
        return self.world.resolve_symbolic(Glob.parse(str(region)))
