"""The Location Service (paper Section 4).

Pull queries (object- and region-based), push notifications with
database triggers behind them, the symbolic region lattice, privacy
granularity and spatial relationship functions, plus the ORB servant
that exposes it all to remote applications.
"""

from repro.service.history import LocationHistory
from repro.service.location_service import LocationService
from repro.service.privacy import (
    DEPTH_BLOCKED,
    DEPTH_BUILDING,
    DEPTH_FLOOR,
    DEPTH_FULL,
    DEPTH_ROOM,
    PrivacyPolicy,
)
from repro.service.regions import SymbolicRegionLattice
from repro.service.semantic_subscriptions import (
    SemanticSubscription,
    SemanticSubscriptionManager,
)
from repro.service.servant import (
    NAMING_NAME,
    SERVICE_NAME,
    LocationServiceServant,
    publish_service,
)
from repro.service.subscriptions import (
    KIND_BOTH,
    KIND_ENTER,
    KIND_LEAVE,
    Subscription,
    SubscriptionManager,
)

__all__ = [
    "DEPTH_BLOCKED",
    "DEPTH_BUILDING",
    "DEPTH_FLOOR",
    "DEPTH_FULL",
    "DEPTH_ROOM",
    "KIND_BOTH",
    "KIND_ENTER",
    "KIND_LEAVE",
    "LocationHistory",
    "LocationService",
    "LocationServiceServant",
    "NAMING_NAME",
    "PrivacyPolicy",
    "SERVICE_NAME",
    "SemanticSubscription",
    "SemanticSubscriptionManager",
    "Subscription",
    "SubscriptionManager",
    "SymbolicRegionLattice",
    "publish_service",
]
