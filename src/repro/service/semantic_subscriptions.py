"""Semantic subscriptions: rule-driven notifications over fused facts.

Where :mod:`repro.service.subscriptions` dispatches *geometric*
interests (a rectangle, a pair distance), a semantic subscription is a
Horn rule over the reasoning engine's derived facts::

    meeting(P, Q) :- colocated_at(P, Q, 'SC/3/ConferenceRoom'),
                     team(P, blue), team(Q, red),
                     dwell(P, 'SC/3/ConferenceRoom', 120)

The manager owns a :class:`SemanticTriggerEngine` (incremental by
default; ``mode`` selects the naive reference oracle for differential
tests), pairs every raw engine event with its subscription, applies
the enter/leave ``kind`` filter, and leaves delivery to the caller —
the :class:`~repro.service.location_service.LocationService` pushes
through its usual ``_notify`` failure-isolation path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.model import WorldModel
from repro.reasoning.incremental import (
    MODE_INCREMENTAL,
    LocationUpdate,
    SemanticTriggerEngine,
)
from repro.service.subscriptions import (
    KIND_BOTH,
    KIND_ENTER,
    KIND_LEAVE,
)

Consumer = Callable[[Dict[str, Any]], None]

_VALID_KINDS = (KIND_ENTER, KIND_LEAVE, KIND_BOTH)


@dataclass
class SemanticSubscription:
    """One application's interest in a semantic rule."""

    subscription_id: str
    rule: str
    kind: str = KIND_BOTH
    consumer: Optional[Consumer] = None
    remote_reference: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ServiceError(f"invalid subscription kind {self.kind!r}")
        if self.consumer is None and self.remote_reference is None:
            raise ServiceError(
                "subscription needs a consumer or a remote reference")

    def wants(self, transition: str) -> bool:
        return self.kind == KIND_BOTH or self.kind == transition


Delivery = Tuple[SemanticSubscription, Dict[str, Any]]


class SemanticSubscriptionManager:
    """Subscriptions plus the trigger engine that evaluates them.

    All mutating entry points serialize on one lock: the engine's
    delta state assumes totally ordered epochs, and both the pipeline's
    worker threads and the synchronous trigger path feed it.
    """

    def __init__(self, world: WorldModel,
                 mode: str = MODE_INCREMENTAL) -> None:
        self.engine = SemanticTriggerEngine(world, mode=mode)
        self._subscriptions: Dict[str, SemanticSubscription] = {}
        self._lock = threading.Lock()
        self.delivered = 0

    def count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def get(self, subscription_id: str) -> SemanticSubscription:
        with self._lock:
            subscription = self._subscriptions.get(subscription_id)
        if subscription is None:
            raise ServiceError(
                f"unknown semantic subscription {subscription_id!r}")
        return subscription

    def all(self) -> List[SemanticSubscription]:
        with self._lock:
            return list(self._subscriptions.values())

    def add(self, subscription: SemanticSubscription,
            now: float) -> List[Delivery]:
        """Register; returns the initial activations to deliver."""
        with self._lock:
            if subscription.subscription_id in self._subscriptions:
                raise ServiceError(
                    f"duplicate subscription "
                    f"{subscription.subscription_id}")
            events = self.engine.subscribe(
                subscription.subscription_id, subscription.rule, now=now)
            self._subscriptions[subscription.subscription_id] = subscription
            return self._pair(events)

    def remove(self, subscription_id: str) -> bool:
        with self._lock:
            subscription = self._subscriptions.pop(subscription_id, None)
            if subscription is None:
                return False
            self.engine.unsubscribe(subscription_id)
            return True

    def on_update(self, update: LocationUpdate) -> List[Delivery]:
        """Feed a fused location; returns the deliveries it causes."""
        with self._lock:
            return self._pair(self.engine.on_update(update))

    def tick(self, now: float) -> List[Delivery]:
        """Advance the sim clock (dwell windows) without a location."""
        with self._lock:
            return self._pair(self.engine.tick(now))

    def declare_fact(self, functor: str, *args: str,
                     now: Optional[float] = None) -> List[Delivery]:
        """Assert an application fact (``team('alice', blue)``)."""
        with self._lock:
            return self._pair(
                self.engine.declare_fact(functor, *args, now=now))

    def retract_fact(self, functor: str, *args: str,
                     now: Optional[float] = None) -> List[Delivery]:
        with self._lock:
            return self._pair(
                self.engine.retract_fact(functor, *args, now=now))

    def _pair(self, events: List[Dict[str, Any]]) -> List[Delivery]:
        """Attach subscriptions; drop transitions the kind filters out.

        The engine's raw stream stays mode-identical; the kind filter
        is deterministic, so the delivered stream is too.
        """
        out: List[Delivery] = []
        for event in events:
            subscription = self._subscriptions.get(
                event["subscription_id"])
            if subscription is None:
                continue
            if not subscription.wants(event["transition"]):
                continue
            out.append((subscription, event))
        self.delivered += len(out)
        return out

    def active_solutions(self,
                         subscription_id: str) -> List[Dict[str, str]]:
        with self._lock:
            return self.engine.active_solutions(subscription_id)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out = dict(self.engine.stats())
            out["delivered"] = self.delivered
            return out
