"""The symbolic region lattice (paper Section 4.5).

"In order to give location information as a symbolic region, the
Location Service maintains a lattice of all symbolic regions.  This
includes rooms, corridors and other building structures.  In addition,
other symbolic locations can be defined such as 'East wing of the
building' or 'work region inside a room'."

The lattice is ordered by the GLOB hierarchy (room under floor under
building) plus geometric containment for application-defined regions
that do not follow the naming hierarchy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.errors import ServiceError
from repro.geometry import Point, Polygon, Rect
from repro.model import Entity, EntityType, Glob, WorldModel
from repro.spatialdb.rtree import RTree


class SymbolicRegionLattice:
    """All symbolic regions of a deployment ordered by containment.

    Point/rect resolution is R-tree indexed: candidates come from an
    MBR index over the lattice's regions, the tie-break is (area,
    registration order) — exactly the strict ``<`` scan over the
    insertion-ordered region dict that the ``*_reference`` methods
    keep.  The index is lazily rebuilt whenever the world model's
    version moves (frames or geometry may change canonical MBRs).
    """

    def __init__(self, world: WorldModel) -> None:
        self.world = world
        self._regions: Dict[str, Entity] = {}
        self._parents: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}
        # (world version, R-tree of (MBR, key), key -> (area, order)).
        self._index: Optional[
            Tuple[int, RTree, Dict[str, Tuple[float, int]]]] = None
        for entity in world.entities():
            if entity.entity_type.is_enclosing:
                self._regions[str(entity.glob)] = entity
        self._link()

    def _link(self) -> None:
        self._index = None
        for key in self._regions:
            self._parents[key] = set()
            self._children[key] = set()
        keys = list(self._regions)
        for child_key in keys:
            child_glob = self._regions[child_key].glob
            child_mbr = self.world.canonical_mbr(child_key)
            for parent_key in keys:
                if parent_key == child_key:
                    continue
                parent_glob = self._regions[parent_key].glob
                parent_mbr = self.world.canonical_mbr(parent_key)
                hierarchic = (child_glob != parent_glob
                              and child_glob.is_within(parent_glob))
                geometric = (parent_mbr.contains_rect(child_mbr)
                             and parent_mbr.area > child_mbr.area)
                if hierarchic or geometric:
                    self._parents[child_key].add(parent_key)
                    self._children[parent_key].add(child_key)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def regions(self) -> List[str]:
        return sorted(self._regions)

    def has(self, glob: Union[Glob, str]) -> bool:
        return str(glob) in self._regions

    def parents_of(self, glob: Union[Glob, str]) -> List[str]:
        key = str(glob)
        if key not in self._parents:
            raise ServiceError(f"unknown symbolic region {key}")
        return sorted(self._parents[key])

    def children_of(self, glob: Union[Glob, str]) -> List[str]:
        key = str(glob)
        if key not in self._children:
            raise ServiceError(f"unknown symbolic region {key}")
        return sorted(self._children[key])

    def ancestors_of(self, glob: Union[Glob, str]) -> List[str]:
        """All transitive parents, nearest first by area."""
        key = str(glob)
        seen: Set[str] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            for parent in self._parents.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return sorted(
            seen, key=lambda k: self.world.canonical_mbr(k).area)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def _ensure_index(self) -> Tuple[RTree, Dict[str, Tuple[float, int]]]:
        """The MBR index, rebuilt when the world version moves."""
        version = self.world.version
        index = self._index
        if index is not None and index[0] == version:
            return index[1], index[2]
        meta: Dict[str, Tuple[float, int]] = {}
        entries = []
        for order, key in enumerate(self._regions):
            mbr = self.world.canonical_mbr(key)
            meta[key] = (mbr.area, order)
            entries.append((mbr, key))
        tree = RTree.from_entries(entries)
        self._index = (version, tree, meta)
        return tree, meta

    def finest_region_containing_point(self, p: Point) -> Optional[str]:
        """The smallest symbolic region containing a canonical point."""
        entity = self.world.smallest_region_containing(p)
        return str(entity.glob) if entity is not None else None

    def finest_region_containing_rect(self, rect: Rect) -> Optional[str]:
        """The smallest symbolic region fully containing ``rect``.

        This is how a fused coordinate estimate becomes "room 3216":
        the estimate rectangle is attributed to the tightest region
        that encloses it.  Index-backed: only regions whose MBR
        intersects ``rect`` can contain it; ties on area break by
        registration order, like the reference scan's strict ``<``.
        """
        tree, meta = self._ensure_index()
        best_key: Optional[str] = None
        best = (float("inf"), -1)
        for mbr, key in tree.search_entries(rect):
            if mbr.contains_rect(rect) and meta[key] < best:
                best_key = key
                best = meta[key]
        return best_key

    def finest_region_containing_rect_reference(
            self, rect: Rect) -> Optional[str]:
        """The pre-index linear scan, kept for equivalence tests."""
        best_key: Optional[str] = None
        best_area = float("inf")
        for key in self._regions:
            mbr = self.world.canonical_mbr(key)
            if mbr.contains_rect(rect) and mbr.area < best_area:
                best_key = key
                best_area = mbr.area
        return best_key

    def coarsen(self, glob: Union[Glob, str], max_depth: int) -> str:
        """Coarsen a region to at most ``max_depth`` GLOB segments.

        The privacy operation: a policy of depth 2 turns
        ``SC/3/3216`` into ``SC/3`` (floor granularity).
        """
        parsed = Glob.parse(str(glob))
        truncated = parsed.truncated_to_depth(max_depth)
        return str(truncated)

    def regions_overlapping(self, rect: Rect) -> List[str]:
        """Symbolic regions whose MBR intersects ``rect``, smallest first.

        Index-backed; ordering matches the reference's stable sort
        (area, then registration order).
        """
        tree, meta = self._ensure_index()
        hits = tree.search(rect)
        hits.sort(key=meta.__getitem__)
        return hits

    def regions_overlapping_reference(self, rect: Rect) -> List[str]:
        """The pre-index linear scan, kept for equivalence tests."""
        overlapping = [
            key for key in self._regions
            if self.world.canonical_mbr(key).intersects(rect)
        ]
        return sorted(overlapping,
                      key=lambda k: self.world.canonical_mbr(k).area)

    def define_region(self, glob: Union[Glob, str], polygon: Polygon,
                      frame: str = "") -> None:
        """Add an application-defined symbolic region to the lattice.

        Supports Section 4's "creation of spatial regions and the
        association of different kinds of properties with these
        regions".  The region also lands in the world model so spatial
        queries see it.
        """
        parsed = Glob.parse(str(glob))
        entity = self.world.add_region(parsed, EntityType.REGION, polygon,
                                       frame)
        self._regions[str(parsed)] = entity
        # Relink: a single region insert is rare enough that a full
        # rebuild keeps the code simple and obviously correct.
        self._link()
