"""The symbolic region lattice (paper Section 4.5).

"In order to give location information as a symbolic region, the
Location Service maintains a lattice of all symbolic regions.  This
includes rooms, corridors and other building structures.  In addition,
other symbolic locations can be defined such as 'East wing of the
building' or 'work region inside a room'."

The lattice is ordered by the GLOB hierarchy (room under floor under
building) plus geometric containment for application-defined regions
that do not follow the naming hierarchy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from repro.errors import ServiceError
from repro.geometry import Point, Polygon, Rect
from repro.model import Entity, EntityType, Glob, WorldModel


class SymbolicRegionLattice:
    """All symbolic regions of a deployment ordered by containment."""

    def __init__(self, world: WorldModel) -> None:
        self.world = world
        self._regions: Dict[str, Entity] = {}
        self._parents: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}
        for entity in world.entities():
            if entity.entity_type.is_enclosing:
                self._regions[str(entity.glob)] = entity
        self._link()

    def _link(self) -> None:
        for key in self._regions:
            self._parents[key] = set()
            self._children[key] = set()
        keys = list(self._regions)
        for child_key in keys:
            child_glob = self._regions[child_key].glob
            child_mbr = self.world.canonical_mbr(child_key)
            for parent_key in keys:
                if parent_key == child_key:
                    continue
                parent_glob = self._regions[parent_key].glob
                parent_mbr = self.world.canonical_mbr(parent_key)
                hierarchic = (child_glob != parent_glob
                              and child_glob.is_within(parent_glob))
                geometric = (parent_mbr.contains_rect(child_mbr)
                             and parent_mbr.area > child_mbr.area)
                if hierarchic or geometric:
                    self._parents[child_key].add(parent_key)
                    self._children[parent_key].add(child_key)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def regions(self) -> List[str]:
        return sorted(self._regions)

    def has(self, glob: Union[Glob, str]) -> bool:
        return str(glob) in self._regions

    def parents_of(self, glob: Union[Glob, str]) -> List[str]:
        key = str(glob)
        if key not in self._parents:
            raise ServiceError(f"unknown symbolic region {key}")
        return sorted(self._parents[key])

    def children_of(self, glob: Union[Glob, str]) -> List[str]:
        key = str(glob)
        if key not in self._children:
            raise ServiceError(f"unknown symbolic region {key}")
        return sorted(self._children[key])

    def ancestors_of(self, glob: Union[Glob, str]) -> List[str]:
        """All transitive parents, nearest first by area."""
        key = str(glob)
        seen: Set[str] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            for parent in self._parents.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return sorted(
            seen, key=lambda k: self.world.canonical_mbr(k).area)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def finest_region_containing_point(self, p: Point) -> Optional[str]:
        """The smallest symbolic region containing a canonical point."""
        entity = self.world.smallest_region_containing(p)
        return str(entity.glob) if entity is not None else None

    def finest_region_containing_rect(self, rect: Rect) -> Optional[str]:
        """The smallest symbolic region fully containing ``rect``.

        This is how a fused coordinate estimate becomes "room 3216":
        the estimate rectangle is attributed to the tightest region
        that encloses it.
        """
        best_key: Optional[str] = None
        best_area = float("inf")
        for key in self._regions:
            mbr = self.world.canonical_mbr(key)
            if mbr.contains_rect(rect) and mbr.area < best_area:
                best_key = key
                best_area = mbr.area
        return best_key

    def coarsen(self, glob: Union[Glob, str], max_depth: int) -> str:
        """Coarsen a region to at most ``max_depth`` GLOB segments.

        The privacy operation: a policy of depth 2 turns
        ``SC/3/3216`` into ``SC/3`` (floor granularity).
        """
        parsed = Glob.parse(str(glob))
        truncated = parsed.truncated_to_depth(max_depth)
        return str(truncated)

    def regions_overlapping(self, rect: Rect) -> List[str]:
        """Symbolic regions whose MBR intersects ``rect``, smallest first."""
        overlapping = [
            key for key in self._regions
            if self.world.canonical_mbr(key).intersects(rect)
        ]
        return sorted(overlapping,
                      key=lambda k: self.world.canonical_mbr(k).area)

    def define_region(self, glob: Union[Glob, str], polygon: Polygon,
                      frame: str = "") -> None:
        """Add an application-defined symbolic region to the lattice.

        Supports Section 4's "creation of spatial regions and the
        association of different kinds of properties with these
        regions".  The region also lands in the world model so spatial
        queries see it.
        """
        parsed = Glob.parse(str(glob))
        entity = self.world.add_region(parsed, EntityType.REGION, polygon,
                                       frame)
        self._regions[str(parsed)] = entity
        # Relink: a single region insert is rare enough that a full
        # rebuild keeps the code simple and obviously correct.
        self._link()
