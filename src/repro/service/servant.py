"""The Location Service's remote face (paper Section 7).

"Gaia applications can then talk directly to the location service.
To access location information, we provide push and pull models."

The servant narrows the in-process API to wire-safe signatures: every
argument and result round-trips through the ORB codec.  Applications
resolve it from the naming service under :data:`SERVICE_NAME`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core import LocationEstimate, ProbabilityBucket
from repro.geometry import Rect
from repro.orb import NamingService, Orb
from repro.service.location_service import LocationService

SERVICE_NAME = "middlewhere/location-service"
NAMING_NAME = "middlewhere/naming"


class LocationServiceServant:
    """Wire-safe wrapper around a :class:`LocationService`."""

    ORB_EXPOSED = (
        "locate",
        "locate_symbolic",
        "confidence_in_region",
        "probability_in_region",
        "objects_in_region",
        "proximity",
        "colocation",
        "subscribe",
        "subscribe_proximity",
        "unsubscribe",
        "grade",
        "tracked_objects",
        "query",
        "trajectory",
        "speed",
    )

    def __init__(self, service: LocationService) -> None:
        self._service = service

    # ------------------------------------------------------------------
    # Pull mode
    # ------------------------------------------------------------------

    def locate(self, object_id: str, now: Optional[float] = None,
               requester: Optional[str] = None) -> LocationEstimate:
        return self._service.locate(object_id, now, requester)

    def locate_symbolic(self, object_id: str, now: Optional[float] = None,
                        requester: Optional[str] = None) -> Optional[str]:
        return self._service.locate_symbolic(object_id, now, requester)

    def confidence_in_region(self, object_id: str, region: Rect,
                             now: Optional[float] = None) -> float:
        return self._service.confidence_in_region(object_id, region, now)

    def probability_in_region(self, object_id: str, region: Rect,
                              now: Optional[float] = None) -> float:
        return self._service.probability_in_region(object_id, region, now)

    def objects_in_region(self, region: Rect, now: Optional[float] = None,
                          min_confidence: float = 0.5
                          ) -> List[List[Any]]:
        pairs = self._service.objects_in_region(region, now, min_confidence)
        return [[object_id, confidence] for object_id, confidence in pairs]

    def proximity(self, first: str, second: str, threshold: float,
                  now: Optional[float] = None) -> Dict[str, Any]:
        relation = self._service.proximity(first, second, threshold, now)
        return {"name": relation.name, "probability": relation.probability,
                "holds": relation.holds}

    def colocation(self, first: str, second: str,
                   granularity_depth: int = 3,
                   now: Optional[float] = None) -> Dict[str, Any]:
        relation = self._service.colocation(first, second,
                                            granularity_depth, now)
        return {"name": relation.name, "probability": relation.probability,
                "holds": relation.holds}

    def grade(self, confidence: float) -> ProbabilityBucket:
        return self._service.grade(confidence)

    def tracked_objects(self) -> List[str]:
        return self._service.db.tracked_objects()

    # ------------------------------------------------------------------
    # Push mode
    # ------------------------------------------------------------------

    def subscribe(self, region: Rect, remote_reference: str,
                  kind: str = "enter", object_id: Optional[str] = None,
                  threshold: float = 0.5,
                  bucket: Optional[ProbabilityBucket] = None) -> str:
        """Remote subscription: events push to the referenced servant."""
        return self._service.subscribe(
            region, kind=kind, object_id=object_id, threshold=threshold,
            bucket=bucket, remote_reference=remote_reference)

    def subscribe_proximity(self, first: str, second: str,
                            threshold_ft: float, remote_reference: str,
                            kind: str = "enter",
                            min_confidence: float = 0.25) -> str:
        """Remote proximity subscription (Section 5.3's distance
        condition)."""
        return self._service.subscribe_proximity(
            first, second, threshold_ft, kind=kind,
            min_confidence=min_confidence,
            remote_reference=remote_reference)

    def unsubscribe(self, subscription_id: str) -> bool:
        return self._service.unsubscribe(subscription_id)

    # ------------------------------------------------------------------
    # Extended queries
    # ------------------------------------------------------------------

    def query(self, text: str) -> List[Dict[str, Any]]:
        """Run a spatial SQL query (Section 5.1) over the wire.

        Rows carry only codec-safe values (the geometry column rides
        along as the registered Polygon/Point/Segment types).
        """
        return self._service.db.query(text)

    def trajectory(self, object_id: str,
                   t0: Optional[float] = None,
                   t1: Optional[float] = None) -> List[LocationEstimate]:
        """The object's recorded trajectory (requires history)."""
        history = self._require_history()
        return history.trajectory(object_id, t0, t1)

    def speed(self, object_id: str,
              window: float = 10.0) -> Optional[float]:
        """The object's trailing-window speed (requires history)."""
        history = self._require_history()
        return history.speed(object_id, window)

    def _require_history(self):
        history = self._service.history
        if history is None:
            from repro.errors import ServiceError
            raise ServiceError("the service keeps no location history")
        return history


def publish_service(service: LocationService, orb: Orb,
                    naming: Optional[NamingService] = None,
                    object_id: str = "location-service"
                    ) -> Tuple[str, LocationServiceServant]:
    """Register the servant with an ORB (and optionally the naming
    service); returns (reference, servant)."""
    servant = LocationServiceServant(service)
    reference = orb.register(object_id, servant)
    if naming is not None:
        naming.rebind(SERVICE_NAME, reference)
    return reference, servant
