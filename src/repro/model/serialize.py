"""World-model persistence: blueprints to JSON and back.

"The vertices of all the rooms and corridors in the building are
obtained from the blueprints of the building" (Section 4.6.1).  This
module is the blueprint format: a complete world model — coordinate
frames, entities with their geometry and properties, doors — round-
trips through a plain-JSON document, so deployments can be authored,
versioned and shipped as files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import WorldModelError
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model.coords import FrameTransform
from repro.model.glob import Glob
from repro.model.world import (
    Door,
    Entity,
    EntityType,
    Geometry,
    PassageKind,
    WorldModel,
)

FORMAT_VERSION = 1


def _encode_point(p: Point) -> List[float]:
    return [p.x, p.y, p.z]


def _decode_point(data: List[float]) -> Point:
    return Point(*data)


def _encode_geometry(geometry: Geometry) -> Dict[str, Any]:
    if isinstance(geometry, Point):
        return {"kind": "point", "point": _encode_point(geometry)}
    if isinstance(geometry, Segment):
        return {"kind": "line",
                "start": _encode_point(geometry.start),
                "end": _encode_point(geometry.end)}
    return {"kind": "polygon",
            "vertices": [_encode_point(v) for v in geometry.vertices]}


def _decode_geometry(data: Dict[str, Any]) -> Geometry:
    kind = data.get("kind")
    if kind == "point":
        return _decode_point(data["point"])
    if kind == "line":
        return Segment(_decode_point(data["start"]),
                       _decode_point(data["end"]))
    if kind == "polygon":
        return Polygon([_decode_point(v) for v in data["vertices"]])
    raise WorldModelError(f"unknown geometry kind {kind!r}")


def _encode_properties(properties: Dict[str, object]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in properties.items():
        if isinstance(value, Rect):
            out[key] = {"__rect__": [value.min_x, value.min_y,
                                     value.max_x, value.max_y]}
        elif isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            raise WorldModelError(
                f"property {key!r} of type {type(value).__name__} "
                "is not blueprint-serializable")
    return out


def _decode_properties(data: Dict[str, Any]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for key, value in data.items():
        if isinstance(value, dict) and "__rect__" in value:
            out[key] = Rect(*value["__rect__"])
        else:
            out[key] = value
    return out


def world_to_dict(world: WorldModel) -> Dict[str, Any]:
    """Serialize a world model to a plain-JSON-compatible dict."""
    frames = []
    for frame in world.frames.frames():
        transform = world.frames.transform_of(frame)
        frames.append({
            "name": frame,
            "parent": world.frames.parent_of(frame),
            "dx": transform.dx, "dy": transform.dy, "dz": transform.dz,
            "rotation": transform.rotation,
        })
    entities = []
    for entity in world.entities():
        entities.append({
            "glob": str(entity.glob),
            "type": entity.entity_type.value,
            "frame": entity.frame,
            "geometry": _encode_geometry(entity.geometry),
            "properties": _encode_properties(entity.properties),
        })
    doors = []
    for door in world.doors():
        doors.append({
            "glob": str(door.glob),
            "region_a": str(door.region_a),
            "region_b": str(door.region_b),
            "frame": door.frame,
            "kind": door.kind.value,
            "sill": {"start": _encode_point(door.sill.start),
                     "end": _encode_point(door.sill.end)},
        })
    return {
        "format": "middlewhere-blueprint",
        "version": FORMAT_VERSION,
        # The model's mutation counter (distinct from the format
        # version above).  Derived indexes — the region R-tree, the
        # navigation memos — key their caches on it, so a round-trip
        # must preserve it: a rebuilt world restarting at its own
        # add_* count could alias a cache keyed against the original.
        "world_version": world.version,
        "frames": frames,
        "entities": entities,
        "doors": doors,
    }


def world_from_dict(data: Dict[str, Any]) -> WorldModel:
    """Rebuild a world model from :func:`world_to_dict` output."""
    if data.get("format") != "middlewhere-blueprint":
        raise WorldModelError("not a middlewhere blueprint document")
    if data.get("version") != FORMAT_VERSION:
        raise WorldModelError(
            f"unsupported blueprint version {data.get('version')!r}")
    world = WorldModel()
    # Frames must be registered parents-first.
    pending = list(data.get("frames", []))
    registered = {""}
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for frame in pending:
            if frame["parent"] in registered:
                world.add_frame(frame["name"], frame["parent"],
                                FrameTransform(frame["dx"], frame["dy"],
                                               frame["dz"],
                                               frame["rotation"]))
                registered.add(frame["name"])
                progress = True
            else:
                remaining.append(frame)
        pending = remaining
    if pending:
        raise WorldModelError(
            f"orphan frames in blueprint: {[f['name'] for f in pending]}")

    for item in data.get("entities", []):
        world.add_entity(Entity(
            glob=Glob.parse(item["glob"]),
            entity_type=EntityType(item["type"]),
            geometry=_decode_geometry(item["geometry"]),
            frame=item["frame"],
            properties=_decode_properties(item.get("properties", {})),
        ))
    for item in data.get("doors", []):
        world.add_door(Door(
            glob=Glob.parse(item["glob"]),
            region_a=Glob.parse(item["region_a"]),
            region_b=Glob.parse(item["region_b"]),
            sill=Segment(_decode_point(item["sill"]["start"]),
                         _decode_point(item["sill"]["end"])),
            frame=item["frame"],
            kind=PassageKind(item["kind"]),
        ))
    if "world_version" in data:
        # Adopt the saved mutation counter (it is >= the rebuild's own
        # add_* count, so monotonicity holds) and drop any derived
        # state so nothing stays keyed to the transient rebuild values.
        world.version = int(data["world_version"])
        world._region_index = None
        world._universe = None
    return world


def world_to_json(world: WorldModel, indent: int = 2) -> str:
    """The blueprint as a JSON string."""
    return json.dumps(world_to_dict(world), indent=indent,
                      sort_keys=True)


def world_from_json(text: str) -> WorldModel:
    """Rebuild a world model from a blueprint JSON string."""
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise WorldModelError(f"invalid blueprint JSON: {exc}") from exc
    return world_from_dict(data)


def save_world(world: WorldModel, path: str) -> None:
    """Write a blueprint file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(world_to_json(world))


def load_world(path: str) -> WorldModel:
    """Read a blueprint file."""
    with open(path, "r", encoding="utf-8") as handle:
        return world_from_json(handle.read())
