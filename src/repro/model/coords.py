"""Hierarchical coordinate frames and conversions (paper Section 3).

"Each building, floor and room has its own coordinate axes and a point
of origin. ... MiddleWhere stores the relationships between the
different coordinate axes, and hence coordinates can be easily
converted from one system to another."

A frame is registered with its parent frame and the rigid transform
(translation + optional rotation + optional z offset) that maps local
coordinates into the parent.  Conversion between any two frames walks
up to their common ancestor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import CoordinateFrameError
from repro.geometry import Point, Polygon, Rect, Segment


@dataclass(frozen=True)
class FrameTransform:
    """Rigid transform from a child frame into its parent frame.

    A local point ``p`` maps to ``rotate(p, rotation) + (dx, dy, dz)``.
    Rotations are constrained to the plane; buildings are upright.
    """

    dx: float = 0.0
    dy: float = 0.0
    dz: float = 0.0
    rotation: float = 0.0  # radians, counter-clockwise

    def apply(self, p: Point) -> Point:
        """Map a point from the child frame into the parent frame."""
        if self.rotation:
            c = math.cos(self.rotation)
            s = math.sin(self.rotation)
            x = p.x * c - p.y * s
            y = p.x * s + p.y * c
        else:
            x, y = p.x, p.y
        return Point(x + self.dx, y + self.dy, p.z + self.dz)

    def invert(self, p: Point) -> Point:
        """Map a point from the parent frame back into the child frame."""
        x = p.x - self.dx
        y = p.y - self.dy
        z = p.z - self.dz
        if self.rotation:
            c = math.cos(-self.rotation)
            s = math.sin(-self.rotation)
            x, y = x * c - y * s, x * s + y * c
        return Point(x, y, z)


class FrameRegistry:
    """The tree of coordinate frames for a deployment.

    Frames are named by their GLOB path string (``"SC"``, ``"SC/3"``,
    ``"SC/3/3216"``); the root frame (``""``) is the world frame that
    all buildings hang off.  The fusion engine converts every sensor
    reading into a single *canonical* frame — in the paper, the
    building's — before constructing the lattice.
    """

    ROOT = ""

    def __init__(self) -> None:
        self._parents: Dict[str, str] = {}
        self._transforms: Dict[str, FrameTransform] = {}

    def register(self, frame: str, parent: str,
                 transform: FrameTransform) -> None:
        """Register ``frame`` as a child of ``parent``.

        ``parent`` must be the root or already registered, which keeps
        the structure a tree and conversion well-defined.
        """
        if not frame:
            raise CoordinateFrameError("cannot register the root frame")
        if frame in self._parents:
            raise CoordinateFrameError(f"frame {frame!r} already registered")
        if parent != self.ROOT and parent not in self._parents:
            raise CoordinateFrameError(f"unknown parent frame {parent!r}")
        if frame == parent:
            raise CoordinateFrameError(f"frame {frame!r} cannot be its own parent")
        self._parents[frame] = parent
        self._transforms[frame] = transform

    def knows(self, frame: str) -> bool:
        """Whether ``frame`` is the root or has been registered."""
        return frame == self.ROOT or frame in self._parents

    def transform_of(self, frame: str) -> FrameTransform:
        """The registered child-to-parent transform of ``frame``."""
        try:
            return self._transforms[frame]
        except KeyError:
            raise CoordinateFrameError(f"unknown frame {frame!r}") from None

    def parent_of(self, frame: str) -> str:
        if frame == self.ROOT:
            raise CoordinateFrameError("the root frame has no parent")
        try:
            return self._parents[frame]
        except KeyError:
            raise CoordinateFrameError(f"unknown frame {frame!r}") from None

    def frames(self) -> List[str]:
        """All registered frame names."""
        return sorted(self._parents)

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    def _chain_to_root(self, frame: str) -> List[str]:
        chain = [frame]
        seen = {frame}
        while chain[-1] != self.ROOT:
            parent = self.parent_of(chain[-1])
            if parent in seen:
                raise CoordinateFrameError(f"frame cycle at {parent!r}")
            chain.append(parent)
            seen.add(parent)
        return chain

    def convert_point(self, p: Point, source: str, target: str) -> Point:
        """Express a point given in ``source`` frame in ``target`` frame."""
        if source == target:
            return p
        if not self.knows(source):
            raise CoordinateFrameError(f"unknown source frame {source!r}")
        if not self.knows(target):
            raise CoordinateFrameError(f"unknown target frame {target!r}")
        up_source = self._chain_to_root(source)
        up_target = self._chain_to_root(target)
        common = self._common_ancestor(up_source, up_target)
        # Lift p from source up to the common ancestor...
        current = p
        for frame in up_source:
            if frame == common:
                break
            current = self._transforms[frame].apply(current)
        # ...then push it down into the target frame.
        down: List[str] = []
        for frame in up_target:
            if frame == common:
                break
            down.append(frame)
        for frame in reversed(down):
            current = self._transforms[frame].invert(current)
        return current

    @staticmethod
    def _common_ancestor(chain_a: List[str], chain_b: List[str]) -> str:
        set_b = set(chain_b)
        for frame in chain_a:
            if frame in set_b:
                return frame
        raise CoordinateFrameError("frames share no common ancestor")

    def convert_rect(self, rect: Rect, source: str, target: str) -> Rect:
        """Convert a rectangle between frames.

        With a rotated frame the image of a rectangle is not axis-
        aligned; we return its MBR, which is the approximation the
        paper adopts everywhere.
        """
        if source == target:
            return rect
        corners = [self.convert_point(c, source, target)
                   for c in rect.corners]
        return Rect.from_points(corners)

    def convert_polygon(self, polygon: Polygon, source: str,
                        target: str) -> Polygon:
        """Convert a polygon's vertices between frames."""
        if source == target:
            return polygon
        return Polygon([self.convert_point(v, source, target)
                        for v in polygon.vertices])

    def convert_segment(self, segment: Segment, source: str,
                        target: str) -> Segment:
        """Convert a segment between frames."""
        if source == target:
            return segment
        return Segment(
            self.convert_point(segment.start, source, target),
            self.convert_point(segment.end, source, target),
        )
