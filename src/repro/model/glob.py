"""GLOBs — Gaia LOcation Byte-strings (paper Section 3.1).

A GLOB is a hierarchical, path-like representation of a location that
can carry either a symbolic leaf (``SC/3/3216/lightswitch1``) or a
coordinate leaf (``SC/3/3216/(12,3,4)``).  Coordinate leaves may hold
one point (a point location), two points (a line, e.g. a door sill) or
three-plus points (a polygon region such as a room outline).

The prefix of a GLOB names the coordinate frame its coordinates are
expressed in: ``SC/3/3216/(12,3,4)`` is the point (12, 3, 4) in the
frame of room 3216 on floor 3 of building SC.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import GlobError
from repro.geometry import Point

_COORD_RE = re.compile(
    r"^\(\s*(-?\d+(?:\.\d+)?)\s*,\s*(-?\d+(?:\.\d+)?)"
    r"(?:\s*,\s*(-?\d+(?:\.\d+)?))?\s*\)$"
)
_NAME_RE = re.compile(r"^[A-Za-z0-9_\-\.]+$")


def _format_number(value: float) -> str:
    """Render a coordinate without a trailing ``.0`` when integral."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class Glob:
    """A parsed GLOB.

    Attributes:
        path: the symbolic path segments, e.g. ``("SC", "3", "3216")``.
        coordinates: parsed coordinate tuple(s) when the leaf is a
            coordinate expression, otherwise ``None``.
    """

    path: Tuple[str, ...]
    coordinates: Optional[Tuple[Point, ...]] = None

    def __post_init__(self) -> None:
        if not self.path and not self.coordinates:
            raise GlobError("empty GLOB")
        for segment in self.path:
            if not _NAME_RE.match(segment):
                raise GlobError(f"invalid GLOB path segment: {segment!r}")
        if self.coordinates is not None and len(self.coordinates) == 0:
            raise GlobError("coordinate GLOB with no points")

    # ------------------------------------------------------------------
    # Parsing / formatting
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Glob":
        """Parse a GLOB string.

        >>> Glob.parse("SC/3/3216/(12,3,4)").coordinates[0]
        Point(12, 3, 4)
        >>> Glob.parse("SC/3/3216/lightswitch1").leaf
        'lightswitch1'
        """
        if not isinstance(text, str) or not text.strip():
            raise GlobError(f"cannot parse GLOB from {text!r}")
        raw = text.strip().strip("/")
        segments = _split_segments(raw)
        path: List[str] = []
        points: List[Point] = []
        for segment in segments:
            match = _COORD_RE.match(segment)
            if match:
                x, y, z = match.group(1), match.group(2), match.group(3)
                points.append(Point(float(x), float(y),
                                    float(z) if z is not None else 0.0))
            else:
                if points:
                    raise GlobError(
                        f"symbolic segment {segment!r} after coordinates in "
                        f"{text!r}"
                    )
                path.append(segment)
        return cls(tuple(path), tuple(points) if points else None)

    def format(self) -> str:
        """Render back to the canonical GLOB string form."""
        parts = list(self.path)
        if self.coordinates:
            for p in self.coordinates:
                if p.z:
                    parts.append(
                        f"({_format_number(p.x)},{_format_number(p.y)},"
                        f"{_format_number(p.z)})"
                    )
                else:
                    parts.append(
                        f"({_format_number(p.x)},{_format_number(p.y)})"
                    )
        return "/".join(parts)

    def __str__(self) -> str:
        return self.format()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def is_coordinate(self) -> bool:
        """Whether the GLOB carries coordinate data."""
        return self.coordinates is not None

    @property
    def is_symbolic(self) -> bool:
        """Whether the GLOB is purely symbolic."""
        return self.coordinates is None

    @property
    def kind(self) -> str:
        """``'point'``, ``'line'`` or ``'polygon'`` for coordinate GLOBs,
        ``'symbolic'`` otherwise."""
        if self.coordinates is None:
            return "symbolic"
        n = len(self.coordinates)
        if n == 1:
            return "point"
        if n == 2:
            return "line"
        return "polygon"

    @property
    def prefix(self) -> Tuple[str, ...]:
        """The enclosing-space path (everything but the symbolic leaf).

        For a coordinate GLOB the whole symbolic path is the prefix;
        for a symbolic GLOB it is the path minus the final segment.
        """
        if self.is_coordinate:
            return self.path
        return self.path[:-1]

    @property
    def leaf(self) -> Optional[str]:
        """The final symbolic segment, or ``None`` for coordinate GLOBs."""
        if self.is_coordinate or not self.path:
            return None
        return self.path[-1]

    @property
    def depth(self) -> int:
        """Number of symbolic path segments."""
        return len(self.path)

    def parent(self) -> "Glob":
        """The GLOB one level up (coordinates dropped first)."""
        if self.coordinates is not None:
            return Glob(self.path, None)
        if len(self.path) <= 1:
            raise GlobError(f"GLOB {self} has no parent")
        return Glob(self.path[:-1], None)

    def ancestors(self) -> List["Glob"]:
        """All enclosing symbolic GLOBs, outermost first."""
        return [Glob(self.path[: i + 1]) for i in range(len(self.path) - 1)]

    def child(self, name: str) -> "Glob":
        """A symbolic child of this GLOB."""
        if self.is_coordinate:
            raise GlobError("cannot extend a coordinate GLOB")
        return Glob(self.path + (name,), None)

    def with_coordinates(self, points: Sequence[Point]) -> "Glob":
        """This GLOB's path with coordinate data attached."""
        if self.is_coordinate:
            raise GlobError("GLOB already has coordinates")
        return Glob(self.path, tuple(points))

    def is_within(self, other: "Glob") -> bool:
        """Whether this GLOB's symbolic path lies under ``other``'s.

        ``SC/3/3216/light1`` is within ``SC/3`` and within ``SC/3/3216``
        but not within ``SC/2``.
        """
        if other.is_coordinate:
            return False
        prefix = other.path
        return (len(self.path) >= len(prefix)
                and self.path[: len(prefix)] == prefix)

    def truncated_to_depth(self, depth: int) -> "Glob":
        """The GLOB coarsened to at most ``depth`` symbolic segments.

        This implements the privacy-granularity operation of
        Section 4.5: a user's location "can only be revealed upto a
        certain granularity (like a room or a floor)".
        """
        if depth < 1:
            raise GlobError("granularity depth must be >= 1")
        if depth >= len(self.path) and self.is_symbolic:
            return self
        return Glob(self.path[: min(depth, len(self.path))], None)


def _split_segments(raw: str) -> List[str]:
    """Split on ``/`` but keep coordinate tuples intact.

    The paper writes polygon GLOBs like ``SC/3/(45,12), (45,40), ...``
    with comma-separated tuples; we accept both comma- and
    slash-separated coordinate lists.
    """
    segments: List[str] = []
    buf: List[str] = []
    depth = 0
    for ch in raw:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise GlobError(f"unbalanced parentheses in GLOB {raw!r}")
        if ch == "/" and depth == 0:
            segments.append("".join(buf))
            buf = []
        elif ch == "," and depth == 0:
            segments.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if depth != 0:
        raise GlobError(f"unbalanced parentheses in GLOB {raw!r}")
    segments.append("".join(buf))
    out = [s.strip() for s in segments if s.strip()]
    if not out:
        raise GlobError(f"empty GLOB: {raw!r}")
    return out
