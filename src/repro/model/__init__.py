"""Hybrid location model: GLOBs, coordinate frames and the world model.

Implements Section 3 of the paper: the hierarchical symbolic +
coordinate location representation, per-building/floor/room coordinate
frames with conversion between them, and the model of the physical
space (rooms, corridors, doors, static objects).
"""

from repro.model.coords import FrameRegistry, FrameTransform
from repro.model.glob import Glob
from repro.model.serialize import (
    load_world,
    save_world,
    world_from_dict,
    world_from_json,
    world_to_dict,
    world_to_json,
)
from repro.model.world import (
    Door,
    Entity,
    EntityType,
    Geometry,
    PassageKind,
    WorldModel,
    geometry_kind,
)

__all__ = [
    "Door",
    "Entity",
    "EntityType",
    "FrameRegistry",
    "FrameTransform",
    "Geometry",
    "Glob",
    "PassageKind",
    "WorldModel",
    "geometry_kind",
    "load_world",
    "save_world",
    "world_from_dict",
    "world_from_json",
    "world_to_dict",
    "world_to_json",
]
