"""The world model: buildings, floors, rooms, corridors, doors, objects.

MiddleWhere "maintains a model of the physical layout of the
environment" (Section 1) in a spatial database.  This module defines
the in-memory entity model that is loaded into the database: every
entity has a GLOB identity, a type, a geometry (point, line or
polygon) expressed in some coordinate frame, and free-form spatial
properties (orientation, power outlets, Bluetooth signal, ...).

Doors are first-class: the passage relations ECFP/ECRP/ECNP of
Section 4.6.1 are derived from door records and shared walls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Union

from repro.errors import WorldModelError
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model.coords import FrameRegistry, FrameTransform
from repro.model.glob import Glob

Geometry = Union[Point, Segment, Polygon]


class EntityType(str, Enum):
    """Semantic type of a spatial entity (the ObjectType of Table 1)."""

    BUILDING = "Building"
    FLOOR = "Floor"
    ROOM = "Room"
    CORRIDOR = "Corridor"
    DOOR = "Door"
    WALL = "Wall"
    DISPLAY = "Display"
    WORKSTATION = "Workstation"
    TABLE = "Table"
    CHAIR = "Chair"
    LIGHT_SWITCH = "LightSwitch"
    SENSOR = "Sensor"
    REGION = "Region"  # application-defined symbolic region

    @property
    def is_enclosing(self) -> bool:
        """Whether entities of this type enclose other entities."""
        return self in (EntityType.BUILDING, EntityType.FLOOR,
                        EntityType.ROOM, EntityType.CORRIDOR,
                        EntityType.REGION)


class PassageKind(str, Enum):
    """How permissive a passage between two regions is (Section 4.6.1)."""

    FREE = "free"              # ECFP: an open doorway
    RESTRICTED = "restricted"  # ECRP: locked door, card swipe or key
    NONE = "none"              # ECNP: wall only


def geometry_kind(geometry: Geometry) -> str:
    """``'point'``, ``'line'`` or ``'polygon'`` (the GeometryType column)."""
    if isinstance(geometry, Point):
        return "point"
    if isinstance(geometry, Segment):
        return "line"
    return "polygon"


@dataclass
class Entity:
    """One spatial entity: a row of the paper's Table 1.

    ``geometry`` is expressed in coordinate frame ``frame`` (a GLOB
    path string).  ``properties`` carries arbitrary attributes used by
    SQL-style queries ("has power outlets", "high Bluetooth signal").
    """

    glob: Glob
    entity_type: EntityType
    geometry: Geometry
    frame: str
    properties: Dict[str, object] = field(default_factory=dict)

    @property
    def identifier(self) -> str:
        """The ObjectIdentifier column: the GLOB's leaf name."""
        leaf = self.glob.leaf
        if leaf is None:
            raise WorldModelError(f"entity GLOB {self.glob} has no leaf")
        return leaf

    @property
    def glob_prefix(self) -> str:
        """The GlobPrefix column: the enclosing space's path."""
        return "/".join(self.glob.prefix)


@dataclass
class Door:
    """A passage between two enclosing regions.

    ``sill`` is the door's line geometry in ``frame``.  ``kind``
    distinguishes free and restricted passages.
    """

    glob: Glob
    region_a: Glob
    region_b: Glob
    sill: Segment
    frame: str
    kind: PassageKind = PassageKind.FREE

    def connects(self, a: Glob, b: Glob) -> bool:
        """Whether this door joins regions ``a`` and ``b`` (in any order)."""
        return (self.region_a, self.region_b) in ((a, b), (b, a))


class WorldModel:
    """The complete model of a deployment's physical space.

    The model owns the :class:`FrameRegistry` so all geometry can be
    expressed in the *canonical frame* — the root world frame — which
    is what the fusion engine and spatial database operate in
    ("All locations are converted to a common coordinate format (such
    as the building's)", Section 4.1.2).
    """

    def __init__(self) -> None:
        self.frames = FrameRegistry()
        self._entities: Dict[str, Entity] = {}
        self._doors: Dict[str, Door] = {}
        self._universe: Optional[Rect] = None
        # Monotonic mutation counter: bumped whenever frames, entities
        # or doors change.  Derived indexes (region R-trees, navigation
        # distance memos) key their caches on it.
        self.version = 0
        # Lazy point-location index over enclosing regions:
        # (version, rtree of (MBR, key), key -> (polygon, area, order)).
        self._region_index: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_frame(self, frame: str, parent: str,
                  transform: FrameTransform) -> None:
        """Register a coordinate frame (building, floor or room axes)."""
        self.frames.register(frame, parent, transform)
        self.version += 1

    def add_entity(self, entity: Entity) -> Entity:
        """Add an entity; its frame must already be registered."""
        key = str(entity.glob)
        if key in self._entities:
            raise WorldModelError(f"duplicate entity {key}")
        if not self.frames.knows(entity.frame):
            raise WorldModelError(
                f"entity {key} uses unknown frame {entity.frame!r}")
        self._entities[key] = entity
        self._universe = None
        self.version += 1
        return entity

    def add_region(self, glob: Glob, entity_type: EntityType,
                   polygon: Polygon, frame: str,
                   **properties: object) -> Entity:
        """Convenience: add a polygonal enclosing region."""
        return self.add_entity(
            Entity(glob, entity_type, polygon, frame, dict(properties)))

    def add_door(self, door: Door) -> Door:
        """Add a door; both regions it connects must already exist."""
        key = str(door.glob)
        if key in self._doors:
            raise WorldModelError(f"duplicate door {key}")
        for region in (door.region_a, door.region_b):
            if str(region) not in self._entities:
                raise WorldModelError(
                    f"door {key} references unknown region {region}")
        if not self.frames.knows(door.frame):
            raise WorldModelError(
                f"door {key} uses unknown frame {door.frame!r}")
        self._doors[key] = door
        self.version += 1
        return door

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, glob: Union[Glob, str]) -> Entity:
        key = str(glob)
        try:
            return self._entities[key]
        except KeyError:
            raise WorldModelError(f"unknown entity {key}") from None

    def has(self, glob: Union[Glob, str]) -> bool:
        return str(glob) in self._entities

    def entities(self) -> List[Entity]:
        return list(self._entities.values())

    def doors(self) -> List[Door]:
        return list(self._doors.values())

    def entities_of_type(self, entity_type: EntityType) -> List[Entity]:
        return [e for e in self._entities.values()
                if e.entity_type is entity_type]

    def children_of(self, glob: Union[Glob, str]) -> List[Entity]:
        """Entities whose GLOB prefix is exactly ``glob``."""
        prefix = str(glob)
        return [e for e in self._entities.values()
                if e.glob_prefix == prefix]

    def descendants_of(self, glob: Union[Glob, str]) -> List[Entity]:
        """Entities anywhere under ``glob`` in the hierarchy."""
        parent = Glob.parse(str(glob))
        return [e for e in self._entities.values()
                if e.glob != parent and e.glob.is_within(parent)]

    def doors_of(self, region: Union[Glob, str]) -> List[Door]:
        """All doors on the boundary of ``region``."""
        key = str(region)
        return [d for d in self._doors.values()
                if str(d.region_a) == key or str(d.region_b) == key]

    def doors_between(self, a: Union[Glob, str],
                      b: Union[Glob, str]) -> List[Door]:
        """All doors joining regions ``a`` and ``b``."""
        glob_a = Glob.parse(str(a))
        glob_b = Glob.parse(str(b))
        return [d for d in self._doors.values() if d.connects(glob_a, glob_b)]

    # ------------------------------------------------------------------
    # Canonical geometry
    # ------------------------------------------------------------------

    def canonical_geometry(self, glob: Union[Glob, str]) -> Geometry:
        """An entity's geometry expressed in the root world frame."""
        entity = self.get(glob)
        geometry = entity.geometry
        if isinstance(geometry, Point):
            return self.frames.convert_point(
                geometry, entity.frame, FrameRegistry.ROOT)
        if isinstance(geometry, Segment):
            return self.frames.convert_segment(
                geometry, entity.frame, FrameRegistry.ROOT)
        return self.frames.convert_polygon(
            geometry, entity.frame, FrameRegistry.ROOT)

    def canonical_polygon(self, glob: Union[Glob, str]) -> Polygon:
        """An enclosing region's polygon in the root frame."""
        geometry = self.canonical_geometry(glob)
        if not isinstance(geometry, Polygon):
            raise WorldModelError(f"entity {glob} is not a polygon region")
        return geometry

    def canonical_mbr(self, glob: Union[Glob, str]) -> Rect:
        """An entity's minimum bounding rectangle in the root frame."""
        geometry = self.canonical_geometry(glob)
        if isinstance(geometry, Point):
            return Rect(geometry.x, geometry.y, geometry.x, geometry.y)
        if isinstance(geometry, Segment):
            return Rect.from_points([geometry.start, geometry.end])
        return geometry.mbr

    def universe(self) -> Rect:
        """The MBR of everything modelled — the paper's region ``U``.

        "In our setting, U is the floor-area of the entire building"
        (Section 4.1.2).
        """
        if self._universe is None:
            if not self._entities:
                raise WorldModelError("empty world model has no universe")
            mbrs = [self.canonical_mbr(key) for key in self._entities]
            result = mbrs[0]
            for mbr in mbrs[1:]:
                result = result.union_mbr(mbr)
            self._universe = result
        return self._universe

    def universe_area(self) -> float:
        return self.universe().area

    # ------------------------------------------------------------------
    # Symbolic resolution
    # ------------------------------------------------------------------

    def _point_index(self):
        """R-tree over enclosing-region MBRs, keyed on the version.

        Imported lazily: ``repro.spatialdb`` depends on this module,
        so a top-level import would be circular.
        """
        from repro.spatialdb.rtree import RTree

        index = self._region_index
        if index is not None and index[0] == self.version:
            return index[1], index[2]
        meta = {}
        entries = []
        order = 0
        for key, entity in self._entities.items():
            if not entity.entity_type.is_enclosing:
                continue
            polygon = self.canonical_polygon(entity.glob)
            meta[key] = (polygon, polygon.area, order)
            entries.append((polygon.mbr, key))
            order += 1
        tree = RTree.from_entries(entries)
        self._region_index = (self.version, tree, meta)
        return tree, meta

    def smallest_region_containing(self, p: Point) -> Optional[Entity]:
        """The smallest enclosing region containing a canonical point.

        Implements coordinate-to-symbolic conversion: given a fused
        coordinate estimate, report "room 3216" rather than numbers.
        Index-backed: only regions whose MBR covers the point are
        tested against the polygon; ties on polygon area break by
        registration order, matching the reference scan's strict
        ``<`` over the insertion-ordered entity dict.
        """
        tree, meta = self._point_index()
        best_key: Optional[str] = None
        best = (float("inf"), -1)
        for key in tree.search_point(p):
            polygon, area, order = meta[key]
            if polygon.contains_point(p) and (area, order) < best:
                best_key = key
                best = (area, order)
        return self._entities[best_key] if best_key is not None else None

    def smallest_region_containing_reference(
            self, p: Point) -> Optional[Entity]:
        """The pre-index linear scan, kept for equivalence tests."""
        best: Optional[Entity] = None
        best_area = float("inf")
        for entity in self._entities.values():
            if not entity.entity_type.is_enclosing:
                continue
            polygon = self.canonical_polygon(entity.glob)
            if polygon.contains_point(p) and polygon.area < best_area:
                best = entity
                best_area = polygon.area
        return best

    def regions_overlapping(self, rect: Rect) -> List[Entity]:
        """All enclosing regions whose MBR intersects ``rect``."""
        out: List[Entity] = []
        for entity in self._entities.values():
            if not entity.entity_type.is_enclosing:
                continue
            if self.canonical_mbr(entity.glob).intersects(rect):
                out.append(entity)
        return out

    def resolve_symbolic(self, glob: Union[Glob, str]) -> Rect:
        """Resolve a symbolic GLOB to its canonical MBR.

        "Each symbolic location is associated with a coordinate
        location in a certain coordinate system" (Section 3).
        """
        return self.canonical_mbr(glob)
