"""A small object request broker — the CORBA role of Section 7.

Servants register under object ids; clients resolve stringified
references into proxies and invoke methods across an in-process or
TCP transport.  A naming service provides Gaia-Space-Repository-style
discovery and event channels push trigger notifications.
"""

from repro.orb.core import ObjectAdapter, Orb, Proxy
from repro.orb.events import EventChannel
from repro.orb.naming import NamingService
from repro.orb.serialization import dumps, loads, register_type
from repro.orb.transport import (
    InProcTransport,
    TcpServer,
    TcpTransport,
)
from repro.orb.wire import register_packed

__all__ = [
    "EventChannel",
    "InProcTransport",
    "NamingService",
    "ObjectAdapter",
    "Orb",
    "Proxy",
    "TcpServer",
    "TcpTransport",
    "dumps",
    "loads",
    "register_packed",
    "register_type",
]
