"""Wire serialization for the object request broker.

CORBA marshals IDL types; we marshal JSON with tagged extension types
so the library's value objects (rectangles, points, GLOBs, location
estimates) cross the wire intact.  The codec is strict: unknown types
raise instead of silently pickling, keeping the wire format
language-neutral in spirit and safe to expose on a TCP port (no
arbitrary code execution on decode, unlike pickle).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Tuple

from repro.core.classify import ProbabilityBucket
from repro.core.estimate import LocationEstimate
from repro.errors import OrbError
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model import Glob

_TYPE_KEY = "__type__"

Encoder = Callable[[Any], Dict[str, Any]]
Decoder = Callable[[Dict[str, Any]], Any]

_ENCODERS: Dict[type, Tuple[str, Encoder]] = {}
_DECODERS: Dict[str, Decoder] = {}


def register_type(name: str, cls: type, encoder: Encoder,
                  decoder: Decoder) -> None:
    """Register a value type with the codec (idempotent per name)."""
    _ENCODERS[cls] = (name, encoder)
    _DECODERS[name] = decoder


def _encode_value(value: Any) -> Any:
    # Registered types first: a str-subclassing enum must hit its
    # encoder, not the bare-string fast path.
    registered = _ENCODERS.get(type(value))
    if registered is not None:
        name, encoder = registered
        payload = {k: _encode_value(v) for k, v in encoder(value).items()}
        payload[_TYPE_KEY] = name
        return payload
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise OrbError(f"non-string dict key {key!r} on the wire")
            if key == _TYPE_KEY:
                raise OrbError(f"dict key {_TYPE_KEY!r} is reserved")
            out[key] = _encode_value(item)
        return out
    raise OrbError(f"cannot serialize {type(value).__name__}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    if isinstance(value, dict):
        name = value.get(_TYPE_KEY)
        if name is None:
            return {k: _decode_value(v) for k, v in value.items()}
        decoder = _DECODERS.get(name)
        if decoder is None:
            raise OrbError(f"unknown wire type {name!r}")
        payload = {k: _decode_value(v) for k, v in value.items()
                   if k != _TYPE_KEY}
        return decoder(payload)
    return value


def dumps(message: Any) -> bytes:
    """Serialize a message to UTF-8 JSON bytes.

    ``allow_nan=False``: the stdlib default would emit the
    non-standard ``NaN``/``Infinity`` tokens, which no strict JSON
    parser accepts — a silent break of the codec's language-neutral
    contract.  Non-finite floats are rejected at encode time instead.
    """
    try:
        return json.dumps(_encode_value(message), allow_nan=False,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise OrbError(f"serialization failed: {exc}") from exc


def loads(data: bytes) -> Any:
    """Deserialize UTF-8 JSON bytes back into a message."""
    try:
        return _decode_value(json.loads(data.decode("utf-8")))
    except (ValueError, UnicodeDecodeError) as exc:
        raise OrbError(f"deserialization failed: {exc}") from exc


# ----------------------------------------------------------------------
# Built-in value types
# ----------------------------------------------------------------------

register_type(
    "Point", Point,
    lambda p: {"x": p.x, "y": p.y, "z": p.z},
    lambda d: Point(d["x"], d["y"], d.get("z", 0.0)),
)

register_type(
    "Rect", Rect,
    lambda r: {"min_x": r.min_x, "min_y": r.min_y,
               "max_x": r.max_x, "max_y": r.max_y},
    lambda d: Rect(d["min_x"], d["min_y"], d["max_x"], d["max_y"]),
)

register_type(
    "Segment", Segment,
    lambda s: {"start": s.start, "end": s.end},
    lambda d: Segment(d["start"], d["end"]),
)

register_type(
    "Polygon", Polygon,
    lambda p: {"vertices": list(p.vertices)},
    lambda d: Polygon(d["vertices"]),
)

register_type(
    "Glob", Glob,
    lambda g: {"text": g.format()},
    lambda d: Glob.parse(d["text"]),
)

register_type(
    "ProbabilityBucket", ProbabilityBucket,
    lambda b: {"value": b.value},
    lambda d: ProbabilityBucket(d["value"]),
)

register_type(
    "LocationEstimate", LocationEstimate,
    lambda e: {
        "object_id": e.object_id,
        "rect": e.rect,
        "probability": e.probability,
        "bucket": e.bucket,
        "time": e.time,
        "sources": list(e.sources),
        "moving": e.moving,
        "symbolic": e.symbolic,
        "posterior": e.posterior,
    },
    lambda d: LocationEstimate(
        object_id=d["object_id"],
        rect=d["rect"],
        probability=d["probability"],
        bucket=d["bucket"],
        time=d["time"],
        sources=tuple(d.get("sources", ())),
        moving=d.get("moving", False),
        symbolic=d.get("symbolic"),
        posterior=d.get("posterior", 0.0),
    ),
)
