"""Naming service — the Gaia Space Repository stand-in.

"Gaia applications can discover the location service component of
MiddleWhere by querying the Gaia Space Repository service, which
provides a list of available services" (Section 7).  The naming
service is itself a servant, so discovery happens over the same ORB
as everything else.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.errors import NamingError


class NamingService:
    """Name -> stringified-reference registry.

    Thread-safe; rebinding an existing name requires ``rebind`` so a
    misconfigured second service instance cannot silently shadow the
    first.
    """

    def __init__(self) -> None:
        self._bindings: Dict[str, str] = {}
        self._lock = threading.Lock()

    def bind(self, name: str, reference: str) -> None:
        """Register a service reference under a fresh name."""
        if not name:
            raise NamingError("empty service name")
        with self._lock:
            if name in self._bindings:
                raise NamingError(f"name {name!r} is already bound")
            self._bindings[name] = reference

    def rebind(self, name: str, reference: str) -> None:
        """Register, replacing any existing binding."""
        if not name:
            raise NamingError("empty service name")
        with self._lock:
            self._bindings[name] = reference

    def unbind(self, name: str) -> bool:
        with self._lock:
            return self._bindings.pop(name, None) is not None

    def resolve(self, name: str) -> str:
        """The reference bound to ``name`` (raises when unknown)."""
        with self._lock:
            reference = self._bindings.get(name)
        if reference is None:
            raise NamingError(f"no service bound as {name!r}")
        return reference

    def resolve_or_none(self, name: str) -> Optional[str]:
        with self._lock:
            return self._bindings.get(name)

    def list_services(self) -> List[str]:
        """All bound names — the Space Repository's service list."""
        with self._lock:
            return sorted(self._bindings)
