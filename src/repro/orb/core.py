"""The object request broker: servants, references, proxies.

The minimum CORBA surface MiddleWhere needs (Section 7): register a
servant under an object id, hand out a stringified reference (our IOR
equivalent), and let clients invoke methods through a proxy that is
oblivious to whether the servant is in-process or across TCP.

References look like::

    inproc://location-service
    tcp://127.0.0.1:42107/location-service

Only methods not starting with ``_`` are remotely invocable, and a
servant can restrict further with an ``ORB_EXPOSED`` allowlist.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse

from repro.errors import OrbError, RemoteInvocationError
from repro.orb.transport import (
    InProcTransport,
    TcpServer,
    TcpTransport,
)


class ObjectAdapter:
    """Maps object ids to servants and dispatches requests to them."""

    def __init__(self) -> None:
        self._servants: Dict[str, object] = {}
        self._lock = threading.Lock()

    def register(self, object_id: str, servant: object) -> None:
        if not object_id or "/" in object_id:
            raise OrbError(f"invalid object id {object_id!r}")
        with self._lock:
            if object_id in self._servants:
                raise OrbError(f"object id {object_id!r} already registered")
            self._servants[object_id] = servant

    def unregister(self, object_id: str) -> bool:
        with self._lock:
            return self._servants.pop(object_id, None) is not None

    def servant(self, object_id: str) -> object:
        with self._lock:
            servant = self._servants.get(object_id)
        if servant is None:
            raise OrbError(f"no servant registered as {object_id!r}")
        return servant

    def object_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._servants))

    # ------------------------------------------------------------------

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request and wrap result/exception uniformly."""
        try:
            object_id = request["object"]
            method_name = request["method"]
            args = request.get("args", [])
            kwargs = request.get("kwargs", {})
        except (KeyError, TypeError):
            return {"error": {"type": "OrbError",
                              "message": "malformed request"}}
        try:
            servant = self.servant(object_id)
            method = self._lookup(servant, method_name)
            result = method(*args, **kwargs)
            return {"result": result}
        except Exception as exc:  # noqa: BLE001 — faults cross the wire
            return {"error": {"type": type(exc).__name__,
                              "message": str(exc)}}

    @staticmethod
    def _lookup(servant: object, method_name: str) -> Any:
        if method_name.startswith("_"):
            raise OrbError(f"method {method_name!r} is not remotely callable")
        exposed = getattr(servant, "ORB_EXPOSED", None)
        if exposed is not None and method_name not in exposed:
            raise OrbError(f"method {method_name!r} is not exposed")
        method = getattr(servant, method_name, None)
        if method is None or not callable(method):
            raise OrbError(
                f"{type(servant).__name__} has no method {method_name!r}")
        return method


def _raise_or_result(response: Dict[str, Any]) -> Any:
    if "error" in response:
        error = response["error"]
        raise RemoteInvocationError(
            error.get("type", "unknown"),
            error.get("message", ""))
    return response.get("result")


class _AsyncResult:
    """A waitable handle for one asynchronous proxy invocation."""

    __slots__ = ("_handle",)

    def __init__(self, handle: Any) -> None:
        self._handle = handle

    def done(self) -> bool:
        return self._handle.done()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Wait for the response; raises the remote error if any."""
        return _raise_or_result(self._handle.result(timeout))


class Proxy:
    """A client-side stub: attribute access becomes remote invocation.

    Method stubs are built once per proxy and cached, so the hot path
    pays a plain attribute lookup instead of a closure allocation per
    call.

    >>> locator = orb.resolve("inproc://location-service")
    >>> estimate = locator.locate("alice")        # doctest: +SKIP
    """

    def __init__(self, transport: Any, object_id: str, reference: str) -> None:
        self._transport = transport
        self._object_id = object_id
        self._reference = reference

    @property
    def orb_reference(self) -> str:
        return self._reference

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)

        def invoke(*args: Any, **kwargs: Any) -> Any:
            return _raise_or_result(self._transport.invoke({
                "object": self._object_id,
                "method": name,
                "args": list(args),
                "kwargs": dict(kwargs),
            }))

        invoke.__name__ = name
        # Cache the stub: __getattr__ only fires on a miss, so every
        # later `proxy.locate` hits the instance dict directly.
        self.__dict__[name] = invoke
        return invoke

    def orb_invoke_async(self, method: str, *args: Any,
                         **kwargs: Any) -> _AsyncResult:
        """Submit an invocation without waiting for the response.

        On a multiplexed transport many of these can be in flight on
        one connection; on transports without an async path the call
        completes synchronously and the handle is already resolved —
        the caller's collect loop works either way.
        """
        request = {
            "object": self._object_id,
            "method": method,
            "args": list(args),
            "kwargs": dict(kwargs),
        }
        submit = getattr(self._transport, "invoke_async", None)
        if submit is not None:
            return _AsyncResult(submit(request))
        return _AsyncResult(_SyncHandle(self._transport, request))

    def __repr__(self) -> str:
        return f"Proxy({self._reference})"


class _SyncHandle:
    """Adapter giving a synchronous transport the async-handle shape."""

    __slots__ = ("_response", "_error")

    def __init__(self, transport: Any, request: Dict[str, Any]) -> None:
        self._response: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None
        try:
            self._response = transport.invoke(request)
        except BaseException as exc:  # noqa: BLE001 — delivered on wait
            self._error = exc

    def done(self) -> bool:
        return True

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class Orb:
    """One process's broker: servant registry + endpoint management.

    A single Orb can serve both in-process callers (zero-latency
    reference) and remote ones (after :meth:`listen` opens a TCP
    endpoint).
    """

    def __init__(self, name: str = "orb", wire_codec: str = "binary",
                 debug_roundtrip: bool = False) -> None:
        self.name = name
        self.wire_codec = wire_codec
        self.adapter = ObjectAdapter()
        self._tcp_server: Optional[TcpServer] = None
        self._inproc = InProcTransport(self.adapter.dispatch,
                                       debug_roundtrip=debug_roundtrip)
        self._transports: Dict[Tuple[str, int], TcpTransport] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------

    def register(self, object_id: str, servant: object) -> str:
        """Register a servant; returns its best reference (TCP when
        listening, in-process otherwise)."""
        self.adapter.register(object_id, servant)
        return self.reference_for(object_id)

    def unregister(self, object_id: str) -> bool:
        return self.adapter.unregister(object_id)

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Open the TCP endpoint; returns the bound (host, port)."""
        if self._tcp_server is not None:
            raise OrbError("orb is already listening")
        codecs = (("binary", "json") if self.wire_codec == "binary"
                  else ("json",))
        self._tcp_server = TcpServer(self.adapter.dispatch, host, port,
                                     codecs=codecs).start()
        return self._tcp_server.address

    def reference_for(self, object_id: str) -> str:
        """The stringified reference for a registered servant."""
        self.adapter.servant(object_id)  # raises when unknown
        if self._tcp_server is not None:
            host, port = self._tcp_server.address
            return f"tcp://{host}:{port}/{object_id}"
        return f"inproc://{object_id}"

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def resolve(self, reference: str,
                wrap: Optional[Any] = None) -> Proxy:
        """Turn a stringified reference into an invocable proxy.

        ``wrap`` is an optional transport decorator ``(transport) ->
        transport`` applied to this proxy's transport only — the seam
        fault injection (:meth:`repro.faults.FaultPlan.wrap_transport`)
        and instrumentation plug into without touching the shared
        connection cache.
        """
        parsed = urlparse(reference)
        if parsed.scheme == "inproc":
            object_id = parsed.netloc or parsed.path.strip("/")
            self.adapter.servant(object_id)  # must be local
            transport: Any = self._inproc
            if wrap is not None:
                transport = wrap(transport)
            return Proxy(transport, object_id, reference)
        if parsed.scheme == "tcp":
            object_id = parsed.path.strip("/")
            if not object_id or parsed.hostname is None or parsed.port is None:
                raise OrbError(f"malformed reference {reference!r}")
            key = (parsed.hostname, parsed.port)
            with self._lock:
                transport = self._transports.get(key)
                if transport is None:
                    transport = TcpTransport(parsed.hostname, parsed.port,
                                             codec=self.wire_codec)
                    self._transports[key] = transport
            if wrap is not None:
                transport = wrap(transport)
            return Proxy(transport, object_id, reference)
        raise OrbError(f"unknown reference scheme in {reference!r}")

    # ------------------------------------------------------------------

    def transport_stats(self) -> Dict[str, Any]:
        """Wire-level stats across every cached client transport."""
        with self._lock:
            transports = list(self._transports.values())
        endpoints = [t.transport_stats() for t in transports]
        codecs = {e["codec"] for e in endpoints if e["codec"]}
        return {
            "codec": (sorted(codecs)[0] if len(codecs) == 1
                      else "mixed" if codecs else self.wire_codec),
            "multiplexed_inflight_max": max(
                (e["multiplexed_inflight_max"] for e in endpoints),
                default=0),
            "endpoints": endpoints,
            "inproc_fast_invocations": self._inproc.fast_invocations,
            "inproc_fallback_invocations": self._inproc.fallback_invocations,
        }

    def shutdown(self) -> None:
        """Stop the endpoint and close all client connections."""
        if self._tcp_server is not None:
            self._tcp_server.stop()
            self._tcp_server = None
        with self._lock:
            for transport in self._transports.values():
                transport.close()
            self._transports.clear()

    def __enter__(self) -> "Orb":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
