"""The object request broker: servants, references, proxies.

The minimum CORBA surface MiddleWhere needs (Section 7): register a
servant under an object id, hand out a stringified reference (our IOR
equivalent), and let clients invoke methods through a proxy that is
oblivious to whether the servant is in-process or across TCP.

References look like::

    inproc://location-service
    tcp://127.0.0.1:42107/location-service

Only methods not starting with ``_`` are remotely invocable, and a
servant can restrict further with an ``ORB_EXPOSED`` allowlist.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse

from repro.errors import OrbError, RemoteInvocationError
from repro.orb.transport import (
    InProcTransport,
    TcpServer,
    TcpTransport,
)


class ObjectAdapter:
    """Maps object ids to servants and dispatches requests to them."""

    def __init__(self) -> None:
        self._servants: Dict[str, object] = {}
        self._lock = threading.Lock()

    def register(self, object_id: str, servant: object) -> None:
        if not object_id or "/" in object_id:
            raise OrbError(f"invalid object id {object_id!r}")
        with self._lock:
            if object_id in self._servants:
                raise OrbError(f"object id {object_id!r} already registered")
            self._servants[object_id] = servant

    def unregister(self, object_id: str) -> bool:
        with self._lock:
            return self._servants.pop(object_id, None) is not None

    def servant(self, object_id: str) -> object:
        with self._lock:
            servant = self._servants.get(object_id)
        if servant is None:
            raise OrbError(f"no servant registered as {object_id!r}")
        return servant

    def object_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._servants))

    # ------------------------------------------------------------------

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request and wrap result/exception uniformly."""
        try:
            object_id = request["object"]
            method_name = request["method"]
            args = request.get("args", [])
            kwargs = request.get("kwargs", {})
        except (KeyError, TypeError):
            return {"error": {"type": "OrbError",
                              "message": "malformed request"}}
        try:
            servant = self.servant(object_id)
            method = self._lookup(servant, method_name)
            result = method(*args, **kwargs)
            return {"result": result}
        except Exception as exc:  # noqa: BLE001 — faults cross the wire
            return {"error": {"type": type(exc).__name__,
                              "message": str(exc)}}

    @staticmethod
    def _lookup(servant: object, method_name: str) -> Any:
        if method_name.startswith("_"):
            raise OrbError(f"method {method_name!r} is not remotely callable")
        exposed = getattr(servant, "ORB_EXPOSED", None)
        if exposed is not None and method_name not in exposed:
            raise OrbError(f"method {method_name!r} is not exposed")
        method = getattr(servant, method_name, None)
        if method is None or not callable(method):
            raise OrbError(
                f"{type(servant).__name__} has no method {method_name!r}")
        return method


class Proxy:
    """A client-side stub: attribute access becomes remote invocation.

    >>> locator = orb.resolve("inproc://location-service")
    >>> estimate = locator.locate("alice")        # doctest: +SKIP
    """

    def __init__(self, transport: Any, object_id: str, reference: str) -> None:
        self._transport = transport
        self._object_id = object_id
        self._reference = reference

    @property
    def orb_reference(self) -> str:
        return self._reference

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)

        def invoke(*args: Any, **kwargs: Any) -> Any:
            response = self._transport.invoke({
                "object": self._object_id,
                "method": name,
                "args": list(args),
                "kwargs": dict(kwargs),
            })
            if "error" in response:
                error = response["error"]
                raise RemoteInvocationError(
                    error.get("type", "unknown"),
                    error.get("message", ""))
            return response.get("result")

        invoke.__name__ = name
        return invoke

    def __repr__(self) -> str:
        return f"Proxy({self._reference})"


class Orb:
    """One process's broker: servant registry + endpoint management.

    A single Orb can serve both in-process callers (zero-latency
    reference) and remote ones (after :meth:`listen` opens a TCP
    endpoint).
    """

    def __init__(self, name: str = "orb") -> None:
        self.name = name
        self.adapter = ObjectAdapter()
        self._tcp_server: Optional[TcpServer] = None
        self._inproc = InProcTransport(self.adapter.dispatch)
        self._transports: Dict[Tuple[str, int], TcpTransport] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------

    def register(self, object_id: str, servant: object) -> str:
        """Register a servant; returns its best reference (TCP when
        listening, in-process otherwise)."""
        self.adapter.register(object_id, servant)
        return self.reference_for(object_id)

    def unregister(self, object_id: str) -> bool:
        return self.adapter.unregister(object_id)

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Open the TCP endpoint; returns the bound (host, port)."""
        if self._tcp_server is not None:
            raise OrbError("orb is already listening")
        self._tcp_server = TcpServer(self.adapter.dispatch, host, port).start()
        return self._tcp_server.address

    def reference_for(self, object_id: str) -> str:
        """The stringified reference for a registered servant."""
        self.adapter.servant(object_id)  # raises when unknown
        if self._tcp_server is not None:
            host, port = self._tcp_server.address
            return f"tcp://{host}:{port}/{object_id}"
        return f"inproc://{object_id}"

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def resolve(self, reference: str,
                wrap: Optional[Any] = None) -> Proxy:
        """Turn a stringified reference into an invocable proxy.

        ``wrap`` is an optional transport decorator ``(transport) ->
        transport`` applied to this proxy's transport only — the seam
        fault injection (:meth:`repro.faults.FaultPlan.wrap_transport`)
        and instrumentation plug into without touching the shared
        connection cache.
        """
        parsed = urlparse(reference)
        if parsed.scheme == "inproc":
            object_id = parsed.netloc or parsed.path.strip("/")
            self.adapter.servant(object_id)  # must be local
            transport: Any = self._inproc
            if wrap is not None:
                transport = wrap(transport)
            return Proxy(transport, object_id, reference)
        if parsed.scheme == "tcp":
            object_id = parsed.path.strip("/")
            if not object_id or parsed.hostname is None or parsed.port is None:
                raise OrbError(f"malformed reference {reference!r}")
            key = (parsed.hostname, parsed.port)
            with self._lock:
                transport = self._transports.get(key)
                if transport is None:
                    transport = TcpTransport(parsed.hostname, parsed.port)
                    self._transports[key] = transport
            if wrap is not None:
                transport = wrap(transport)
            return Proxy(transport, object_id, reference)
        raise OrbError(f"unknown reference scheme in {reference!r}")

    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the endpoint and close all client connections."""
        if self._tcp_server is not None:
            self._tcp_server.stop()
            self._tcp_server = None
        with self._lock:
            for transport in self._transports.values():
                transport.close()
            self._transports.clear()

    def __enter__(self) -> "Orb":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
