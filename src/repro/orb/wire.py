"""Binary wire codec for the object request broker.

The tagged-JSON codec in :mod:`repro.orb.serialization` is the ORB's
lingua franca, but on the shard hot path (``submit_batch`` readings,
``locate()`` estimates, the semantic-event feed) the recursive tagged
encode/decode dominates the cost of an RPC — ablation A4 priced the
broker at ~6x a direct call, almost all of it marshalling.  This
module is the fast lane: a struct-packed binary format covering

* the JSON value model (``None``, bools, ints, floats, strings,
  lists, string-keyed dicts), and
* *packed* value types — :class:`~repro.geometry.Point`,
  :class:`~repro.geometry.Rect`, :class:`~repro.geometry.Segment`,
  :class:`~repro.geometry.Polygon`, :class:`~repro.model.Glob`,
  :class:`~repro.core.classify.ProbabilityBucket`,
  :class:`~repro.core.estimate.LocationEstimate` (and, once
  :mod:`repro.pipeline` is imported, ``PipelineReading``) — each with
  a fixed type code and a hand-written ``struct`` body.

The contract mirrors the JSON codec value-for-value:
``loads(dumps(x)) == serialization.loads(serialization.dumps(x))``
for every message both codecs accept.  A registered wire type without
a packed codec raises :class:`BinaryUnsupported`; the transport
catches that and falls back to a tagged-JSON frame for that one
message, so the binary lane never has to cover the long tail.
Like the JSON codec, non-finite floats are rejected at encode time
(`NaN` on the wire is a silent interop break) and unknown types raise
:class:`~repro.errors.OrbError` instead of pickling.
"""

from __future__ import annotations

import math
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.classify import ProbabilityBucket
from repro.core.estimate import LocationEstimate
from repro.errors import OrbError
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model import Glob
from repro.orb import serialization

# ----------------------------------------------------------------------
# Tags
# ----------------------------------------------------------------------

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT64 = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_LIST = 0x07
_T_DICT = 0x08

# Packed value-type codes are assigned explicitly at registration so
# they never depend on import order — both peers must agree on them.
CODE_POINT = 0x10
CODE_RECT = 0x11
CODE_SEGMENT = 0x12
CODE_POLYGON = 0x13
CODE_GLOB = 0x14
CODE_BUCKET = 0x15
CODE_ESTIMATE = 0x16
CODE_READING = 0x17

_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_F64x3 = struct.Struct(">3d")
_F64x4 = struct.Struct(">4d")
_F64x6 = struct.Struct(">6d")
# LocationEstimate's fixed probability/bucket/time block, packed and
# unpacked as one struct on the codec hot path.
# Estimate head: rect (4 doubles) + probability + bucket + time, in
# one pack — byte-identical to the fields packed one struct at a time.
_EST_HEAD = struct.Struct(">5dBd")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class BinaryUnsupported(Exception):
    """Raised when a message needs the tagged-JSON fallback.

    Internal to the ORB: the transport catches this, encodes the
    message with the JSON codec instead, and marks the frame
    accordingly.  It must never escape to application code.
    """


Packer = Callable[[Any, bytearray], None]
Unpacker = Callable[["_Reader"], Any]

_PACKERS: Dict[type, Tuple[int, Packer]] = {}
_UNPACKERS: Dict[int, Unpacker] = {}
_IMMUTABLE: Dict[type, bool] = {}
# Decode dispatch: tag byte -> handler.  Primitive tags are installed
# below (after _Reader exists); register_packed adds packed codes.
_DECODE_BY_TAG: List[Optional[Unpacker]] = [None] * 256


def register_packed(code: int, cls: type, packer: Packer,
                    unpacker: Unpacker, immutable: bool = True) -> None:
    """Register a struct-packed codec for a value type.

    ``code`` is the type's fixed wire tag (>= 0x10); it is part of the
    protocol and must be identical on every peer.  ``immutable``
    declares that instances are deeply immutable, which lets the
    in-process transport pass them by reference instead of
    round-tripping them through the serializer.
    """
    if code < 0x10 or code > 0xFF:
        raise OrbError(f"packed type code {code:#x} out of range")
    existing = _UNPACKERS.get(code)
    if existing is not None and _PACKERS.get(cls, (None,))[0] != code:
        raise OrbError(f"packed type code {code:#x} already registered")
    _PACKERS[cls] = (code, packer)
    _UNPACKERS[code] = unpacker
    _DECODE_BY_TAG[code] = unpacker
    _IMMUTABLE[cls] = immutable


def is_passable(cls: type) -> bool:
    """True when instances may cross the in-proc fast path by
    reference (registered packed type declared immutable)."""
    return _IMMUTABLE.get(cls, False)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    out += _U32.pack(len(data))
    out += data


def _encode_int(value: int, out: bytearray) -> None:
    if _INT64_MIN <= value <= _INT64_MAX:
        out.append(_T_INT64)
        out += _I64.pack(value)
    else:
        out.append(_T_BIGINT)
        _write_str(out, str(value))


def _encode_float(value: float, out: bytearray) -> None:
    if not math.isfinite(value):
        raise OrbError(f"non-finite float {value!r} on the wire")
    out.append(_T_FLOAT)
    out += _F64.pack(value)


def _encode_str(value: str, out: bytearray) -> None:
    out.append(_T_STR)
    _write_str(out, value)


def _encode_list(value: Any, out: bytearray) -> None:
    out.append(_T_LIST)
    out += _U32.pack(len(value))
    for item in value:
        _encode_value(item, out)


def _encode_dict(value: Dict[str, Any], out: bytearray) -> None:
    out.append(_T_DICT)
    out += _U32.pack(len(value))
    for key, item in value.items():
        if not isinstance(key, str):
            raise OrbError(f"non-string dict key {key!r} on the wire")
        if key == serialization._TYPE_KEY:
            raise OrbError(
                f"dict key {serialization._TYPE_KEY!r} is reserved")
        _write_str(out, key)
        _encode_value(item, out)


_ENCODE_BY_TYPE: Dict[type, Packer] = {
    type(None): lambda value, out: out.append(_T_NONE),
    bool: lambda value, out: out.append(_T_TRUE if value else _T_FALSE),
    int: _encode_int,
    float: _encode_float,
    str: _encode_str,
    list: _encode_list,
    tuple: _encode_list,
    dict: _encode_dict,
}


def _encode_value(value: Any, out: bytearray) -> None:
    # Packed types first for the same reason the JSON codec checks its
    # registry first: a str-subclassing enum must hit its packer, not
    # the bare-string branch.  Exact-type dispatch means subclasses of
    # the primitives miss both tables and fall through below.
    tp = type(value)
    packed = _PACKERS.get(tp)
    if packed is not None:
        code, packer = packed
        out.append(code)
        packer(value, out)
        return
    handler = _ENCODE_BY_TYPE.get(tp)
    if handler is not None:
        handler(value, out)
        return
    # Subclasses of the primitives and registered-but-unpacked wire
    # types take the tagged-JSON fallback; genuinely unknown types
    # raise there with the canonical error.
    if isinstance(value, (bool, int, float, str, list, tuple, dict)) \
            or tp in serialization._ENCODERS:
        raise BinaryUnsupported(tp.__name__)
    raise OrbError(f"cannot serialize {tp.__name__}")


def dumps(message: Any) -> bytes:
    """Serialize a message to binary wire bytes.

    Raises :class:`BinaryUnsupported` when the message contains a
    registered-but-unpacked wire type (the caller falls back to the
    JSON codec) and :class:`~repro.errors.OrbError` for values neither
    codec accepts.
    """
    out = bytearray()
    _encode_value(message, out)
    return bytes(out)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


class _Reader:
    """A cursor over the wire bytes.

    Fixed-width fields are read in place with ``unpack_from`` — no
    intermediate slices on the decode hot path."""

    __slots__ = ("data", "size", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.size = len(data)
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > self.size:
            raise OrbError("truncated binary frame")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def unpack(self, layout: struct.Struct) -> Tuple[Any, ...]:
        pos = self.pos
        end = pos + layout.size
        if end > self.size:
            raise OrbError("truncated binary frame")
        self.pos = end
        return layout.unpack_from(self.data, pos)

    def u8(self) -> int:
        pos = self.pos
        if pos >= self.size:
            raise OrbError("truncated binary frame")
        self.pos = pos + 1
        return self.data[pos]

    def u32(self) -> int:
        pos = self.pos
        end = pos + 4
        if end > self.size:
            raise OrbError("truncated binary frame")
        self.pos = end
        return _U32.unpack_from(self.data, pos)[0]

    def f64(self) -> float:
        pos = self.pos
        end = pos + 8
        if end > self.size:
            raise OrbError("truncated binary frame")
        self.pos = end
        return _F64.unpack_from(self.data, pos)[0]

    def str_(self) -> str:
        pos = self.pos
        end = pos + 4
        if end > self.size:
            raise OrbError("truncated binary frame")
        end_str = end + _U32.unpack_from(self.data, pos)[0]
        if end_str > self.size:
            raise OrbError("truncated binary frame")
        self.pos = end_str
        return self.data[end:end_str].decode("utf-8")


def _decode_list(reader: _Reader) -> List[Any]:
    return [_decode_value(reader) for _ in range(reader.u32())]


def _decode_dict(reader: _Reader) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for _ in range(reader.u32()):
        key = reader.str_()
        out[key] = _decode_value(reader)
    return out


_DECODE_BY_TAG[_T_NONE] = lambda reader: None
_DECODE_BY_TAG[_T_TRUE] = lambda reader: True
_DECODE_BY_TAG[_T_FALSE] = lambda reader: False
_DECODE_BY_TAG[_T_INT64] = lambda reader: reader.unpack(_I64)[0]
_DECODE_BY_TAG[_T_BIGINT] = lambda reader: int(reader.str_())
_DECODE_BY_TAG[_T_FLOAT] = _Reader.f64
_DECODE_BY_TAG[_T_STR] = _Reader.str_
_DECODE_BY_TAG[_T_LIST] = _decode_list
_DECODE_BY_TAG[_T_DICT] = _decode_dict


def _decode_value(reader: _Reader) -> Any:
    tag = reader.u8()
    handler = _DECODE_BY_TAG[tag]
    if handler is None:
        raise OrbError(f"unknown binary wire tag {tag:#x}")
    return handler(reader)


def loads(data: bytes) -> Any:
    """Deserialize binary wire bytes back into a message."""
    reader = _Reader(data)
    try:
        message = _decode_value(reader)
    except (struct.error, UnicodeDecodeError, ValueError, IndexError) as exc:
        raise OrbError(f"binary deserialization failed: {exc}") from exc
    if reader.pos != len(data):
        raise OrbError("trailing bytes after binary message")
    return message


# ----------------------------------------------------------------------
# In-process fast-path marshal
# ----------------------------------------------------------------------


def fast_marshal(value: Any) -> Any:
    """Marshal a value across an in-process boundary without bytes.

    Observably identical to ``serialization.loads(dumps(value))`` for
    the values it accepts: scalars pass through, tuples become fresh
    lists, lists/dicts are rebuilt (so a servant mutating its copy
    cannot reach the caller's), and deeply-immutable packed value
    types pass by reference.  Anything else — including non-finite
    floats and reserved dict keys, whose canonical errors the slow
    path owns — raises :class:`BinaryUnsupported` so the caller falls
    back to the full serializer round-trip.
    """
    tp = type(value)
    if value is None or tp is bool or tp is str or tp is int:
        return value
    if tp is float:
        if not math.isfinite(value):
            raise BinaryUnsupported("non-finite float")
        return value
    if tp is list or tp is tuple:
        return [fast_marshal(item) for item in value]
    if tp is dict:
        out = {}
        for key, item in value.items():
            if type(key) is not str or key == serialization._TYPE_KEY:
                raise BinaryUnsupported("bad dict key")
            out[key] = fast_marshal(item)
        return out
    if _IMMUTABLE.get(tp, False):
        return value
    raise BinaryUnsupported(tp.__name__)


# ----------------------------------------------------------------------
# Packed built-in value types
# ----------------------------------------------------------------------

_BUCKETS: Tuple[ProbabilityBucket, ...] = tuple(ProbabilityBucket)
_BUCKET_INDEX: Dict[ProbabilityBucket, int] = {
    bucket: index for index, bucket in enumerate(_BUCKETS)}


def _require(condition: bool) -> None:
    """Packers guard field types; oddly-typed instances take the JSON
    fallback, where the generic encoders handle (or reject) them."""
    if not condition:
        raise BinaryUnsupported("unpackable field")


def _num(value: Any) -> float:
    _require(isinstance(value, (int, float))
             and math.isfinite(value))
    return value


def _pack_point(point: Point, out: bytearray) -> None:
    out += _F64x3.pack(_num(point.x), _num(point.y), _num(point.z))


def _unpack_point(reader: _Reader) -> Point:
    x, y, z = reader.unpack(_F64x3)
    return Point(x, y, z)


_NUM_TYPES = (float, int)


def _pack_rect(rect: Rect, out: bytearray) -> None:
    a, b, c, d = rect.min_x, rect.min_y, rect.max_x, rect.max_y
    # Fast path for plain finite numbers; anything odd (bool, numeric
    # subclasses, non-finite) re-checks field by field.
    if (type(a) in _NUM_TYPES and type(b) in _NUM_TYPES
            and type(c) in _NUM_TYPES and type(d) in _NUM_TYPES
            and math.isfinite(a) and math.isfinite(b)
            and math.isfinite(c) and math.isfinite(d)):
        out += _F64x4.pack(a, b, c, d)
    else:
        out += _F64x4.pack(_num(a), _num(b), _num(c), _num(d))


def _unpack_rect(reader: _Reader) -> Rect:
    min_x, min_y, max_x, max_y = reader.unpack(_F64x4)
    return Rect(min_x, min_y, max_x, max_y)


def _pack_segment(segment: Segment, out: bytearray) -> None:
    start, end = segment.start, segment.end
    _require(type(start) is Point and type(end) is Point)
    out += _F64x6.pack(_num(start.x), _num(start.y), _num(start.z),
                       _num(end.x), _num(end.y), _num(end.z))


def _unpack_segment(reader: _Reader) -> Segment:
    sx, sy, sz, ex, ey, ez = reader.unpack(_F64x6)
    return Segment(Point(sx, sy, sz), Point(ex, ey, ez))


def _pack_polygon(polygon: Polygon, out: bytearray) -> None:
    vertices = polygon.vertices
    out += _U32.pack(len(vertices))
    for vertex in vertices:
        _require(type(vertex) is Point)
        out += _F64x3.pack(_num(vertex.x), _num(vertex.y), _num(vertex.z))


def _unpack_polygon(reader: _Reader) -> Polygon:
    count = reader.u32()
    return Polygon([_unpack_point(reader) for _ in range(count)])


def _pack_glob(glob: Glob, out: bytearray) -> None:
    _write_str(out, glob.format())


def _unpack_glob(reader: _Reader) -> Glob:
    return Glob.parse(reader.str_())


def _pack_bucket(bucket: ProbabilityBucket, out: bytearray) -> None:
    out += _U8.pack(_BUCKET_INDEX[bucket])


def _unpack_bucket(reader: _Reader) -> ProbabilityBucket:
    index = reader.u8()
    if index >= len(_BUCKETS):
        raise OrbError(f"unknown probability bucket index {index}")
    return _BUCKETS[index]


def _pack_estimate(estimate: LocationEstimate, out: bytearray) -> None:
    _require(type(estimate.object_id) is str
             and type(estimate.rect) is Rect
             and type(estimate.bucket) is ProbabilityBucket
             and isinstance(estimate.moving, bool)
             and isinstance(estimate.sources, (list, tuple)))
    data = estimate.object_id.encode("utf-8")
    out += _U32.pack(len(data))
    out += data
    rect = estimate.rect
    a, b, c, d = rect.min_x, rect.min_y, rect.max_x, rect.max_y
    probability, when = estimate.probability, estimate.time
    # One struct pack covers rect + probability + bucket + time; the
    # bytes are identical to packing them separately (">4d" + ">dBd").
    if not (type(a) in _NUM_TYPES and type(b) in _NUM_TYPES
            and type(c) in _NUM_TYPES and type(d) in _NUM_TYPES
            and type(probability) in _NUM_TYPES
            and type(when) in _NUM_TYPES
            and math.isfinite(a) and math.isfinite(b)
            and math.isfinite(c) and math.isfinite(d)
            and math.isfinite(probability) and math.isfinite(when)):
        a, b, c, d = _num(a), _num(b), _num(c), _num(d)
        probability, when = _num(probability), _num(when)
    out += _EST_HEAD.pack(a, b, c, d, probability,
                          _BUCKET_INDEX[estimate.bucket], when)
    sources = estimate.sources
    out += _U32.pack(len(sources))
    for source in sources:
        _require(type(source) is str)
        data = source.encode("utf-8")
        out += _U32.pack(len(data))
        out += data
    out.append(1 if estimate.moving else 0)
    symbolic = estimate.symbolic
    if symbolic is None:
        out.append(0)
    else:
        _require(type(symbolic) is str)
        out.append(1)
        data = symbolic.encode("utf-8")
        out += _U32.pack(len(data))
        out += data
    posterior = estimate.posterior
    if type(posterior) in _NUM_TYPES and math.isfinite(posterior):
        out += _F64.pack(posterior)
    else:
        out += _F64.pack(_num(posterior))


def _unpack_estimate(reader: _Reader) -> LocationEstimate:
    object_id = reader.str_()
    (min_x, min_y, max_x, max_y, probability, bucket_index,
     time) = reader.unpack(_EST_HEAD)
    if bucket_index >= len(_BUCKETS):
        raise OrbError(f"unknown probability bucket index {bucket_index}")
    sources = tuple(reader.str_() for _ in range(reader.u32()))
    moving = reader.u8() != 0
    symbolic = reader.str_() if reader.u8() else None
    posterior = reader.f64()
    return LocationEstimate(
        object_id, Rect(min_x, min_y, max_x, max_y), probability,
        _BUCKETS[bucket_index], time, sources, moving, symbolic,
        posterior)


register_packed(CODE_POINT, Point, _pack_point, _unpack_point)
register_packed(CODE_RECT, Rect, _pack_rect, _unpack_rect)
register_packed(CODE_SEGMENT, Segment, _pack_segment, _unpack_segment)
register_packed(CODE_POLYGON, Polygon, _pack_polygon, _unpack_polygon)
register_packed(CODE_GLOB, Glob, _pack_glob, _unpack_glob)
register_packed(CODE_BUCKET, ProbabilityBucket, _pack_bucket,
                _unpack_bucket)
register_packed(CODE_ESTIMATE, LocationEstimate, _pack_estimate,
                _unpack_estimate)
