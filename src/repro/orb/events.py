"""Push-style event channels (trigger notifications, Section 5.3).

"MiddleWhere maintains an internal list of subscribers and trigger
identifiers and when it receives a trigger it redirects it to the
subscribed application."  An :class:`EventChannel` is that list: local
callbacks subscribe directly; remote applications register a callback
servant and subscribe by reference, and the channel pushes to their
``notify`` method over the ORB.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import OrbError
from repro.orb.core import Orb

LocalConsumer = Callable[[Dict[str, Any]], None]


class EventChannel:
    """Fan-out of events to local and remote consumers.

    Args:
        orb: the broker used to resolve remote consumer references;
            optional when only local consumers are used.
        swallow_errors: when True (default) a failing consumer is
            logged into :attr:`delivery_failures` and skipped, so one
            crashed application cannot stall everyone's notifications.
    """

    def __init__(self, orb: Optional[Orb] = None,
                 swallow_errors: bool = True) -> None:
        self._orb = orb
        self._swallow = swallow_errors
        self._local: Dict[int, LocalConsumer] = {}
        self._remote: Dict[int, str] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self.delivery_failures: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------

    def subscribe(self, consumer: LocalConsumer) -> int:
        """Subscribe a local callback; returns the subscription id."""
        with self._lock:
            subscription_id = next(self._ids)
            self._local[subscription_id] = consumer
        return subscription_id

    def subscribe_remote(self, reference: str) -> int:
        """Subscribe a remote consumer by servant reference.

        The referenced servant must expose ``notify(event)``.
        """
        if self._orb is None:
            raise OrbError("channel has no orb for remote consumers")
        self._orb.resolve(reference)  # validate the reference shape now
        with self._lock:
            subscription_id = next(self._ids)
            self._remote[subscription_id] = reference
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> bool:
        with self._lock:
            return (self._local.pop(subscription_id, None) is not None
                    or self._remote.pop(subscription_id, None) is not None)

    def consumer_count(self) -> int:
        with self._lock:
            return len(self._local) + len(self._remote)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------

    def publish(self, event: Dict[str, Any]) -> int:
        """Push an event to every consumer; returns deliveries made."""
        with self._lock:
            local = list(self._local.items())
            remote = list(self._remote.items())
        delivered = 0
        for subscription_id, consumer in local:
            try:
                consumer(dict(event))
                delivered += 1
            except Exception as exc:  # noqa: BLE001
                self._handle_failure(subscription_id, exc)
        for subscription_id, reference in remote:
            try:
                assert self._orb is not None
                self._orb.resolve(reference).notify(dict(event))
                delivered += 1
            except Exception as exc:  # noqa: BLE001
                self._handle_failure(subscription_id, exc)
        return delivered

    def _handle_failure(self, subscription_id: int, exc: Exception) -> None:
        if not self._swallow:
            raise exc
        # Publishers run on arbitrary threads (pipeline workers);
        # guard the shared failure log.
        with self._lock:
            self.delivery_failures.append((subscription_id, str(exc)))
