"""ORB transports: in-process and TCP, with a multiplexed fast lane.

The paper's deployment used Orbacus over the department network; the
interesting property for the evaluation is that every query and
trigger notification crosses a real request/response boundary.  Both
transports expose the same two-sided contract:

* server side — a dispatcher callable ``(request) -> response``;
* client side — :meth:`invoke` carrying a request dict and returning
  the response dict (plus :meth:`invoke_async` returning a waitable
  handle on transports that support pipelining).

Two wire protocols share the port:

* **Legacy framing** — a 4-byte big-endian length prefix and a
  tagged-JSON payload, one request in flight per connection, answered
  in order.  Every connection starts here, so peers running the
  pre-multiplex protocol interoperate unchanged.
* **Multiplexed framing** — negotiated by an in-band ``hello``
  request addressed to the reserved ``_orb.transport`` object.  A
  peer that recognises it answers with its protocol version and codec
  list and the connection switches to 13-byte headers
  ``(length: u32, codec: u8, correlation id: u64)``; one socket then
  carries many in-flight requests, encoded with the negotiated codec
  (binary when both sides support it, tagged JSON otherwise, and a
  per-frame JSON fallback for messages the binary codec cannot
  pack).  The server dispatches concurrently and answers out of
  order.  A peer that does *not* recognise the hello returns an
  ordinary error response, and the client simply keeps the connection
  in legacy mode — negotiation costs one round trip and can never
  strand a mixed-version fleet.
"""

from __future__ import annotations

import itertools
import queue
import select
import socket
import socketserver
import struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import OrbError, TransportError
from repro.orb import serialization, wire

Dispatcher = Callable[[Dict[str, Any]], Dict[str, Any]]

_HEADER = struct.Struct(">I")
_MUX_HEADER = struct.Struct(">IBQ")
_MAX_FRAME = 64 * 1024 * 1024

CODEC_JSON = 0
CODEC_BINARY = 1
CODEC_NAMES = {CODEC_JSON: "json", CODEC_BINARY: "binary"}

#: The reserved object id transport-control requests are addressed
#: to.  Never register a servant under this id.
CONTROL_OBJECT = "_orb.transport"
PROTOCOL_VERSION = 2


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    if len(payload) > _MAX_FRAME:
        raise TransportError(
            f"outbound frame of {len(payload)} bytes exceeds the "
            f"{_MAX_FRAME}-byte cap")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds the cap")
    return _recv_exact(sock, length)


def _encode_with(codec: int, message: Any) -> Tuple[int, bytes]:
    """Encode for the wire, falling back to JSON per message."""
    if codec == CODEC_BINARY:
        try:
            return CODEC_BINARY, wire.dumps(message)
        except wire.BinaryUnsupported:
            pass
    return CODEC_JSON, serialization.dumps(message)


def _decode_with(codec: int, payload: bytes) -> Any:
    if codec == CODEC_BINARY:
        return wire.loads(payload)
    if codec == CODEC_JSON:
        return serialization.loads(payload)
    raise TransportError(f"unknown frame codec {codec}")


class InProcTransport:
    """Zero-copy transport for servants living in the same process.

    Messages built only from immutable registered value types and
    plain scalars skip the serializer entirely: containers are
    rebuilt (a servant mutating its argument cannot reach the
    caller's copy), tuples become lists, and frozen value objects
    pass by reference — observably identical to the round-trip, minus
    the bytes.  Anything the fast marshal cannot prove safe falls
    back to the full serialize/deserialize round-trip, so behaviour
    (including serialization failures) still matches the TCP path.

    ``debug_roundtrip=True`` disables the fast path and forces every
    message through the serializer — the mode to run when chasing a
    serialization-failure discrepancy between in-proc and TCP
    deployments.
    """

    def __init__(self, dispatcher: Dispatcher,
                 debug_roundtrip: bool = False) -> None:
        self._dispatcher = dispatcher
        self.debug_roundtrip = debug_roundtrip
        self.fast_invocations = 0
        self.fallback_invocations = 0

    def _marshal(self, message: Any, count: bool) -> Any:
        if not self.debug_roundtrip:
            try:
                marshaled = wire.fast_marshal(message)
            except wire.BinaryUnsupported:
                pass
            else:
                if count:
                    self.fast_invocations += 1
                return marshaled
        if count:
            self.fallback_invocations += 1
        return serialization.loads(serialization.dumps(message))

    def invoke(self, request: Dict[str, Any]) -> Dict[str, Any]:
        response = self._dispatcher(self._marshal(request, count=True))
        return self._marshal(response, count=False)

    def close(self) -> None:
        """Nothing to release."""


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------


class _RequestHandler(socketserver.BaseRequestHandler):
    def setup(self) -> None:
        # Without NODELAY, Nagle holds back-to-back small responses on
        # a multiplexed connection hostage to the client's delayed ACK.
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.server.track_connection(self.request)  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server.untrack_connection(self.request)  # type: ignore[attr-defined]

    def handle(self) -> None:
        server = self.server
        sock: socket.socket = self.request
        sock.settimeout(server.io_timeout)  # type: ignore[attr-defined]
        # Legacy phase: length-prefixed tagged-JSON frames, answered
        # in order — exactly the pre-multiplex protocol, so old peers
        # (and raw test clients) are served unchanged.
        while True:
            try:
                frame = _recv_frame(sock)
            except (TransportError, OSError):
                return  # client went away
            upgraded = False
            try:
                request = serialization.loads(frame)
                if (isinstance(request, dict)
                        and request.get("object") == CONTROL_OBJECT):
                    payload, upgraded = self._control(server, request)
                else:
                    response = server.dispatcher(request)
                    payload = serialization.dumps(response)
            except Exception as exc:  # deliberately broad: server survives
                payload = serialization.dumps({
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)},
                })
            try:
                _send_frame(sock, payload)
            except OSError:
                return
            if upgraded:
                self._serve_multiplexed(server, sock)
                return

    @staticmethod
    def _control(server: Any,
                 request: Dict[str, Any]) -> Tuple[bytes, bool]:
        """Answer a transport-control request; returns (payload,
        switch-to-multiplexed)."""
        if request.get("method") != "hello" or not server.enable_upgrade:
            return serialization.dumps({
                "error": {"type": "OrbError",
                          "message": "unknown transport control"},
            }), False
        return serialization.dumps({
            "result": {
                "version": PROTOCOL_VERSION,
                "codecs": list(server.codecs),
                "multiplex": True,
            },
        }), True

    # A pipelined client lands many frames in one socket wakeup; hand
    # the pool bursts of this size so the submit/handoff cost is
    # amortized across the burst.  Kept small so one slow request in
    # a burst can only delay a handful of followers, never the whole
    # backlog — later bursts still run on other pool threads.
    _BURST = 8

    def _serve_multiplexed(self, server: Any, sock: socket.socket) -> None:
        """Read mux frames, dispatch on the pool, answer out of order.

        Frames are drained from the socket greedily and dispatched in
        bursts: each burst is one pool task that serves its frames in
        order, answering each as it completes, while concurrent bursts
        (and therefore responses) interleave freely.
        """
        write_lock = threading.Lock()
        inflight = [0]
        inflight_lock = threading.Lock()

        def serve_burst(frames: List[Tuple[int, int, bytes]]) -> None:
            # Responses for the whole burst are coalesced into one
            # send: fewer syscalls and write-lock handoffs, and the
            # client's reader drains them in a single wakeup.
            try:
                chunks = []
                for codec, corr, payload in frames:
                    try:
                        request = _decode_with(codec, payload)
                        response = server.dispatcher(request)
                        out_codec, out_payload = _encode_with(codec,
                                                              response)
                    except Exception as exc:  # broad: server survives
                        out_codec = CODEC_JSON
                        out_payload = serialization.dumps({
                            "error": {"type": type(exc).__name__,
                                      "message": str(exc)},
                        })
                    chunks.append(_MUX_HEADER.pack(
                        len(out_payload), out_codec, corr) + out_payload)
                try:
                    with write_lock:
                        sock.sendall(b"".join(chunks))
                except OSError:
                    pass  # reader notices the dead socket, exits
            finally:
                with inflight_lock:
                    inflight[0] -= len(frames)

        buffer = bytearray()

        def pop_frames() -> List[Tuple[int, int, bytes]]:
            # Offset-based parse: one buffer shift for the whole batch
            # instead of an O(n) del per frame.
            frames = []
            header_size = _MUX_HEADER.size
            pos, size = 0, len(buffer)
            while size - pos >= header_size:
                length, codec, corr = _MUX_HEADER.unpack_from(buffer, pos)
                if length > _MAX_FRAME:
                    raise TransportError("oversized frame")
                end = pos + header_size + length
                if end > size:
                    break
                frames.append((codec, corr,
                               bytes(buffer[pos + header_size:end])))
                pos = end
            if pos:
                del buffer[:pos]
            return frames

        while True:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                # An idle timeout between frames only reaps the
                # connection when nothing is being served — a slow
                # request must not get its socket closed under it.
                with inflight_lock:
                    busy = inflight[0] > 0
                if busy:
                    continue
                return
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk
            # Drain whatever else already sits in the kernel buffer so
            # a pipelined burst becomes few pool tasks, not many.
            while len(buffer) < 1 << 20:
                try:
                    readable, _, _ = select.select([sock], [], [], 0)
                except (OSError, ValueError):
                    return
                if not readable:
                    break
                try:
                    more = sock.recv(65536)
                except OSError:
                    return
                if not more:
                    return  # peer closed; serve what we have? no: bail
                buffer += more
            try:
                frames = pop_frames()
            except TransportError:
                return
            while frames:
                burst, frames = frames[:self._BURST], frames[self._BURST:]
                with inflight_lock:
                    inflight[0] += len(burst)
                server.pool.submit(serve_burst, burst)


class _WorkerPool:
    """A minimal dispatch pool for multiplexed requests: cheaper per
    task than ``concurrent.futures`` (no Future allocation, a
    C-implemented queue handoff) with lazily started workers."""

    def __init__(self, workers: int, name: str) -> None:
        self._queue: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        self._max = workers
        self._name = name
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._idle = 0

    def submit(self, fn: Callable[..., None], *args: Any) -> None:
        self._queue.put((fn, args))
        with self._lock:
            if self._idle == 0 and len(self._threads) < self._max:
                thread = threading.Thread(
                    target=self._run, daemon=True,
                    name=f"{self._name}-{len(self._threads)}")
                self._threads.append(thread)
                thread.start()

    def _run(self) -> None:
        while True:
            with self._lock:
                self._idle += 1
            item = self._queue.get()
            with self._lock:
                self._idle -= 1
            if item is None:
                return
            fn, args = item
            try:
                fn(*args)
            except Exception:  # noqa: BLE001 — a task must not kill the pool
                pass

    def shutdown(self) -> None:
        with self._lock:
            count = len(self._threads)
        for _ in range(count):
            self._queue.put(None)


class _ThreadingServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._connections: "set[socket.socket]" = set()
        self._connections_lock = threading.Lock()

    def track_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(sock)

    def untrack_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(sock)

    def close_connections(self) -> None:
        """Force-close accepted connections so stop() really stops."""
        with self._connections_lock:
            doomed = list(self._connections)
        for sock in doomed:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class TcpServer:
    """A threaded TCP endpoint dispatching framed requests.

    Binds to ``127.0.0.1`` on an OS-assigned port by default; the
    bound address is available as :attr:`address` once started.

    Args:
        dispatcher: the object adapter's request handler.
        codecs: wire codecs offered during negotiation, most preferred
            first (default binary then JSON).
        enable_upgrade: answer the multiplex hello (disable to emulate
            a legacy peer in interop tests).
        mux_workers: pool threads serving multiplexed requests; this
            bounds out-of-order concurrency per server, not per
            connection.
    """

    def __init__(self, dispatcher: Dispatcher, host: str = "127.0.0.1",
                 port: int = 0, io_timeout: float = 30.0,
                 codecs: Optional[Tuple[str, ...]] = None,
                 enable_upgrade: bool = True,
                 mux_workers: int = 8) -> None:
        self.dispatcher = dispatcher
        self.io_timeout = io_timeout
        try:
            self._server = _ThreadingServer((host, port), _RequestHandler)
        except OSError as exc:
            raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
        self._server.dispatcher = dispatcher  # type: ignore[attr-defined]
        self._server.io_timeout = io_timeout  # type: ignore[attr-defined]
        self._server.codecs = tuple(  # type: ignore[attr-defined]
            codecs if codecs is not None else ("binary", "json"))
        self._server.enable_upgrade = enable_upgrade  # type: ignore[attr-defined]
        self._server.pool = _WorkerPool(  # type: ignore[attr-defined]
            mux_workers, f"orb-mux-{self.address[1]}")
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "TcpServer":
        if self._thread is not None:
            raise TransportError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"orb-tcp-{self.address[1]}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.close_connections()
        self._server.server_close()
        self._server.pool.shutdown()  # type: ignore[attr-defined]
        self._thread.join(timeout=5.0)
        self._thread = None


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------


class _ConnectionLost(TransportError):
    """The connection died before any response frame arrived for this
    request — the only failure the transport will retry."""


class _Pending:
    """One in-flight multiplexed request awaiting its response."""

    __slots__ = ("_event", "_response", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None

    def complete(self, response: Dict[str, Any]) -> None:
        self._response = response
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float]) -> Dict[str, Any]:
        if not self._event.wait(timeout):
            raise TransportError("request timed out")
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class _MuxConnection:
    """One multiplexed connection: many requests in flight, completed
    in any order.

    There is no dedicated reader thread — the threads *waiting* on
    responses drive the socket (leader/follower).  Whichever waiter
    arrives at an idle socket becomes the reader and delivers every
    response frame that lands — its own and other waiters' — until
    its own arrives, then hands leadership to the next waiter.  A
    lone synchronous caller therefore reads its own response
    directly, with zero cross-thread handoffs on the hot path, while
    concurrent waiters still complete as their frames land.
    """

    def __init__(self, sock: socket.socket, codec: int, name: str) -> None:
        self._sock = sock
        self.codec = codec
        self._send_lock = threading.Lock()
        self._pending: Dict[int, _Pending] = {}
        self._plock = threading.Lock()
        self._wakeup = threading.Condition(self._plock)
        self._corr = itertools.count(1)
        self._dead: Optional[BaseException] = None
        self._reading = False
        self._rbuf = bytearray()
        self.inflight_max = 0

    def alive(self) -> bool:
        with self._plock:
            return self._dead is None

    def submit(self, request: Dict[str, Any]) -> _Pending:
        codec, payload = _encode_with(self.codec, request)
        if len(payload) > _MAX_FRAME:
            raise TransportError(
                f"outbound frame of {len(payload)} bytes exceeds the "
                f"{_MAX_FRAME}-byte cap")
        pending = _Pending()
        with self._plock:
            if self._dead is not None:
                raise _ConnectionLost(str(self._dead))
            corr = next(self._corr)
            self._pending[corr] = pending
            self.inflight_max = max(self.inflight_max, len(self._pending))
        frame = _MUX_HEADER.pack(len(payload), codec, corr) + payload
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as exc:
            with self._plock:
                self._pending.pop(corr, None)
            self._fail(exc)
            raise _ConnectionLost(f"send failed: {exc}") from exc
        return pending

    def submit_many(self, requests: List[Dict[str, Any]]
                    ) -> List[_Pending]:
        """Pipeline a batch: every frame lands in one ``sendall`` so
        the peer's reader sees the burst in a single wakeup."""
        encoded = []
        for request in requests:
            codec, payload = _encode_with(self.codec, request)
            if len(payload) > _MAX_FRAME:
                raise TransportError(
                    f"outbound frame of {len(payload)} bytes exceeds "
                    f"the {_MAX_FRAME}-byte cap")
            encoded.append((codec, payload))
        pendings: List[_Pending] = []
        corrs: List[int] = []
        frames: List[bytes] = []
        with self._plock:
            if self._dead is not None:
                raise _ConnectionLost(str(self._dead))
            for codec, payload in encoded:
                corr = next(self._corr)
                pending = _Pending()
                self._pending[corr] = pending
                pendings.append(pending)
                corrs.append(corr)
                frames.append(_MUX_HEADER.pack(len(payload), codec, corr)
                              + payload)
            self.inflight_max = max(self.inflight_max,
                                    len(self._pending))
        try:
            with self._send_lock:
                self._sock.sendall(b"".join(frames))
        except OSError as exc:
            with self._plock:
                for corr in corrs:
                    self._pending.pop(corr, None)
            self._fail(exc)
            raise _ConnectionLost(f"send failed: {exc}") from exc
        return pendings

    def forget(self, pending: _Pending) -> None:
        """Drop a timed-out request; its late response is discarded."""
        with self._plock:
            self._forget_locked(pending)

    def _forget_locked(self, pending: _Pending) -> None:
        for corr, entry in list(self._pending.items()):
            if entry is pending:
                del self._pending[corr]
                break

    def wait(self, pending: _Pending,
             timeout: Optional[float]) -> Dict[str, Any]:
        """Block until ``pending`` resolves, reading the socket while
        no other waiter is (the leader/follower handover)."""
        deadline = time.monotonic() + (30.0 if timeout is None
                                       else timeout)
        while True:
            with self._wakeup:
                if pending.done():
                    return pending.result(0)
                if self._dead is not None:
                    raise _ConnectionLost(
                        f"connection lost: {self._dead}")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._forget_locked(pending)
                    raise TransportError("request timed out")
                if self._reading:
                    # Someone else is on the socket; they will either
                    # deliver our frame or hand leadership over.
                    self._wakeup.wait(remaining)
                    continue
                self._reading = True
            try:
                self._read_some(remaining)
            except socket.timeout:
                pass  # deadline re-checked at the top of the loop
            except (OSError, TransportError) as exc:
                self._fail(exc)
            finally:
                with self._wakeup:
                    self._reading = False
                    self._wakeup.notify_all()

    def _read_some(self, remaining: float) -> None:
        """One blocking read (plus an opportunistic drain), then
        deliver every complete frame now buffered.  A timeout leaves
        the stream intact: partial frames stay in the buffer."""
        self._sock.settimeout(remaining)
        chunk = self._sock.recv(65536)
        if not chunk:
            raise TransportError("connection closed")
        self._rbuf += chunk
        while len(self._rbuf) < 1 << 20:
            readable, _, _ = select.select([self._sock], [], [], 0)
            if not readable:
                break
            more = self._sock.recv(65536)
            if not more:
                raise TransportError("connection closed")
            self._rbuf += more
        self._deliver_buffered()

    def _deliver_buffered(self) -> None:
        """Parse and complete every whole frame in the read buffer.

        The batch is parsed with one buffer shift, matched against the
        pending table under one lock hold, and waiters are woken once
        at the end — per-frame costs matter when a pipelined burst of
        responses lands in a single read."""
        rbuf = self._rbuf
        header_size = _MUX_HEADER.size
        arrived: List[Tuple[int, int, bytes]] = []
        pos, size = 0, len(rbuf)
        while size - pos >= header_size:
            length, codec, corr = _MUX_HEADER.unpack_from(rbuf, pos)
            if length > _MAX_FRAME:
                raise TransportError("oversized response frame")
            end = pos + header_size + length
            if end > size:
                break
            arrived.append((corr, codec,
                            bytes(rbuf[pos + header_size:end])))
            pos = end
        if pos:
            del rbuf[:pos]
        if not arrived:
            return
        with self._plock:
            matched = [(self._pending.pop(corr, None), codec, payload)
                       for corr, codec, payload in arrived]
        for pending, codec, payload in matched:
            if pending is None:
                continue  # timed-out request's late response
            try:
                response = _decode_with(codec, payload)
            except (OrbError, TransportError) as exc:
                # A response arrived but could not be decoded: the
                # request is NOT retried (the server acted on it).
                pending.fail(exc)
            else:
                if isinstance(response, dict):
                    pending.complete(response)
                else:
                    pending.fail(
                        TransportError("malformed response frame"))
        with self._wakeup:
            self._wakeup.notify_all()

    def _fail(self, exc: BaseException) -> None:
        with self._wakeup:
            if self._dead is None:
                self._dead = exc
            doomed = list(self._pending.values())
            self._pending.clear()
            self._wakeup.notify_all()
        for pending in doomed:
            pending.fail(_ConnectionLost(f"connection lost: {exc}"))
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._fail(TransportError("transport closed"))


class _Invocation:
    """A waitable handle for one request, owning the retry budget.

    The transport retries a request at most once, and only when the
    connection died before any response bytes arrived for it — the
    server may still have *executed* such a request (the response can
    be lost after the work is done), so retried methods must be
    idempotent.  See :class:`TcpTransport` for the contract.
    """

    def __init__(self, transport: "TcpTransport",
                 request: Dict[str, Any]) -> None:
        self._transport = transport
        self._request = request
        self._retried = False
        self._pending: Optional[_Pending] = None
        self._mux: Optional[_MuxConnection] = None
        self._submit()

    def _submit(self) -> None:
        try:
            self._mux, self._pending = self._transport._submit(self._request)
        except TransportError as exc:
            # Submit-time failures park on the handle so async callers
            # only ever see errors at result().  A _ConnectionLost
            # (the mux connection was closed between checkout and
            # send) stays retryable through result()'s retry loop;
            # anything else — connect refused, negotiation failure —
            # is terminal there.
            self._mux = None
            pending = _Pending()
            pending.fail(exc)
            self._pending = pending

    def done(self) -> bool:
        return self._pending is not None and self._pending.done()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        if timeout is None:
            timeout = self._transport.timeout
        while True:
            assert self._pending is not None
            try:
                if self._mux is not None:
                    return self._mux.wait(self._pending, timeout)
                return self._pending.result(timeout)
            except _ConnectionLost:
                if self._retried:
                    raise TransportError(
                        f"request to {self._transport.host}:"
                        f"{self._transport.port} failed after reconnect")
                self._retried = True
                if self._mux is None:
                    # Legacy attempt: count here.  A dead mux attempt
                    # is counted when renegotiation replaces the
                    # connection, so it is not double-counted.
                    self._transport._count_retry()
                self._submit()
            except TransportError:
                if self._mux is not None and self._pending is not None:
                    self._mux.forget(self._pending)
                raise


class _CompletedInvocation:
    """An already-resolved handle (synchronous fallback paths)."""

    def __init__(self, response: Optional[Dict[str, Any]],
                 error: Optional[BaseException]) -> None:
        self._response = response
        self._error = error

    def done(self) -> bool:
        return True

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class TcpTransport:
    """Client side of the TCP transport.

    Against a peer that speaks the multiplexed protocol (negotiated on
    first use), ONE connection carries every in-flight request with
    correlation ids, the payloads encoded with the negotiated codec;
    :meth:`invoke_async` exposes the pipelined path (submit many,
    collect as responses land).  Against a legacy peer the transport
    falls back to the pooled one-request-per-socket protocol: a
    connection is checked out per invoke (opening a new one when all
    are busy) and checked back in afterwards, so independent requests
    still proceed in parallel; up to ``max_idle`` connections are
    retained.

    **Failure and retry semantics** (both modes): a request whose
    connection died *before any response bytes arrived for it* is
    retried exactly once on a fresh connection; once response bytes
    have been seen — a partial legacy frame, or a mux response frame
    that fails to decode — the transport raises without retrying.
    Because the death may have struck after the server executed the
    request but before the response survived the wire, a retry can
    re-execute: every method invoked through this transport must be
    idempotent at least once-retried.  The shard fleet's hot methods
    are: ``register_sensor`` is explicitly idempotent servant-side,
    queries are read-only, and a retried ``submit_batch`` can at
    worst duplicate readings whose reading-ids the pipeline
    deduplicates downstream — but new servants must keep this
    contract in mind.  An endpoint nobody listens on raises
    :class:`TransportError` immediately.

    Args:
        codec: preferred wire codec (``"binary"`` or ``"json"``); the
            negotiated codec is the first preference both peers share.
        negotiate: attempt the multiplex upgrade (disable to emulate a
            legacy client in interop tests).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 max_idle: int = 8, codec: str = "binary",
                 negotiate: bool = True) -> None:
        if codec not in ("binary", "json"):
            raise TransportError(f"unknown codec {codec!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_idle = max_idle
        self.preferred_codec = codec
        self.negotiate = negotiate
        self._idle: "list[socket.socket]" = []
        self._lock = threading.Lock()
        self._negotiation_lock = threading.Lock()
        self._mode: Optional[str] = None if negotiate else "legacy"
        self._mux: Optional[_MuxConnection] = None
        self.negotiated_codec: Optional[str] = None if negotiate else "json"
        self.connections_opened = 0
        self.connections_reused = 0
        self.retries = 0

    # -- connection management -----------------------------------------

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            self.connections_opened += 1
        return sock

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._idle:
                self.connections_reused += 1
                return self._idle.pop()
        return self._connect()

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if len(self._idle) < self.max_idle:
                self._idle.append(sock)
                return
        _close_quietly(sock)

    def _count_retry(self) -> None:
        with self._lock:
            self.retries += 1

    # -- negotiation ---------------------------------------------------

    def _hello(self, sock: socket.socket) -> Optional[Dict[str, Any]]:
        """One in-band feature probe; None means a legacy peer."""
        request = {
            "object": CONTROL_OBJECT,
            "method": "hello",
            "args": [{"version": PROTOCOL_VERSION,
                      "codecs": [self.preferred_codec, "json"]}],
            "kwargs": {},
        }
        _send_frame(sock, serialization.dumps(request))
        response = serialization.loads(_recv_frame(sock))
        if not isinstance(response, dict):
            raise TransportError("malformed hello response")
        features = response.get("result")
        if (not isinstance(features, dict)
                or features.get("version", 0) < PROTOCOL_VERSION
                or not features.get("multiplex")):
            return None  # legacy peer: it answered, but not the hello
        return features

    def _pick_codec(self, features: Dict[str, Any]) -> int:
        offered = features.get("codecs") or []
        for name in (self.preferred_codec, "json"):
            if name in offered:
                return CODEC_BINARY if name == "binary" else CODEC_JSON
        return CODEC_JSON

    def _cached_mode(self) -> Optional[Tuple[str, Optional[_MuxConnection]]]:
        with self._lock:
            if self._mode == "legacy":
                return "legacy", None
            if (self._mode == "mux" and self._mux is not None
                    and self._mux.alive()):
                self.connections_reused += 1
                return "mux", self._mux
        return None

    def _ensure_mode(self) -> Tuple[str, Optional[_MuxConnection]]:
        """Resolve (and cache) the endpoint's protocol mode.

        Negotiation is serialized: concurrent first invokes block on
        one hello instead of racing to replace each other's live
        connections.  Re-establishing a *dead* multiplexed connection
        counts as a retry (the request that triggered it is being
        re-driven against a possibly-restarted peer).
        """
        cached = self._cached_mode()
        if cached is not None:
            return cached
        with self._negotiation_lock:
            cached = self._cached_mode()  # settled while we waited
            if cached is not None:
                return cached
            with self._lock:
                dead_before = self._mux
            sock = self._connect()
            try:
                features = self._hello(sock)
            except (OSError, TransportError) as exc:
                _close_quietly(sock)
                if isinstance(exc, TransportError):
                    raise
                raise TransportError(
                    f"negotiation with {self.host}:{self.port} "
                    f"failed: {exc}") from exc
            if features is None:
                with self._lock:
                    self._mode = "legacy"
                    self.negotiated_codec = "json"
                self._checkin(sock)  # the legacy connection is still good
                return "legacy", None
            codec = self._pick_codec(features)
            mux = _MuxConnection(sock, codec, f"{self.host}:{self.port}")
            with self._lock:
                self._mode = "mux"
                self._mux = mux
                self.negotiated_codec = CODEC_NAMES[codec]
                if dead_before is not None:
                    # A dead connection was replaced on behalf of an
                    # in-flight request: surface that as a retry.
                    self.retries += 1
            if dead_before is not None:
                dead_before.close()
            return "mux", mux

    # -- invocation ----------------------------------------------------

    def _submit(self, request: Dict[str, Any]
                ) -> Tuple[Optional[_MuxConnection], _Pending]:
        mode, mux = self._ensure_mode()
        if mode == "mux":
            assert mux is not None
            return mux, mux.submit(request)
        # Legacy: synchronous on the pooled path; wrap the outcome so
        # async callers see the same handle shape.
        pending = _Pending()
        try:
            pending.complete(self._invoke_legacy_once(request))
        except BaseException as exc:  # noqa: BLE001 — delivered on wait
            pending.fail(exc)
        return None, pending

    def invoke_async(self, request: Dict[str, Any]) -> _Invocation:
        """Submit without waiting; returns a handle with
        ``done()``/``result(timeout)``.  Many handles may be in
        flight on the one multiplexed connection."""
        return _Invocation(self, request)

    def invoke(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return _Invocation(self, request).result(self.timeout)

    def invoke_many(self, requests: List[Dict[str, Any]]
                    ) -> List[Dict[str, Any]]:
        """Pipeline several requests on one connection: all frames are
        written (in one coalesced send) before any response is
        awaited, and the server may answer them out of order."""
        if not requests:
            return []
        try:
            mode, mux = self._ensure_mode()
            if mode == "mux":
                assert mux is not None
                pendings = mux.submit_many(requests)
                results = []
                for request, pending in zip(requests, pendings):
                    try:
                        results.append(mux.wait(pending, self.timeout))
                    except _ConnectionLost:
                        # This request died before its response bytes:
                        # re-drive it alone (the fresh invocation
                        # renegotiates and owns its retry budget).
                        results.append(self.invoke(request))
                return results
        except _ConnectionLost:
            pass  # fall through: per-request handles own the retry
        handles = [self.invoke_async(request) for request in requests]
        return [handle.result(self.timeout) for handle in handles]

    def _invoke_legacy_once(self, request: Dict[str, Any]
                            ) -> Dict[str, Any]:
        """One attempt on the pooled legacy path.

        Raises :class:`_ConnectionLost` (retryable) only while no
        response byte has arrived; a failure mid-response raises a
        plain :class:`TransportError`.
        """
        payload = serialization.dumps(request)
        sock = self._checkout()
        seen = [False]  # any response byte at all disarms the retry

        def recv_exact(count: int) -> bytes:
            chunks = []
            remaining = count
            while remaining > 0:
                chunk = sock.recv(remaining)
                if not chunk:
                    raise TransportError("connection closed mid-frame")
                seen[0] = True
                chunks.append(chunk)
                remaining -= len(chunk)
            return b"".join(chunks)

        try:
            _send_frame(sock, payload)
            (length,) = _HEADER.unpack(recv_exact(_HEADER.size))
            if length > _MAX_FRAME:
                raise TransportError(
                    f"frame of {length} bytes exceeds the cap")
            frame = recv_exact(length)
        except (OSError, TransportError) as exc:
            _close_quietly(sock)
            if isinstance(exc, _ConnectionLost):
                raise
            if not seen[0]:
                raise _ConnectionLost(str(exc)) from exc
            raise TransportError(
                f"request to {self.host}:{self.port} died "
                f"mid-response: {exc}") from exc
        self._checkin(sock)
        response = serialization.loads(frame)
        if not isinstance(response, dict):
            raise TransportError("malformed response frame")
        return response

    # -- observability -------------------------------------------------

    def pool_stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "idle": len(self._idle),
                "opened": self.connections_opened,
                "reused": self.connections_reused,
                "retries": self.retries,
            }

    def transport_stats(self) -> Dict[str, Any]:
        """Mode, codec and concurrency counters for fleet stats."""
        with self._lock:
            mux = self._mux
            return {
                "endpoint": f"{self.host}:{self.port}",
                "mode": self._mode or "unnegotiated",
                "codec": self.negotiated_codec,
                "multiplexed_inflight_max": (mux.inflight_max
                                             if mux is not None else 0),
                "opened": self.connections_opened,
                "reused": self.connections_reused,
                "retries": self.retries,
                "idle": len(self._idle),
            }

    def close(self) -> None:
        with self._lock:
            doomed, self._idle = self._idle, []
            mux, self._mux = self._mux, None
            if self._mode == "mux":
                self._mode = None if self.negotiate else "legacy"
        for sock in doomed:
            _close_quietly(sock)
        if mux is not None:
            mux.close()


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
