"""ORB transports: in-process and TCP.

The paper's deployment used Orbacus over the department network; the
interesting property for the evaluation is that every query and
trigger notification crosses a real request/response boundary.  Both
transports expose the same two-sided contract:

* server side — a dispatcher callable ``(request) -> response``;
* client side — :meth:`invoke` carrying a request dict and returning
  the response dict.

The TCP transport frames messages with a 4-byte big-endian length
prefix and serves each connection on its own thread.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.orb import serialization

Dispatcher = Callable[[Dict[str, Any]], Dict[str, Any]]

_HEADER = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds the cap")
    return _recv_exact(sock, length)


class InProcTransport:
    """Zero-copy transport for servants living in the same process.

    Requests are still round-tripped through the serializer so that
    behaviour (including serialization failures) is identical to the
    TCP path — only the socket is skipped.
    """

    def __init__(self, dispatcher: Dispatcher) -> None:
        self._dispatcher = dispatcher

    def invoke(self, request: Dict[str, Any]) -> Dict[str, Any]:
        encoded = serialization.dumps(request)
        response = self._dispatcher(serialization.loads(encoded))
        return serialization.loads(serialization.dumps(response))

    def close(self) -> None:
        """Nothing to release."""


class _RequestHandler(socketserver.BaseRequestHandler):
    def setup(self) -> None:
        self.server.track_connection(self.request)  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server.untrack_connection(self.request)  # type: ignore[attr-defined]

    def handle(self) -> None:
        server = self.server
        sock: socket.socket = self.request
        sock.settimeout(server.io_timeout)  # type: ignore[attr-defined]
        while True:
            try:
                frame = _recv_frame(sock)
            except (TransportError, OSError):
                return  # client went away
            try:
                request = serialization.loads(frame)
                response = server.dispatcher(request)
                payload = serialization.dumps(response)
            except Exception as exc:  # deliberately broad: server survives
                payload = serialization.dumps({
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)},
                })
            try:
                _send_frame(sock, payload)
            except OSError:
                return


class _ThreadingServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._connections: "set[socket.socket]" = set()
        self._connections_lock = threading.Lock()

    def track_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(sock)

    def untrack_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(sock)

    def close_connections(self) -> None:
        """Force-close accepted connections so stop() really stops."""
        with self._connections_lock:
            doomed = list(self._connections)
        for sock in doomed:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class TcpServer:
    """A threaded TCP endpoint dispatching framed requests.

    Binds to ``127.0.0.1`` on an OS-assigned port by default; the
    bound address is available as :attr:`address` once started.
    """

    def __init__(self, dispatcher: Dispatcher, host: str = "127.0.0.1",
                 port: int = 0, io_timeout: float = 30.0) -> None:
        self.dispatcher = dispatcher
        self.io_timeout = io_timeout
        try:
            self._server = _ThreadingServer((host, port), _RequestHandler)
        except OSError as exc:
            raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
        self._server.dispatcher = dispatcher  # type: ignore[attr-defined]
        self._server.io_timeout = io_timeout  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "TcpServer":
        if self._thread is not None:
            raise TransportError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"orb-tcp-{self.address[1]}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.close_connections()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None


class TcpTransport:
    """Client side of the TCP transport: a pool of connections.

    Earlier versions held ONE persistent socket behind a lock, so
    concurrent invokes from different threads serialized head-of-line:
    a router fanning a query out to N shards paid N round trips
    sequentially.  The pool checks a connection out per invoke (opening
    a new one when all are busy) and checks it back in afterwards, so
    independent requests proceed in parallel; up to ``max_idle``
    connections are retained between invokes.

    Failure semantics match the old transport: a request that dies on
    the wire is retried once on a fresh connection, and an endpoint
    nobody listens on raises :class:`TransportError` immediately.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 max_idle: int = 8) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_idle = max_idle
        self._idle: "list[socket.socket]" = []
        self._lock = threading.Lock()
        self.connections_opened = 0
        self.connections_reused = 0
        self.retries = 0

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            self.connections_opened += 1
        return sock

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._idle:
                self.connections_reused += 1
                return self._idle.pop()
        return self._connect()

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if len(self._idle) < self.max_idle:
                self._idle.append(sock)
                return
        _close_quietly(sock)

    def invoke(self, request: Dict[str, Any]) -> Dict[str, Any]:
        payload = serialization.dumps(request)
        frame: Optional[bytes] = None
        for attempt in (1, 2):
            sock = self._checkout()
            try:
                _send_frame(sock, payload)
                frame = _recv_frame(sock)
            except (OSError, TransportError):
                # A dead connection (pooled-but-stale or mid-request
                # failure): drop it and retry once on a fresh socket.
                _close_quietly(sock)
                if attempt == 2:
                    raise TransportError(
                        f"request to {self.host}:{self.port} failed "
                        "after reconnect")
                with self._lock:
                    self.retries += 1
            else:
                self._checkin(sock)
                break
        assert frame is not None
        response = serialization.loads(frame)
        if not isinstance(response, dict):
            raise TransportError("malformed response frame")
        return response

    def pool_stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "idle": len(self._idle),
                "opened": self.connections_opened,
                "reused": self.connections_reused,
                "retries": self.retries,
            }

    def close(self) -> None:
        with self._lock:
            doomed, self._idle = self._idle, []
        for sock in doomed:
            _close_quietly(sock)


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
