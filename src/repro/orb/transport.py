"""ORB transports: in-process and TCP.

The paper's deployment used Orbacus over the department network; the
interesting property for the evaluation is that every query and
trigger notification crosses a real request/response boundary.  Both
transports expose the same two-sided contract:

* server side — a dispatcher callable ``(request) -> response``;
* client side — :meth:`invoke` carrying a request dict and returning
  the response dict.

The TCP transport frames messages with a 4-byte big-endian length
prefix and serves each connection on its own thread.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.orb import serialization

Dispatcher = Callable[[Dict[str, Any]], Dict[str, Any]]

_HEADER = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds the cap")
    return _recv_exact(sock, length)


class InProcTransport:
    """Zero-copy transport for servants living in the same process.

    Requests are still round-tripped through the serializer so that
    behaviour (including serialization failures) is identical to the
    TCP path — only the socket is skipped.
    """

    def __init__(self, dispatcher: Dispatcher) -> None:
        self._dispatcher = dispatcher

    def invoke(self, request: Dict[str, Any]) -> Dict[str, Any]:
        encoded = serialization.dumps(request)
        response = self._dispatcher(serialization.loads(encoded))
        return serialization.loads(serialization.dumps(response))

    def close(self) -> None:
        """Nothing to release."""


class _RequestHandler(socketserver.BaseRequestHandler):
    def setup(self) -> None:
        self.server.track_connection(self.request)  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server.untrack_connection(self.request)  # type: ignore[attr-defined]

    def handle(self) -> None:
        server = self.server
        sock: socket.socket = self.request
        sock.settimeout(server.io_timeout)  # type: ignore[attr-defined]
        while True:
            try:
                frame = _recv_frame(sock)
            except (TransportError, OSError):
                return  # client went away
            try:
                request = serialization.loads(frame)
                response = server.dispatcher(request)
                payload = serialization.dumps(response)
            except Exception as exc:  # deliberately broad: server survives
                payload = serialization.dumps({
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)},
                })
            try:
                _send_frame(sock, payload)
            except OSError:
                return


class _ThreadingServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._connections: "set[socket.socket]" = set()
        self._connections_lock = threading.Lock()

    def track_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(sock)

    def untrack_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(sock)

    def close_connections(self) -> None:
        """Force-close accepted connections so stop() really stops."""
        with self._connections_lock:
            doomed = list(self._connections)
        for sock in doomed:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class TcpServer:
    """A threaded TCP endpoint dispatching framed requests.

    Binds to ``127.0.0.1`` on an OS-assigned port by default; the
    bound address is available as :attr:`address` once started.
    """

    def __init__(self, dispatcher: Dispatcher, host: str = "127.0.0.1",
                 port: int = 0, io_timeout: float = 30.0) -> None:
        self.dispatcher = dispatcher
        self.io_timeout = io_timeout
        try:
            self._server = _ThreadingServer((host, port), _RequestHandler)
        except OSError as exc:
            raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
        self._server.dispatcher = dispatcher  # type: ignore[attr-defined]
        self._server.io_timeout = io_timeout  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "TcpServer":
        if self._thread is not None:
            raise TransportError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"orb-tcp-{self.address[1]}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.close_connections()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None


class TcpTransport:
    """Client side of the TCP transport: one persistent connection,
    serialized by a lock, reconnecting once on a broken pipe."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def invoke(self, request: Dict[str, Any]) -> Dict[str, Any]:
        payload = serialization.dumps(request)
        with self._lock:
            for attempt in (1, 2):
                if self._sock is None:
                    self._sock = self._connect()
                try:
                    _send_frame(self._sock, payload)
                    frame = _recv_frame(self._sock)
                    break
                except (OSError, TransportError):
                    # Drop the connection; retry once on a fresh one.
                    self._teardown()
                    if attempt == 2:
                        raise TransportError(
                            f"request to {self.host}:{self.port} failed "
                            "after reconnect")
        response = serialization.loads(frame)
        if not isinstance(response, dict):
            raise TransportError("malformed response frame")
        return response

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._teardown()
