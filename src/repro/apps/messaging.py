"""Anywhere Instant Messaging (paper Section 8.2).

"This application allows a user to receive instant messages from a
designated list of 'buddies' on whichever display is closest to him.
A user can customize the application by choosing to block particular
users at certain locations, or by configuring the system to display
private messages only if the location accuracy is 'high' and other
users are not in the immediate vicinity!"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.core import ProbabilityBucket
from repro.errors import UnknownObjectError
from repro.geometry import Rect
from repro.model import Glob
from repro.service import LocationService

PRIVACY_RADIUS_FT = 10.0  # "immediate vicinity" for private messages


@dataclass
class Message:
    """One IM, possibly private."""

    sender: str
    recipient: str
    text: str
    private: bool = False


@dataclass
class Delivery:
    """Where (and whether) a message landed."""

    message: Message
    display: Optional[str]      # GLOB of the display, None when queued
    time: float
    status: str                 # "delivered" | "queued" | "blocked"
    reason: str = ""


@dataclass
class MessagingPreferences:
    """Per-recipient policy."""

    buddies: Set[str] = field(default_factory=set)
    # Senders blocked while the recipient is inside these regions.
    blocked_at: Dict[str, List[str]] = field(default_factory=dict)
    private_min_bucket: ProbabilityBucket = ProbabilityBucket.HIGH


class AnywhereIM:
    """Routes messages to the display nearest each recipient."""

    def __init__(self, service: LocationService) -> None:
        self.service = service
        self._preferences: Dict[str, MessagingPreferences] = {}
        self.displays_inboxes: Dict[str, List[Message]] = {}
        self.queued: List[Message] = []
        self.log: List[Delivery] = []

    def preferences(self, user_id: str) -> MessagingPreferences:
        return self._preferences.setdefault(user_id, MessagingPreferences())

    def add_buddy(self, user_id: str, buddy: str) -> None:
        self.preferences(user_id).buddies.add(buddy)

    def block_at(self, user_id: str, sender: str,
                 region: Union[Glob, str]) -> None:
        """Block ``sender``'s messages while ``user_id`` is in a region."""
        self.preferences(user_id).blocked_at.setdefault(
            sender, []).append(str(region))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, sender: str, recipient: str, text: str,
             private: bool = False,
             now: Optional[float] = None) -> Delivery:
        """Deliver a message to the recipient's nearest display."""
        at = now if now is not None else self.service.clock()
        message = Message(sender, recipient, text, private)
        prefs = self.preferences(recipient)
        if sender not in prefs.buddies:
            return self._log(Delivery(message, None, at, "blocked",
                                      "sender is not a buddy"))
        try:
            estimate = self.service.locate(recipient, at)
        except UnknownObjectError:
            self.queued.append(message)
            return self._log(Delivery(message, None, at, "queued",
                                      "recipient not locatable"))

        # Location-conditional blocking.
        for region in prefs.blocked_at.get(sender, ()):
            containment = self.service.relations.containment(
                estimate, region)
            if containment.holds:
                return self._log(Delivery(
                    message, None, at, "blocked",
                    f"sender blocked while recipient in {region}"))

        if private:
            if estimate.bucket < prefs.private_min_bucket:
                self.queued.append(message)
                return self._log(Delivery(
                    message, None, at, "queued",
                    "location accuracy below the private threshold"))
            bystanders = self._bystanders(recipient, estimate.rect, at)
            if bystanders:
                self.queued.append(message)
                return self._log(Delivery(
                    message, None, at, "queued",
                    f"others nearby: {', '.join(bystanders)}"))

        display = self._nearest_display(estimate.rect, at)
        if display is None:
            self.queued.append(message)
            return self._log(Delivery(message, None, at, "queued",
                                      "no display nearby"))
        self.displays_inboxes.setdefault(display, []).append(message)
        return self._log(Delivery(message, display, at, "delivered"))

    def flush_queue(self, now: Optional[float] = None) -> List[Delivery]:
        """Retry every queued message (e.g. after the person moved)."""
        pending, self.queued = self.queued, []
        return [self.send(m.sender, m.recipient, m.text, m.private, now)
                for m in pending]

    # ------------------------------------------------------------------

    def _nearest_display(self, rect: Rect,
                         now: float) -> Optional[str]:
        found = self.service.nearest_entities(
            rect.center, count=1, object_type="Display")
        return found[0][0] if found else None

    def _bystanders(self, recipient: str, rect: Rect,
                    now: float) -> List[str]:
        vicinity = rect.expanded(PRIVACY_RADIUS_FT)
        return [object_id for object_id, _
                in self.service.objects_in_region(vicinity, now,
                                                  min_confidence=0.5)
                if object_id != recipient]

    def _log(self, delivery: Delivery) -> Delivery:
        self.log.append(delivery)
        return delivery
